//! A small convolutional neural network on matrix density images,
//! reimplementing the CNN format-selection baseline (conv → pool → conv →
//! pool → dense → softmax) with handwritten forward and backward passes.
//!
//! The input to [`Classifier::fit`] is a dataset whose rows are flattened
//! square grayscale images (`res * res` values in `[0, 1]`, see
//! `spsel-features`' `DensityImage`).

use crate::{Classifier, Dataset};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of [`CnnClassifier`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CnnParams {
    /// Channels of the first 3x3 conv layer.
    pub conv1_channels: usize,
    /// Channels of the second 3x3 conv layer.
    pub conv2_channels: usize,
    /// Width of the hidden dense layer.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Seed for initialization and shuffling.
    pub seed: u64,
}

impl Default for CnnParams {
    fn default() -> Self {
        CnnParams {
            conv1_channels: 8,
            conv2_channels: 16,
            hidden: 64,
            epochs: 10,
            batch_size: 32,
            lr: 0.01,
            momentum: 0.9,
            seed: 0,
        }
    }
}

/// Fixed 3x3 convolution kernel size.
const K: usize = 3;

/// Geometry derived from the input resolution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Shape {
    res: usize,
    c1: usize, // conv1 output side = res - 2
    p1: usize, // pool1 output side = c1 / 2
    c2: usize, // conv2 output side = p1 - 2
    p2: usize, // pool2 output side = c2 / 2
}

impl Shape {
    fn new(res: usize) -> Self {
        assert!(
            res >= 8,
            "image resolution too small for two conv/pool stages"
        );
        let c1 = res - (K - 1);
        let p1 = c1 / 2;
        let c2 = p1 - (K - 1);
        let p2 = c2 / 2;
        assert!(p2 >= 1, "resolution collapses to nothing");
        Shape {
            res,
            c1,
            p1,
            c2,
            p2,
        }
    }
}

/// All trainable parameters, flat.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Weights {
    /// conv1: `[c1_ch][1][3][3]`
    w1: Vec<f32>,
    b1: Vec<f32>,
    /// conv2: `[c2_ch][c1_ch][3][3]`
    w2: Vec<f32>,
    b2: Vec<f32>,
    /// fc1: `[hidden][flat]`
    w3: Vec<f32>,
    b3: Vec<f32>,
    /// fc2: `[classes][hidden]`
    w4: Vec<f32>,
    b4: Vec<f32>,
}

impl Weights {
    fn zeros_like(&self) -> Weights {
        Weights {
            w1: vec![0.0; self.w1.len()],
            b1: vec![0.0; self.b1.len()],
            w2: vec![0.0; self.w2.len()],
            b2: vec![0.0; self.b2.len()],
            w3: vec![0.0; self.w3.len()],
            b3: vec![0.0; self.b3.len()],
            w4: vec![0.0; self.w4.len()],
            b4: vec![0.0; self.b4.len()],
        }
    }

    fn for_each_pair(&mut self, other: &Weights, mut f: impl FnMut(&mut f32, f32)) {
        for (a, &b) in self.w1.iter_mut().zip(&other.w1) {
            f(a, b);
        }
        for (a, &b) in self.b1.iter_mut().zip(&other.b1) {
            f(a, b);
        }
        for (a, &b) in self.w2.iter_mut().zip(&other.w2) {
            f(a, b);
        }
        for (a, &b) in self.b2.iter_mut().zip(&other.b2) {
            f(a, b);
        }
        for (a, &b) in self.w3.iter_mut().zip(&other.w3) {
            f(a, b);
        }
        for (a, &b) in self.b3.iter_mut().zip(&other.b3) {
            f(a, b);
        }
        for (a, &b) in self.w4.iter_mut().zip(&other.w4) {
            f(a, b);
        }
        for (a, &b) in self.b4.iter_mut().zip(&other.b4) {
            f(a, b);
        }
    }
}

/// Activations of one forward pass, kept for backprop.
struct Trace {
    input: Vec<f32>,       // [res*res]
    conv1: Vec<f32>,       // post-ReLU [c1_ch * c1 * c1]
    pool1: Vec<f32>,       // [c1_ch * p1 * p1]
    pool1_arg: Vec<usize>, // argmax index into conv1
    conv2: Vec<f32>,       // post-ReLU [c2_ch * c2 * c2]
    pool2: Vec<f32>,       // [c2_ch * p2 * p2] == flat
    pool2_arg: Vec<usize>, // argmax index into conv2
    hidden: Vec<f32>,      // post-ReLU [hidden]
    probs: Vec<f32>,       // [classes]
}

/// Convolutional classifier on density images.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CnnClassifier {
    params: CnnParams,
    shape: Option<Shape>,
    weights: Option<Weights>,
    n_classes: usize,
    loss_history: Vec<f32>,
}

impl CnnClassifier {
    /// New untrained network.
    pub fn new(params: CnnParams) -> Self {
        CnnClassifier {
            params,
            shape: None,
            weights: None,
            n_classes: 0,
            loss_history: Vec::new(),
        }
    }

    /// New untrained network with default parameters.
    pub fn with_defaults() -> Self {
        Self::new(CnnParams::default())
    }

    fn init_weights(&self, shape: Shape, n_classes: usize, rng: &mut StdRng) -> Weights {
        let p = &self.params;
        let flat = p.conv2_channels * shape.p2 * shape.p2;
        // He-uniform: U(-a, a) has variance a^2/3, so a = sqrt(6/fan_in)
        // yields the He variance 2/fan_in. Under-scaling here leaves the
        // ReLU stack with vanishing gradients at small learning rates.
        let he = |fan_in: usize, rng: &mut StdRng, len: usize| -> Vec<f32> {
            let scale = (6.0 / fan_in as f32).sqrt();
            (0..len)
                .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * scale)
                .collect()
        };
        Weights {
            w1: he(K * K, rng, p.conv1_channels * K * K),
            b1: vec![0.0; p.conv1_channels],
            w2: he(
                p.conv1_channels * K * K,
                rng,
                p.conv2_channels * p.conv1_channels * K * K,
            ),
            b2: vec![0.0; p.conv2_channels],
            w3: he(flat, rng, p.hidden * flat),
            b3: vec![0.0; p.hidden],
            w4: he(p.hidden, rng, n_classes * p.hidden),
            b4: vec![0.0; n_classes],
        }
    }

    /// Forward pass, recording activations.
    fn forward(&self, w: &Weights, shape: Shape, x: &[f32]) -> Trace {
        let p = &self.params;
        let (res, c1s, p1s, c2s, p2s) = (shape.res, shape.c1, shape.p1, shape.c2, shape.p2);

        // conv1 (+ReLU): single input channel.
        let mut conv1 = vec![0.0f32; p.conv1_channels * c1s * c1s];
        for oc in 0..p.conv1_channels {
            let wk = &w.w1[oc * K * K..(oc + 1) * K * K];
            for y in 0..c1s {
                for xx in 0..c1s {
                    let mut acc = w.b1[oc];
                    for ki in 0..K {
                        let row = &x[(y + ki) * res + xx..(y + ki) * res + xx + K];
                        let wrow = &wk[ki * K..ki * K + K];
                        acc += row[0] * wrow[0] + row[1] * wrow[1] + row[2] * wrow[2];
                    }
                    conv1[oc * c1s * c1s + y * c1s + xx] = acc.max(0.0);
                }
            }
        }

        // maxpool1 2x2.
        let mut pool1 = vec![0.0f32; p.conv1_channels * p1s * p1s];
        let mut pool1_arg = vec![0usize; pool1.len()];
        for c in 0..p.conv1_channels {
            for y in 0..p1s {
                for xx in 0..p1s {
                    let mut best = f32::NEG_INFINITY;
                    let mut arg = 0;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let idx = c * c1s * c1s + (2 * y + dy) * c1s + (2 * xx + dx);
                            if conv1[idx] > best {
                                best = conv1[idx];
                                arg = idx;
                            }
                        }
                    }
                    let o = c * p1s * p1s + y * p1s + xx;
                    pool1[o] = best;
                    pool1_arg[o] = arg;
                }
            }
        }

        // conv2 (+ReLU): multi-channel input.
        let mut conv2 = vec![0.0f32; p.conv2_channels * c2s * c2s];
        for oc in 0..p.conv2_channels {
            for y in 0..c2s {
                for xx in 0..c2s {
                    let mut acc = w.b2[oc];
                    for ic in 0..p.conv1_channels {
                        let wk = &w.w2[(oc * p.conv1_channels + ic) * K * K
                            ..(oc * p.conv1_channels + ic + 1) * K * K];
                        for ki in 0..K {
                            let base = ic * p1s * p1s + (y + ki) * p1s + xx;
                            let row = &pool1[base..base + K];
                            let wrow = &wk[ki * K..ki * K + K];
                            acc += row[0] * wrow[0] + row[1] * wrow[1] + row[2] * wrow[2];
                        }
                    }
                    conv2[oc * c2s * c2s + y * c2s + xx] = acc.max(0.0);
                }
            }
        }

        // maxpool2 2x2.
        let mut pool2 = vec![0.0f32; p.conv2_channels * p2s * p2s];
        let mut pool2_arg = vec![0usize; pool2.len()];
        for c in 0..p.conv2_channels {
            for y in 0..p2s {
                for xx in 0..p2s {
                    let mut best = f32::NEG_INFINITY;
                    let mut arg = 0;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let idx = c * c2s * c2s + (2 * y + dy) * c2s + (2 * xx + dx);
                            if conv2[idx] > best {
                                best = conv2[idx];
                                arg = idx;
                            }
                        }
                    }
                    let o = c * p2s * p2s + y * p2s + xx;
                    pool2[o] = best;
                    pool2_arg[o] = arg;
                }
            }
        }

        // fc1 (+ReLU).
        let flat = pool2.len();
        let mut hidden = vec![0.0f32; p.hidden];
        for h in 0..p.hidden {
            let wrow = &w.w3[h * flat..(h + 1) * flat];
            let mut acc = w.b3[h];
            for (a, b) in wrow.iter().zip(&pool2) {
                acc += a * b;
            }
            hidden[h] = acc.max(0.0);
        }

        // fc2 + softmax.
        let mut logits = vec![0.0f32; self.n_classes];
        for k in 0..self.n_classes {
            let wrow = &w.w4[k * p.hidden..(k + 1) * p.hidden];
            let mut acc = w.b4[k];
            for (a, b) in wrow.iter().zip(&hidden) {
                acc += a * b;
            }
            logits[k] = acc;
        }
        let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for l in logits.iter_mut() {
            *l = (*l - max).exp();
            sum += *l;
        }
        for l in logits.iter_mut() {
            *l /= sum;
        }

        Trace {
            input: x.to_vec(),
            conv1,
            pool1,
            pool1_arg,
            conv2,
            pool2,
            pool2_arg,
            hidden,
            probs: logits,
        }
    }

    /// Accumulate gradients of one sample into `grad`. Returns the
    /// cross-entropy loss of the sample.
    fn backward(
        &self,
        w: &Weights,
        shape: Shape,
        trace: &Trace,
        label: usize,
        grad: &mut Weights,
    ) -> f32 {
        let p = &self.params;
        let (res, c1s, p1s, c2s, _p2s) = (shape.res, shape.c1, shape.p1, shape.c2, shape.p2);
        let loss = -(trace.probs[label].max(1e-12)).ln();

        // d logits.
        let mut dlogits = trace.probs.clone();
        dlogits[label] -= 1.0;

        // fc2.
        let flat = trace.pool2.len();
        let mut dhidden = vec![0.0f32; p.hidden];
        for k in 0..self.n_classes {
            let g = dlogits[k];
            grad.b4[k] += g;
            let wrow = &w.w4[k * p.hidden..(k + 1) * p.hidden];
            let grow = &mut grad.w4[k * p.hidden..(k + 1) * p.hidden];
            for h in 0..p.hidden {
                grow[h] += g * trace.hidden[h];
                dhidden[h] += g * wrow[h];
            }
        }
        // ReLU mask on hidden.
        for h in 0..p.hidden {
            if trace.hidden[h] <= 0.0 {
                dhidden[h] = 0.0;
            }
        }

        // fc1.
        let mut dpool2 = vec![0.0f32; flat];
        for h in 0..p.hidden {
            let g = dhidden[h];
            if g == 0.0 {
                continue;
            }
            grad.b3[h] += g;
            let wrow = &w.w3[h * flat..(h + 1) * flat];
            let grow = &mut grad.w3[h * flat..(h + 1) * flat];
            for f in 0..flat {
                grow[f] += g * trace.pool2[f];
                dpool2[f] += g * wrow[f];
            }
        }

        // unpool2 + ReLU mask on conv2.
        let mut dconv2 = vec![0.0f32; p.conv2_channels * c2s * c2s];
        for (o, &arg) in trace.pool2_arg.iter().enumerate() {
            if trace.conv2[arg] > 0.0 {
                dconv2[arg] += dpool2[o];
            }
        }

        // conv2 backward.
        let mut dpool1 = vec![0.0f32; p.conv1_channels * p1s * p1s];
        for oc in 0..p.conv2_channels {
            for y in 0..c2s {
                for xx in 0..c2s {
                    let g = dconv2[oc * c2s * c2s + y * c2s + xx];
                    if g == 0.0 {
                        continue;
                    }
                    grad.b2[oc] += g;
                    for ic in 0..p.conv1_channels {
                        let wbase = (oc * p.conv1_channels + ic) * K * K;
                        for ki in 0..K {
                            let base = ic * p1s * p1s + (y + ki) * p1s + xx;
                            for kj in 0..K {
                                grad.w2[wbase + ki * K + kj] += g * trace.pool1[base + kj];
                                dpool1[base + kj] += g * w.w2[wbase + ki * K + kj];
                            }
                        }
                    }
                }
            }
        }

        // unpool1 + ReLU mask on conv1.
        let mut dconv1 = vec![0.0f32; p.conv1_channels * c1s * c1s];
        for (o, &arg) in trace.pool1_arg.iter().enumerate() {
            if trace.conv1[arg] > 0.0 {
                dconv1[arg] += dpool1[o];
            }
        }

        // conv1 backward (input gradients are not needed).
        for oc in 0..p.conv1_channels {
            for y in 0..c1s {
                for xx in 0..c1s {
                    let g = dconv1[oc * c1s * c1s + y * c1s + xx];
                    if g == 0.0 {
                        continue;
                    }
                    grad.b1[oc] += g;
                    let wbase = oc * K * K;
                    for ki in 0..K {
                        let base = (y + ki) * res + xx;
                        for kj in 0..K {
                            grad.w1[wbase + ki * K + kj] += g * trace.input[base + kj];
                        }
                    }
                }
            }
        }
        loss
    }

    /// Mean training cross-entropy of the last fit, per epoch.
    pub fn loss_history(&self) -> &[f32] {
        &self.loss_history
    }
}

impl CnnClassifier {
    fn as_f32(x: &[f64]) -> Vec<f32> {
        x.iter().map(|&v| v as f32).collect()
    }
}

impl Classifier for CnnClassifier {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let dim = data.dim();
        let res = (dim as f64).sqrt().round() as usize;
        assert_eq!(res * res, dim, "rows must be flattened square images");
        let shape = Shape::new(res);
        self.shape = Some(shape);
        self.n_classes = data.n_classes;

        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let mut weights = self.init_weights(shape, data.n_classes, &mut rng);
        let mut velocity = weights.zeros_like();
        self.loss_history.clear();

        let n = data.len();
        let mut order: Vec<usize> = (0..n).collect();
        let images: Vec<Vec<f32>> = data.x.iter().map(|r| Self::as_f32(r)).collect();

        for _ in 0..self.params.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f32;
            for batch in order.chunks(self.params.batch_size) {
                let mut grad = weights.zeros_like();
                for &i in batch {
                    let trace = self.forward(&weights, shape, &images[i]);
                    epoch_loss += self.backward(&weights, shape, &trace, data.y[i], &mut grad);
                }
                let scale = self.params.lr / batch.len() as f32;
                let momentum = self.params.momentum;
                velocity.for_each_pair(&grad, |v, g| *v = momentum * *v - scale * g);
                weights.for_each_pair(&velocity, |w, v| *w += v);
            }
            self.loss_history.push(epoch_loss / n as f32);
        }
        self.weights = Some(weights);
    }

    fn predict_one(&self, x: &[f64]) -> usize {
        let w = self.weights.as_ref().expect("predict before fit");
        let shape = self.shape.expect("fitted shape");
        let trace = self.forward(w, shape, &Self::as_f32(x));
        trace
            .probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, _)| k)
            .expect("at least one class")
    }

    fn predict(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        use rayon::prelude::*;
        xs.par_iter().map(|x| self.predict_one(x)).collect()
    }

    fn name(&self) -> &'static str {
        "CNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> CnnParams {
        CnnParams {
            conv1_channels: 2,
            conv2_channels: 3,
            hidden: 8,
            epochs: 30,
            batch_size: 8,
            lr: 0.05,
            momentum: 0.9,
            seed: 1,
        }
    }

    /// Images 10x10: class 0 lights the top half, class 1 the bottom half.
    fn half_images(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let mut img = vec![0.0f64; 100];
            for r in 0..10 {
                for c in 0..10 {
                    let lit = if class == 0 { r < 5 } else { r >= 5 };
                    img[r * 10 + c] = if lit {
                        0.7 + rng.gen_range(0.0..0.3)
                    } else {
                        rng.gen_range(0.0..0.1)
                    };
                }
            }
            x.push(img);
            y.push(class);
        }
        Dataset::new(x, y, 2)
    }

    #[test]
    fn learns_spatial_pattern() {
        let train = half_images(60, 1);
        let test = half_images(20, 2);
        let mut cnn = CnnClassifier::new(tiny_params());
        cnn.fit(&train);
        let acc = crate::accuracy(&test.y, &cnn.predict(&test.x), 2);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn loss_decreases() {
        let train = half_images(40, 3);
        let mut cnn = CnnClassifier::new(tiny_params());
        cnn.fit(&train);
        let h = cnn.loss_history();
        assert!(h.len() == 30);
        assert!(
            h.last().unwrap() < &(h[0] * 0.8),
            "loss did not decrease: {h:?}"
        );
    }

    #[test]
    fn probabilities_normalized() {
        let train = half_images(20, 4);
        let mut cnn = CnnClassifier::new(tiny_params());
        cnn.fit(&train);
        let shape = cnn.shape.unwrap();
        let w = cnn.weights.as_ref().unwrap();
        let trace = cnn.forward(w, shape, &CnnClassifier::as_f32(&train.x[0]));
        let sum: f32 = trace.probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn numerical_gradient_check() {
        // Verify backprop on a handful of parameters with central
        // differences on a tiny network and one sample.
        let data = half_images(2, 5);
        let mut cnn = CnnClassifier::new(CnnParams {
            conv1_channels: 2,
            conv2_channels: 2,
            hidden: 4,
            epochs: 0,
            ..tiny_params()
        });
        cnn.n_classes = 2;
        let shape = Shape::new(10);
        cnn.shape = Some(shape);
        let mut rng = StdRng::seed_from_u64(9);
        let w = cnn.init_weights(shape, 2, &mut rng);
        let img = CnnClassifier::as_f32(&data.x[0]);
        let label = data.y[0];

        let mut grad = w.zeros_like();
        let trace = cnn.forward(&w, shape, &img);
        cnn.backward(&w, shape, &trace, label, &mut grad);

        let eps = 1e-3f32;
        // Check a sample of weights from each layer.
        let checks: Vec<(&str, usize)> =
            vec![("w1", 3), ("w2", 7), ("w3", 5), ("w4", 2), ("b2", 1)];
        for (layer, idx) in checks {
            let mut wp = w.clone();
            let mut wm = w.clone();
            let (p_ref, m_ref, g): (&mut f32, &mut f32, f32) = match layer {
                "w1" => (&mut wp.w1[idx], &mut wm.w1[idx], grad.w1[idx]),
                "w2" => (&mut wp.w2[idx], &mut wm.w2[idx], grad.w2[idx]),
                "w3" => (&mut wp.w3[idx], &mut wm.w3[idx], grad.w3[idx]),
                "w4" => (&mut wp.w4[idx], &mut wm.w4[idx], grad.w4[idx]),
                "b2" => (&mut wp.b2[idx], &mut wm.b2[idx], grad.b2[idx]),
                _ => unreachable!(),
            };
            *p_ref += eps;
            *m_ref -= eps;
            let lp = -(cnn.forward(&wp, shape, &img).probs[label].max(1e-12)).ln();
            let lm = -(cnn.forward(&wm, shape, &img).probs[label].max(1e-12)).ln();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - g).abs() < 2e-2 * (1.0 + num.abs().max(g.abs())),
                "{layer}[{idx}]: numerical {num} vs analytic {g}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn non_square_input_rejected() {
        let data = Dataset::new(vec![vec![0.0; 99]], vec![0], 1);
        CnnClassifier::with_defaults().fit(&data);
    }
}
