//! CART decision tree classifier (Gini impurity, numeric features).
//!
//! Split search is *presorted*: [`Classifier::fit`] sorts every feature's
//! sample order once, and each node derives its own ordered view by a
//! stable partition of its parent's — no node ever re-sorts. The scheme
//! produces node-for-node identical trees (structure, thresholds,
//! tie-breaks) to the naive per-node re-sorting search, which is kept as
//! [`DecisionTree::fit_naive`] so the equivalence tests and the
//! `perfcheck` speedup report can compare both paths.

use crate::{Classifier, Dataset};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a [`DecisionTree`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTreeParams {
    /// Maximum tree depth (`None` = grow until pure).
    pub max_depth: Option<usize>,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples every leaf must keep.
    pub min_samples_leaf: usize,
    /// Features considered per split (`None` = all); random forests pass
    /// `sqrt(dim)` here.
    pub max_features: Option<usize>,
    /// Seed for the per-split feature subsampling.
    pub seed: u64,
}

impl Default for DecisionTreeParams {
    fn default() -> Self {
        DecisionTreeParams {
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Index of the left child in the node arena; right child is
        /// `left + 1` would not hold in general, so both are stored.
        left: usize,
        right: usize,
    },
}

/// CART decision tree classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    params: DecisionTreeParams,
    nodes: Vec<Node>,
    n_classes: usize,
    dim: usize,
}

impl DecisionTree {
    /// New untrained tree with the given parameters.
    pub fn new(params: DecisionTreeParams) -> Self {
        DecisionTree {
            params,
            nodes: Vec::new(),
            n_classes: 0,
            dim: 0,
        }
    }

    /// New untrained tree with default parameters.
    pub fn with_defaults() -> Self {
        Self::new(DecisionTreeParams::default())
    }

    /// Number of nodes in the fitted tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the fitted tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }

    fn gini(counts: &[usize], total: usize) -> f64 {
        if total == 0 {
            return 0.0;
        }
        let t = total as f64;
        1.0 - counts
            .iter()
            .map(|&c| {
                let p = c as f64 / t;
                p * p
            })
            .sum::<f64>()
    }

    /// Naive split search (the pre-presort reference): re-sorts a
    /// `(value, label)` scratch per feature at every node.
    fn best_split_naive(
        &self,
        data: &Dataset,
        indices: &[usize],
        features: &[usize],
        scratch: &mut Vec<(f64, usize)>,
    ) -> Option<(usize, f64, f64)> {
        let n = indices.len();
        let min_leaf = self.params.min_samples_leaf;
        let mut best: Option<(usize, f64, f64)> = None;
        for &f in features {
            scratch.clear();
            scratch.extend(indices.iter().map(|&i| (data.x[i][f], data.y[i])));
            scratch.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));

            let mut left_counts = vec![0usize; data.n_classes];
            let mut right_counts = vec![0usize; data.n_classes];
            for &(_, label) in scratch.iter() {
                right_counts[label] += 1;
            }
            for split_at in 1..n {
                let (v_prev, label_prev) = scratch[split_at - 1];
                left_counts[label_prev] += 1;
                right_counts[label_prev] -= 1;
                let v_next = scratch[split_at].0;
                if v_next <= v_prev {
                    continue; // no threshold separates equal values
                }
                if split_at < min_leaf || n - split_at < min_leaf {
                    continue;
                }
                let g = (split_at as f64 * Self::gini(&left_counts, split_at)
                    + (n - split_at) as f64 * Self::gini(&right_counts, n - split_at))
                    / n as f64;
                let threshold = v_prev + (v_next - v_prev) / 2.0;
                let better = match best {
                    None => true,
                    Some((_, _, bg)) => g < bg - 1e-15,
                };
                if better {
                    best = Some((f, threshold, g));
                }
            }
        }
        best
    }

    /// Presorted split search: scan each feature's samples through the
    /// node's presorted column instead of re-sorting. The class counts are
    /// integers, so the weighted Gini at every candidate boundary — and
    /// therefore the chosen split — is bit-identical to the naive search.
    fn best_split_presorted(
        &self,
        data: &Dataset,
        cols: &[Vec<u32>],
        features: &[usize],
        left_counts: &mut [usize],
        right_counts: &mut [usize],
    ) -> Option<(usize, f64, f64)> {
        let min_leaf = self.params.min_samples_leaf;
        let mut best: Option<(usize, f64, f64)> = None;
        for &f in features {
            let col = &cols[f];
            let n = col.len();
            left_counts.fill(0);
            right_counts.fill(0);
            for &i in col.iter() {
                right_counts[data.y[i as usize]] += 1;
            }
            for split_at in 1..n {
                let prev = col[split_at - 1] as usize;
                let v_prev = data.x[prev][f];
                let label_prev = data.y[prev];
                left_counts[label_prev] += 1;
                right_counts[label_prev] -= 1;
                let v_next = data.x[col[split_at] as usize][f];
                if v_next <= v_prev {
                    continue; // no threshold separates equal values
                }
                if split_at < min_leaf || n - split_at < min_leaf {
                    continue;
                }
                let g = (split_at as f64 * Self::gini(left_counts, split_at)
                    + (n - split_at) as f64 * Self::gini(right_counts, n - split_at))
                    / n as f64;
                let threshold = v_prev + (v_next - v_prev) / 2.0;
                let better = match best {
                    None => true,
                    Some((_, _, bg)) => g < bg - 1e-15,
                };
                if better {
                    best = Some((f, threshold, g));
                }
            }
        }
        best
    }

    /// Majority class of a node's class-count histogram (ties break to the
    /// highest class index, as `max_by_key` keeps the last maximum).
    fn majority_of(counts: &[usize]) -> usize {
        counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| c)
            .map(|(k, _)| k)
            .unwrap_or(0)
    }

    /// Presorted recursive builder: `cols[f]` holds this node's samples in
    /// ascending feature-`f` order; children inherit their orders by a
    /// stable partition on the chosen split, so no node ever sorts.
    #[allow(clippy::too_many_arguments)] // recursion state, not an API
    fn build_presorted(
        &mut self,
        data: &Dataset,
        indices: &[u32],
        cols: Vec<Vec<u32>>,
        depth: usize,
        rng: &mut StdRng,
        left_buf: &mut Vec<usize>,
        right_buf: &mut Vec<usize>,
    ) -> usize {
        let mut counts = vec![0usize; data.n_classes];
        for &i in indices {
            counts[data.y[i as usize]] += 1;
        }
        let majority = Self::majority_of(&counts);
        let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
        let depth_capped = self.params.max_depth.is_some_and(|d| depth >= d);
        if pure || depth_capped || indices.len() < self.params.min_samples_split {
            self.nodes.push(Node::Leaf { class: majority });
            return self.nodes.len() - 1;
        }

        // Feature subsample (random forests); all features otherwise.
        let mut feats: Vec<usize> = (0..data.dim()).collect();
        if let Some(m) = self.params.max_features {
            feats.shuffle(rng);
            feats.truncate(m.max(1).min(data.dim()));
            feats.sort_unstable(); // deterministic scan order
        }

        // Note: like scikit-learn, zero-gain splits are accepted — greedy
        // Gini cannot see the XOR-style interactions that only pay off one
        // level deeper. Recursion still terminates because a found split
        // always separates distinct feature values.
        let Some((feature, threshold, gain_gini)) =
            self.best_split_presorted(data, &cols, &feats, left_buf, right_buf)
        else {
            self.nodes.push(Node::Leaf { class: majority });
            return self.nodes.len() - 1;
        };
        // Reject only splits that *worsen* impurity (possible with feature
        // subsampling on noisy nodes).
        let parent_gini = Self::gini(&counts, indices.len());
        if gain_gini > parent_gini + 1e-12 {
            self.nodes.push(Node::Leaf { class: majority });
            return self.nodes.len() - 1;
        }

        let goes_left = |i: u32| data.x[i as usize][feature] <= threshold;
        let (left_idx, right_idx): (Vec<u32>, Vec<u32>) =
            indices.iter().partition(|&&i| goes_left(i));
        let (mut left_cols, mut right_cols) = (
            Vec::with_capacity(cols.len()),
            Vec::with_capacity(cols.len()),
        );
        for col in cols {
            let mut l = Vec::with_capacity(left_idx.len());
            let mut r = Vec::with_capacity(right_idx.len());
            for i in col {
                if goes_left(i) {
                    l.push(i);
                } else {
                    r.push(i);
                }
            }
            left_cols.push(l);
            right_cols.push(r);
        }

        // Reserve this node's slot, then build children.
        let me = self.nodes.len();
        self.nodes.push(Node::Leaf { class: majority }); // placeholder
        let left = self.build_presorted(
            data,
            &left_idx,
            left_cols,
            depth + 1,
            rng,
            left_buf,
            right_buf,
        );
        let right = self.build_presorted(
            data,
            &right_idx,
            right_cols,
            depth + 1,
            rng,
            left_buf,
            right_buf,
        );
        self.nodes[me] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }

    /// Naive recursive builder (kept verbatim as the equivalence-test and
    /// speedup-measurement reference; see [`DecisionTree::fit_naive`]).
    fn build_naive(
        &mut self,
        data: &Dataset,
        indices: &[usize],
        depth: usize,
        rng: &mut StdRng,
        scratch: &mut Vec<(f64, usize)>,
    ) -> usize {
        let mut counts = vec![0usize; data.n_classes];
        for &i in indices {
            counts[data.y[i]] += 1;
        }
        let majority = Self::majority_of(&counts);
        let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
        let depth_capped = self.params.max_depth.is_some_and(|d| depth >= d);
        if pure || depth_capped || indices.len() < self.params.min_samples_split {
            self.nodes.push(Node::Leaf { class: majority });
            return self.nodes.len() - 1;
        }

        let mut feats: Vec<usize> = (0..data.dim()).collect();
        if let Some(m) = self.params.max_features {
            feats.shuffle(rng);
            feats.truncate(m.max(1).min(data.dim()));
            feats.sort_unstable(); // deterministic scan order
        }

        let Some((feature, threshold, gain_gini)) =
            self.best_split_naive(data, indices, &feats, scratch)
        else {
            self.nodes.push(Node::Leaf { class: majority });
            return self.nodes.len() - 1;
        };
        let parent_gini = Self::gini(&counts, indices.len());
        if gain_gini > parent_gini + 1e-12 {
            self.nodes.push(Node::Leaf { class: majority });
            return self.nodes.len() - 1;
        }

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| data.x[i][feature] <= threshold);

        let me = self.nodes.len();
        self.nodes.push(Node::Leaf { class: majority }); // placeholder
        let left = self.build_naive(data, &left_idx, depth + 1, rng, scratch);
        let right = self.build_naive(data, &right_idx, depth + 1, rng, scratch);
        self.nodes[me] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }

    /// Fit with the naive per-node re-sorting split search. This is the
    /// pre-presort implementation, retained so tests can prove the
    /// presorted [`Classifier::fit`] grows bit-identical trees and so
    /// `perfcheck` can measure the split-search speedup on real data.
    #[doc(hidden)]
    pub fn fit_naive(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        self.nodes.clear();
        self.n_classes = data.n_classes;
        self.dim = data.dim();
        let indices: Vec<usize> = (0..data.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let mut scratch = Vec::new();
        self.build_naive(data, &indices, 0, &mut rng, &mut scratch);
    }
}

/// Sort every feature's sample order once: `cols[f]` lists all sample
/// indices in ascending order of feature `f`, ties in sample order. The
/// per-node views derived from these by stable partition present values
/// in exactly the order a per-node sort would, so split search over them
/// is equivalent — without the per-node `O(n log n)`.
pub(crate) fn presort_columns(x: &[Vec<f64>], dim: usize) -> Vec<Vec<u32>> {
    let n = x.len() as u32;
    (0..dim)
        .map(|f| {
            let mut idx: Vec<u32> = (0..n).collect();
            idx.sort_unstable_by(|&a, &b| {
                x[a as usize][f]
                    .total_cmp(&x[b as usize][f])
                    .then(a.cmp(&b))
            });
            idx
        })
        .collect()
}

impl Classifier for DecisionTree {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        self.nodes.clear();
        self.n_classes = data.n_classes;
        self.dim = data.dim();
        let indices: Vec<u32> = (0..data.len() as u32).collect();
        let cols = presort_columns(&data.x, data.dim());
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let mut left_buf = vec![0usize; data.n_classes];
        let mut right_buf = vec![0usize; data.n_classes];
        self.build_presorted(
            data,
            &indices,
            cols,
            0,
            &mut rng,
            &mut left_buf,
            &mut right_buf,
        );
    }

    fn predict_one(&self, x: &[f64]) -> usize {
        assert!(!self.nodes.is_empty(), "predict before fit");
        assert_eq!(x.len(), self.dim, "feature width mismatch");
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { class } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "DT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_dataset() -> Dataset {
        // XOR with slight jitter: needs depth 2.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (a, b, l) in [(0.0, 0.0, 0), (0.0, 1.0, 1), (1.0, 0.0, 1), (1.0, 1.0, 0)] {
            for j in 0..4 {
                let eps = j as f64 * 0.01;
                x.push(vec![a + eps, b - eps]);
                y.push(l);
            }
        }
        Dataset::new(x, y, 2)
    }

    #[test]
    fn learns_xor() {
        let data = xor_dataset();
        let mut t = DecisionTree::with_defaults();
        t.fit(&data);
        let preds = t.predict(&data.x);
        assert_eq!(preds, data.y);
        assert!(t.depth() >= 2);
    }

    #[test]
    fn max_depth_limits_tree() {
        let data = xor_dataset();
        let mut t = DecisionTree::new(DecisionTreeParams {
            max_depth: Some(1),
            ..Default::default()
        });
        t.fit(&data);
        assert!(t.depth() <= 1);
    }

    #[test]
    fn pure_dataset_yields_single_leaf() {
        let data = Dataset::new(vec![vec![1.0], vec![2.0], vec![3.0]], vec![1, 1, 1], 2);
        let mut t = DecisionTree::with_defaults();
        t.fit(&data);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict_one(&[99.0]), 1);
    }

    #[test]
    fn constant_features_yield_majority_leaf() {
        let data = Dataset::new(vec![vec![5.0], vec![5.0], vec![5.0]], vec![0, 1, 1], 2);
        let mut t = DecisionTree::with_defaults();
        t.fit(&data);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict_one(&[5.0]), 1);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let data = xor_dataset();
        let mut t = DecisionTree::new(DecisionTreeParams {
            min_samples_leaf: 8,
            ..Default::default()
        });
        t.fit(&data);
        // With 16 samples and min leaf 8 only one split is possible.
        assert!(t.depth() <= 1);
    }

    #[test]
    fn deterministic_with_feature_subsampling() {
        let data = xor_dataset();
        let params = DecisionTreeParams {
            max_features: Some(1),
            seed: 3,
            ..Default::default()
        };
        let mut a = DecisionTree::new(params.clone());
        let mut b = DecisionTree::new(params);
        a.fit(&data);
        b.fit(&data);
        assert_eq!(a, b);
    }

    #[test]
    fn separable_threshold_is_midpoint() {
        let data = Dataset::new(
            vec![vec![1.0], vec![2.0], vec![10.0], vec![11.0]],
            vec![0, 0, 1, 1],
            2,
        );
        let mut t = DecisionTree::with_defaults();
        t.fit(&data);
        assert_eq!(t.predict_one(&[5.9]), 0);
        assert_eq!(t.predict_one(&[6.1]), 1);
    }

    #[test]
    #[should_panic]
    fn predict_before_fit_panics() {
        DecisionTree::with_defaults().predict_one(&[1.0]);
    }
}
