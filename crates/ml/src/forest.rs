//! Random forest: bagged CART trees with per-split feature subsampling.
//!
//! The paper's configuration (Section 5.1): 100 estimators, maximum depth 6.

use crate::tree::{DecisionTree, DecisionTreeParams};
use crate::{Classifier, Dataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a [`RandomForest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForestParams {
    /// Number of trees.
    pub n_estimators: usize,
    /// Maximum depth of each tree.
    pub max_depth: Option<usize>,
    /// Features per split (`None` = `sqrt(dim)`).
    pub max_features: Option<usize>,
    /// Master seed; per-tree seeds derive from it.
    pub seed: u64,
}

impl Default for RandomForestParams {
    /// The paper's configuration: 100 estimators, depth 6.
    fn default() -> Self {
        RandomForestParams {
            n_estimators: 100,
            max_depth: Some(6),
            max_features: None,
            seed: 0,
        }
    }
}

/// Bagged random forest classifier with majority voting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    params: RandomForestParams,
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// New untrained forest with the given parameters.
    pub fn new(params: RandomForestParams) -> Self {
        RandomForest {
            params,
            trees: Vec::new(),
            n_classes: 0,
        }
    }

    /// New untrained forest with the paper's defaults.
    pub fn with_defaults() -> Self {
        Self::new(RandomForestParams::default())
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Per-class vote counts for one row.
    pub fn vote_counts(&self, x: &[f64]) -> Vec<usize> {
        let mut votes = vec![0usize; self.n_classes];
        for t in &self.trees {
            votes[t.predict_one(x)] += 1;
        }
        votes
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        self.n_classes = data.n_classes;
        let max_features = self
            .params
            .max_features
            .unwrap_or_else(|| (data.dim() as f64).sqrt().ceil() as usize)
            .max(1);
        let n = data.len();
        let seed = self.params.seed;
        let max_depth = self.params.max_depth;
        self.trees = (0..self.params.n_estimators)
            .into_par_iter()
            .map(|t| {
                // Independent bootstrap per tree, derived deterministically.
                let mut rng = StdRng::seed_from_u64(
                    seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(t as u64 + 1)),
                );
                let bootstrap: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                let sample = data.subset(&bootstrap);
                let mut tree = DecisionTree::new(DecisionTreeParams {
                    max_depth,
                    max_features: Some(max_features),
                    seed: rng.gen(),
                    ..Default::default()
                });
                tree.fit(&sample);
                tree
            })
            .collect();
    }

    fn predict_one(&self, x: &[f64]) -> usize {
        assert!(!self.trees.is_empty(), "predict before fit");
        let votes = self.vote_counts(x);
        votes
            .iter()
            .enumerate()
            .max_by_key(|&(_, v)| v)
            .map(|(k, _)| k)
            .expect("at least one class")
    }

    fn predict(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        xs.par_iter().map(|x| self.predict_one(x)).collect()
    }

    fn name(&self) -> &'static str {
        "RF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Two Gaussian-ish blobs, linearly separable.
    fn blobs(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let center = if class == 0 { -2.0 } else { 2.0 };
            x.push(vec![
                center + rng.gen_range(-1.0..1.0),
                center + rng.gen_range(-1.0..1.0),
            ]);
            y.push(class);
        }
        Dataset::new(x, y, 2)
    }

    #[test]
    fn separable_blobs_high_accuracy() {
        let train = blobs(200, 1);
        let test = blobs(100, 2);
        let mut rf = RandomForest::new(RandomForestParams {
            n_estimators: 30,
            ..Default::default()
        });
        rf.fit(&train);
        let acc = crate::accuracy(&test.y, &rf.predict(&test.x), 2);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn forest_beats_stump_on_xor() {
        // 2-feature XOR grid; a depth-6 forest should fit it exactly.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                x.push(vec![i as f64, j as f64]);
                y.push(((i < 5) ^ (j < 5)) as usize);
            }
        }
        let data = Dataset::new(x, y, 2);
        let mut rf = RandomForest::new(RandomForestParams {
            n_estimators: 40,
            seed: 5,
            ..Default::default()
        });
        rf.fit(&data);
        let acc = crate::accuracy(&data.y, &rf.predict(&data.x), 2);
        assert!(acc > 0.97, "accuracy {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs(80, 3);
        let mut a = RandomForest::new(RandomForestParams {
            n_estimators: 10,
            seed: 9,
            ..Default::default()
        });
        let mut b = RandomForest::new(RandomForestParams {
            n_estimators: 10,
            seed: 9,
            ..Default::default()
        });
        a.fit(&data);
        b.fit(&data);
        assert_eq!(a.predict(&data.x), b.predict(&data.x));
    }

    #[test]
    fn vote_counts_sum_to_estimators() {
        let data = blobs(50, 4);
        let mut rf = RandomForest::new(RandomForestParams {
            n_estimators: 15,
            ..Default::default()
        });
        rf.fit(&data);
        let votes = rf.vote_counts(&data.x[0]);
        assert_eq!(votes.iter().sum::<usize>(), 15);
    }
}
