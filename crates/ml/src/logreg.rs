//! Multinomial (softmax) logistic regression trained with full-batch
//! gradient descent plus Nesterov momentum.
//!
//! Used both as a supervised baseline component and as one of the paper's
//! three cluster-labeling strategies (LR).

use crate::{Classifier, Dataset};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of [`LogisticRegression`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegressionParams {
    /// L2 regularization strength.
    pub l2: f64,
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Maximum gradient-descent iterations.
    pub max_iter: usize,
    /// Stop when the gradient norm falls below this.
    pub tol: f64,
}

impl Default for LogisticRegressionParams {
    fn default() -> Self {
        LogisticRegressionParams {
            l2: 1e-4,
            lr: 0.5,
            momentum: 0.9,
            max_iter: 300,
            tol: 1e-6,
        }
    }
}

/// Softmax regression classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    params: LogisticRegressionParams,
    /// Row-major `n_classes x (dim + 1)` weights; last column is the bias.
    weights: Vec<Vec<f64>>,
    n_classes: usize,
    dim: usize,
}

impl LogisticRegression {
    /// New untrained model.
    pub fn new(params: LogisticRegressionParams) -> Self {
        LogisticRegression {
            params,
            weights: Vec::new(),
            n_classes: 0,
            dim: 0,
        }
    }

    /// New untrained model with default parameters.
    pub fn with_defaults() -> Self {
        Self::new(LogisticRegressionParams::default())
    }

    /// Class scores (`w_k . x + b_k`) for one row.
    fn scores(&self, x: &[f64]) -> Vec<f64> {
        self.weights
            .iter()
            .map(|w| {
                w[..self.dim]
                    .iter()
                    .zip(x)
                    .map(|(wi, xi)| wi * xi)
                    .sum::<f64>()
                    + w[self.dim]
            })
            .collect()
    }

    /// Class probabilities for one row (softmax of the scores).
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut s = self.scores(x);
        let max = s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for v in s.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in s.iter_mut() {
            *v /= sum;
        }
        s
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let (n, d, k) = (data.len(), data.dim(), data.n_classes);
        self.n_classes = k;
        self.dim = d;
        self.weights = vec![vec![0.0; d + 1]; k];
        let mut velocity = vec![vec![0.0; d + 1]; k];
        let inv_n = 1.0 / n as f64;

        for _ in 0..self.params.max_iter {
            // Gradient of mean cross-entropy + L2.
            let mut grad = vec![vec![0.0; d + 1]; k];
            for (x, &label) in data.x.iter().zip(&data.y) {
                let p = self.predict_proba(x);
                for c in 0..k {
                    let coef = (p[c] - (c == label) as usize as f64) * inv_n;
                    let g = &mut grad[c];
                    for j in 0..d {
                        g[j] += coef * x[j];
                    }
                    g[d] += coef;
                }
            }
            let mut gnorm2 = 0.0;
            for c in 0..k {
                for j in 0..=d {
                    if j < d {
                        grad[c][j] += self.params.l2 * self.weights[c][j];
                    }
                    gnorm2 += grad[c][j] * grad[c][j];
                    velocity[c][j] =
                        self.params.momentum * velocity[c][j] - self.params.lr * grad[c][j];
                    self.weights[c][j] += velocity[c][j];
                }
            }
            if gnorm2.sqrt() < self.params.tol {
                break;
            }
        }
    }

    fn predict_one(&self, x: &[f64]) -> usize {
        assert!(!self.weights.is_empty(), "predict before fit");
        assert_eq!(x.len(), self.dim, "feature width mismatch");
        self.scores(x)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, _)| k)
            .expect("at least one class")
    }

    fn name(&self) -> &'static str {
        "LR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs3(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = [(-3.0, 0.0), (3.0, 0.0), (0.0, 4.0)];
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let c = i % 3;
            x.push(vec![
                centers[c].0 + rng.gen_range(-1.0..1.0),
                centers[c].1 + rng.gen_range(-1.0..1.0),
            ]);
            y.push(c);
        }
        Dataset::new(x, y, 3)
    }

    #[test]
    fn separates_three_blobs() {
        let train = blobs3(150, 1);
        let test = blobs3(60, 2);
        let mut lr = LogisticRegression::with_defaults();
        lr.fit(&train);
        let acc = crate::accuracy(&test.y, &lr.predict(&test.x), 3);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let data = blobs3(60, 3);
        let mut lr = LogisticRegression::with_defaults();
        lr.fit(&data);
        for x in &data.x {
            let p = lr.predict_proba(x);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn confident_on_far_points() {
        let data = blobs3(150, 4);
        let mut lr = LogisticRegression::with_defaults();
        lr.fit(&data);
        let p = lr.predict_proba(&[-10.0, 0.0]);
        assert!(p[0] > 0.99, "p = {p:?}");
    }

    #[test]
    fn deterministic() {
        let data = blobs3(60, 5);
        let mut a = LogisticRegression::with_defaults();
        let mut b = LogisticRegression::with_defaults();
        a.fit(&data);
        b.fit(&data);
        assert_eq!(a.predict(&data.x), b.predict(&data.x));
    }

    #[test]
    fn single_class_dataset() {
        let data = Dataset::new(vec![vec![1.0], vec![2.0]], vec![0, 0], 1);
        let mut lr = LogisticRegression::with_defaults();
        lr.fit(&data);
        assert_eq!(lr.predict_one(&[9.0]), 0);
    }
}
