//! Gradient-boosted decision trees with the XGBoost formulation:
//! second-order (Newton) boosting on the multiclass softmax objective,
//! exact greedy split search, L2-regularized leaf weights.
//!
//! The paper's configuration (Section 5.1): learning rate 0.1, 100 rounds.

use crate::{Classifier, Dataset};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of [`GradientBoosting`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientBoostingParams {
    /// Boosting rounds (one tree per class per round).
    pub n_rounds: usize,
    /// Shrinkage applied to every leaf weight.
    pub learning_rate: f64,
    /// Maximum depth of each regression tree.
    pub max_depth: usize,
    /// L2 regularization on leaf weights (XGBoost's lambda).
    pub lambda: f64,
    /// Minimum loss reduction to keep a split (XGBoost's gamma).
    pub gamma: f64,
    /// Minimum hessian sum per child (XGBoost's min_child_weight).
    pub min_child_weight: f64,
}

impl Default for GradientBoostingParams {
    /// The paper's configuration: 100 rounds, learning rate 0.1.
    fn default() -> Self {
        GradientBoostingParams {
            n_rounds: 100,
            learning_rate: 0.1,
            max_depth: 6,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
        }
    }
}

/// One node of a regression tree, arena-indexed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum RegNode {
    Leaf {
        weight: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct RegTree {
    nodes: Vec<RegNode>,
}

impl RegTree {
    fn predict(&self, x: &[f64]) -> f64 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                RegNode::Leaf { weight } => return *weight,
                RegNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

struct TreeBuilder<'a> {
    x: &'a [Vec<f64>],
    grad: &'a [f64],
    hess: &'a [f64],
    params: &'a GradientBoostingParams,
    nodes: Vec<RegNode>,
}

impl<'a> TreeBuilder<'a> {
    fn leaf_weight(&self, g: f64, h: f64) -> f64 {
        -g / (h + self.params.lambda)
    }

    fn score(&self, g: f64, h: f64) -> f64 {
        g * g / (h + self.params.lambda)
    }

    /// Evaluate every candidate boundary of one feature, given this node's
    /// samples in ascending `(value, sample index)` order. Shared by the
    /// naive and presorted builders: because both present samples in
    /// exactly this order, the sequential `gl`/`hl` accumulations — and
    /// therefore every gain and threshold — are bit-identical.
    #[allow(clippy::too_many_arguments)]
    fn scan_feature(
        &self,
        f: usize,
        ordered: &[u32],
        g_sum: f64,
        h_sum: f64,
        best: &mut Option<(usize, f64, f64)>,
    ) {
        let mut gl = 0.0;
        let mut hl = 0.0;
        for s in 1..ordered.len() {
            let prev = ordered[s - 1] as usize;
            gl += self.grad[prev];
            hl += self.hess[prev];
            let v_prev = self.x[prev][f];
            let v_next = self.x[ordered[s] as usize][f];
            if v_next <= v_prev {
                continue;
            }
            let (gr, hr) = (g_sum - gl, h_sum - hl);
            if hl < self.params.min_child_weight || hr < self.params.min_child_weight {
                continue;
            }
            let gain = 0.5 * (self.score(gl, hl) + self.score(gr, hr) - self.score(g_sum, h_sum))
                - self.params.gamma;
            if gain > best.map_or(0.0, |(_, _, bg)| bg) + 1e-12 {
                *best = Some((f, v_prev + (v_next - v_prev) / 2.0, gain));
            }
        }
    }

    /// Naive builder (the pre-presort reference): re-sorts every feature at
    /// every node. Tie order is canonicalized to `(value, sample index)` so
    /// the floating-point accumulation order — and hence the grown tree —
    /// matches the presorted builder exactly.
    fn build_naive(&mut self, indices: &[u32], depth: usize) -> usize {
        let g_sum: f64 = indices.iter().map(|&i| self.grad[i as usize]).sum();
        let h_sum: f64 = indices.iter().map(|&i| self.hess[i as usize]).sum();

        if depth >= self.params.max_depth || indices.len() < 2 {
            let w = self.leaf_weight(g_sum, h_sum);
            self.nodes.push(RegNode::Leaf { weight: w });
            return self.nodes.len() - 1;
        }

        // Exact greedy split search over all features.
        let dim = self.x[0].len();
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
        let mut ordered: Vec<u32> = Vec::with_capacity(indices.len());
        for f in 0..dim {
            ordered.clear();
            ordered.extend_from_slice(indices);
            ordered.sort_unstable_by(|&a, &b| {
                self.x[a as usize][f]
                    .total_cmp(&self.x[b as usize][f])
                    .then(a.cmp(&b))
            });
            self.scan_feature(f, &ordered, g_sum, h_sum, &mut best);
        }

        let Some((feature, threshold, _)) = best else {
            let w = self.leaf_weight(g_sum, h_sum);
            self.nodes.push(RegNode::Leaf { weight: w });
            return self.nodes.len() - 1;
        };
        let (left_idx, right_idx): (Vec<u32>, Vec<u32>) = indices
            .iter()
            .partition(|&&i| self.x[i as usize][feature] <= threshold);
        let me = self.nodes.len();
        self.nodes.push(RegNode::Leaf { weight: 0.0 }); // placeholder
        let left = self.build_naive(&left_idx, depth + 1);
        let right = self.build_naive(&right_idx, depth + 1);
        self.nodes[me] = RegNode::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }

    /// Presorted builder: `cols[f]` holds this node's samples in ascending
    /// `(feature f value, sample index)` order — presorted once per fit and
    /// inherited through stable partitions, so no node ever sorts. Grows
    /// trees bit-identical to [`TreeBuilder::build_naive`].
    fn build_presorted(&mut self, indices: &[u32], cols: &[Vec<u32>], depth: usize) -> usize {
        let g_sum: f64 = indices.iter().map(|&i| self.grad[i as usize]).sum();
        let h_sum: f64 = indices.iter().map(|&i| self.hess[i as usize]).sum();

        if depth >= self.params.max_depth || indices.len() < 2 {
            let w = self.leaf_weight(g_sum, h_sum);
            self.nodes.push(RegNode::Leaf { weight: w });
            return self.nodes.len() - 1;
        }

        let dim = self.x[0].len();
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
        for (f, col) in cols.iter().enumerate().take(dim) {
            self.scan_feature(f, col, g_sum, h_sum, &mut best);
        }

        let Some((feature, threshold, _)) = best else {
            let w = self.leaf_weight(g_sum, h_sum);
            self.nodes.push(RegNode::Leaf { weight: w });
            return self.nodes.len() - 1;
        };
        let goes_left = |i: u32| self.x[i as usize][feature] <= threshold;
        let (left_idx, right_idx): (Vec<u32>, Vec<u32>) =
            indices.iter().partition(|&&i| goes_left(i));
        let (mut left_cols, mut right_cols) = (
            Vec::with_capacity(cols.len()),
            Vec::with_capacity(cols.len()),
        );
        for col in cols {
            let mut l = Vec::with_capacity(left_idx.len());
            let mut r = Vec::with_capacity(right_idx.len());
            for &i in col {
                if goes_left(i) {
                    l.push(i);
                } else {
                    r.push(i);
                }
            }
            left_cols.push(l);
            right_cols.push(r);
        }
        let me = self.nodes.len();
        self.nodes.push(RegNode::Leaf { weight: 0.0 }); // placeholder
        let left = self.build_presorted(&left_idx, &left_cols, depth + 1);
        let right = self.build_presorted(&right_idx, &right_cols, depth + 1);
        self.nodes[me] = RegNode::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }
}

/// XGBoost-style multiclass gradient boosting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientBoosting {
    params: GradientBoostingParams,
    /// `rounds x n_classes` trees.
    trees: Vec<Vec<RegTree>>,
    n_classes: usize,
    dim: usize,
}

impl GradientBoosting {
    /// New untrained booster.
    pub fn new(params: GradientBoostingParams) -> Self {
        GradientBoosting {
            params,
            trees: Vec::new(),
            n_classes: 0,
            dim: 0,
        }
    }

    /// New untrained booster with the paper's defaults.
    pub fn with_defaults() -> Self {
        Self::new(GradientBoostingParams::default())
    }

    /// Number of boosting rounds actually fitted.
    pub fn n_rounds(&self) -> usize {
        self.trees.len()
    }

    /// Raw margin scores for one row.
    pub fn margins(&self, x: &[f64]) -> Vec<f64> {
        let mut m = vec![0.0; self.n_classes];
        for round in &self.trees {
            for (k, tree) in round.iter().enumerate() {
                m[k] += self.params.learning_rate * tree.predict(x);
            }
        }
        m
    }

    /// Fit with the naive per-node re-sorting split search (the pre-presort
    /// reference). Retained so tests can prove the presorted
    /// [`Classifier::fit`] grows bit-identical boosters and so `perfcheck`
    /// can measure the split-search speedup on real data.
    #[doc(hidden)]
    pub fn fit_naive(&mut self, data: &Dataset) {
        self.fit_impl(data, None);
    }

    /// Boosting loop shared by [`Classifier::fit`] (presorted columns in
    /// `cols`) and [`GradientBoosting::fit_naive`] (`cols: None`). The
    /// feature matrix never changes across rounds, so one presort serves
    /// every tree of every round.
    fn fit_impl(&mut self, data: &Dataset, cols: Option<&[Vec<u32>]>) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let (n, k) = (data.len(), data.n_classes);
        self.n_classes = k;
        self.dim = data.dim();
        self.trees.clear();

        // Running margins F[i*k + c].
        let mut margins = vec![0.0f64; n * k];
        let all_indices: Vec<u32> = (0..n as u32).collect();

        for _ in 0..self.params.n_rounds {
            // Softmax probabilities per sample.
            let mut probs = vec![0.0f64; n * k];
            for i in 0..n {
                let row = &margins[i * k..(i + 1) * k];
                let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut sum = 0.0;
                for c in 0..k {
                    let e = (row[c] - max).exp();
                    probs[i * k + c] = e;
                    sum += e;
                }
                for c in 0..k {
                    probs[i * k + c] /= sum;
                }
            }

            // One regression tree per class, built in parallel.
            let round: Vec<RegTree> = (0..k)
                .into_par_iter()
                .map(|c| {
                    let grad: Vec<f64> = (0..n)
                        .map(|i| probs[i * k + c] - (data.y[i] == c) as usize as f64)
                        .collect();
                    let hess: Vec<f64> = (0..n)
                        .map(|i| {
                            let p = probs[i * k + c];
                            (p * (1.0 - p)).max(1e-16)
                        })
                        .collect();
                    let mut builder = TreeBuilder {
                        x: &data.x,
                        grad: &grad,
                        hess: &hess,
                        params: &self.params,
                        nodes: Vec::new(),
                    };
                    match cols {
                        Some(cols) => builder.build_presorted(&all_indices, cols, 0),
                        None => builder.build_naive(&all_indices, 0),
                    };
                    RegTree {
                        nodes: builder.nodes,
                    }
                })
                .collect();

            for i in 0..n {
                for (c, tree) in round.iter().enumerate() {
                    margins[i * k + c] += self.params.learning_rate * tree.predict(&data.x[i]);
                }
            }
            self.trees.push(round);
        }
    }
}

impl Classifier for GradientBoosting {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let cols = crate::tree::presort_columns(&data.x, data.dim());
        self.fit_impl(data, Some(&cols));
    }

    fn predict_one(&self, x: &[f64]) -> usize {
        assert!(!self.trees.is_empty(), "predict before fit");
        assert_eq!(x.len(), self.dim, "feature width mismatch");
        self.margins(x)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(c, _)| c)
            .expect("at least one class")
    }

    fn predict(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        xs.par_iter().map(|x| self.predict_one(x)).collect()
    }

    fn name(&self) -> &'static str {
        "XGBoost"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fast_params(rounds: usize) -> GradientBoostingParams {
        GradientBoostingParams {
            n_rounds: rounds,
            max_depth: 3,
            ..Default::default()
        }
    }

    #[test]
    fn learns_asymmetric_xor() {
        // An off-center XOR: unlike the perfectly symmetric version (where
        // every axis-aligned split leaves both halves class-balanced and
        // all first-order gradient sums vanish), this one gives greedy
        // boosting a foothold at the root.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                x.push(vec![i as f64, j as f64]);
                y.push(((i < 3) ^ (j < 5)) as usize);
            }
        }
        let data = Dataset::new(x, y, 2);
        let mut gb = GradientBoosting::new(fast_params(30));
        gb.fit(&data);
        let acc = crate::accuracy(&data.y, &gb.predict(&data.x), 2);
        assert!(acc > 0.98, "accuracy {acc}");
    }

    #[test]
    fn multiclass_blobs() {
        let mut rng = StdRng::seed_from_u64(0);
        let centers = [(-4.0, 0.0), (4.0, 0.0), (0.0, 5.0)];
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..150 {
            let c = i % 3;
            x.push(vec![
                centers[c].0 + rng.gen_range(-1.5..1.5),
                centers[c].1 + rng.gen_range(-1.5..1.5),
            ]);
            y.push(c);
        }
        let data = Dataset::new(x, y, 3);
        let mut gb = GradientBoosting::new(fast_params(20));
        gb.fit(&data);
        let acc = crate::accuracy(&data.y, &gb.predict(&data.x), 3);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn more_rounds_do_not_hurt_training_fit() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            x.push(vec![i as f64]);
            y.push((i % 3 == 0) as usize);
        }
        let data = Dataset::new(x, y, 2);
        let mut short = GradientBoosting::new(fast_params(3));
        let mut long = GradientBoosting::new(fast_params(30));
        short.fit(&data);
        long.fit(&data);
        let acc_s = crate::accuracy(&data.y, &short.predict(&data.x), 2);
        let acc_l = crate::accuracy(&data.y, &long.predict(&data.x), 2);
        assert!(acc_l >= acc_s, "{acc_l} < {acc_s}");
    }

    #[test]
    fn margins_start_symmetric() {
        // With zero rounds the model must not be usable.
        let gb = GradientBoosting::new(fast_params(5));
        assert_eq!(gb.n_rounds(), 0);
    }

    #[test]
    fn deterministic() {
        let data = Dataset::new(
            (0..30)
                .map(|i| vec![(i % 7) as f64, (i % 5) as f64])
                .collect(),
            (0..30).map(|i| (i % 2) as usize).collect(),
            2,
        );
        let mut a = GradientBoosting::new(fast_params(10));
        let mut b = GradientBoosting::new(fast_params(10));
        a.fit(&data);
        b.fit(&data);
        assert_eq!(a.predict(&data.x), b.predict(&data.x));
    }
}
