//! Cross-validation utilities: stratified k-fold splits and seeded
//! train/test splits, matching the paper's 5-fold CV protocol.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Stratified k-fold: shuffles each class's indices with the seed, then
/// deals them round-robin into `k` folds so every fold preserves the class
/// balance. Returns `(train_indices, test_indices)` per fold.
pub fn stratified_kfold(
    y: &[usize],
    n_classes: usize,
    k: usize,
    seed: u64,
) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "need at least two folds");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for (i, &label) in y.iter().enumerate() {
        per_class[label].push(i);
    }
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for class_indices in per_class.iter_mut() {
        class_indices.shuffle(&mut rng);
        for (pos, &idx) in class_indices.iter().enumerate() {
            folds[pos % k].push(idx);
        }
    }
    (0..k)
        .map(|f| {
            let test = folds[f].clone();
            let train: Vec<usize> = (0..k)
                .filter(|&g| g != f)
                .flat_map(|g| folds[g].iter().copied())
                .collect();
            (train, test)
        })
        .collect()
}

/// Seeded shuffle split: returns `(train_indices, test_indices)` with
/// `train_frac` of the samples (rounded down, at least one test sample if
/// possible) in the training set.
pub fn train_test_split(n: usize, train_frac: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!((0.0..=1.0).contains(&train_frac), "fraction out of range");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let cut = ((n as f64) * train_frac).floor() as usize;
    let test = idx.split_off(cut);
    (idx, test)
}

/// Stratified subsample: returns indices of approximately `frac` of the
/// samples with the class balance preserved. Used for the paper's 25% and
/// 50% retraining budgets.
pub fn stratified_subsample(y: &[usize], n_classes: usize, frac: f64, seed: u64) -> Vec<usize> {
    assert!((0.0..=1.0).contains(&frac), "fraction out of range");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for (i, &label) in y.iter().enumerate() {
        per_class[label].push(i);
    }
    let mut out = Vec::new();
    for class_indices in per_class.iter_mut() {
        class_indices.shuffle(&mut rng);
        let take = ((class_indices.len() as f64) * frac).round() as usize;
        out.extend(class_indices.iter().take(take));
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> Vec<usize> {
        // 60 of class 0, 30 of class 1, 10 of class 2.
        let mut y = vec![0usize; 60];
        y.extend(vec![1; 30]);
        y.extend(vec![2; 10]);
        y
    }

    #[test]
    fn folds_partition_everything() {
        let y = labels();
        let folds = stratified_kfold(&y, 3, 5, 42);
        assert_eq!(folds.len(), 5);
        let mut seen = vec![0usize; y.len()];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), y.len());
            for &i in test {
                seen[i] += 1;
            }
            // No overlap between train and test.
            let test_set: std::collections::HashSet<_> = test.iter().collect();
            assert!(train.iter().all(|i| !test_set.contains(i)));
        }
        // Every sample appears in exactly one test fold.
        assert!(seen.iter().all(|&s| s == 1));
    }

    #[test]
    fn folds_preserve_class_balance() {
        let y = labels();
        for (_, test) in stratified_kfold(&y, 3, 5, 0) {
            let c0 = test.iter().filter(|&&i| y[i] == 0).count();
            let c2 = test.iter().filter(|&&i| y[i] == 2).count();
            assert_eq!(c0, 12);
            assert_eq!(c2, 2);
        }
    }

    #[test]
    fn folds_are_seed_deterministic() {
        let y = labels();
        assert_eq!(stratified_kfold(&y, 3, 5, 7), stratified_kfold(&y, 3, 5, 7));
        assert_ne!(stratified_kfold(&y, 3, 5, 7), stratified_kfold(&y, 3, 5, 8));
    }

    #[test]
    fn split_sizes() {
        let (train, test) = train_test_split(100, 0.75, 1);
        assert_eq!(train.len(), 75);
        assert_eq!(test.len(), 25);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn subsample_preserves_balance() {
        let y = labels();
        let sub = stratified_subsample(&y, 3, 0.5, 3);
        let c0 = sub.iter().filter(|&&i| y[i] == 0).count();
        let c1 = sub.iter().filter(|&&i| y[i] == 1).count();
        let c2 = sub.iter().filter(|&&i| y[i] == 2).count();
        assert_eq!((c0, c1, c2), (30, 15, 5));
    }

    #[test]
    fn subsample_zero_and_full() {
        let y = labels();
        assert!(stratified_subsample(&y, 3, 0.0, 0).is_empty());
        assert_eq!(stratified_subsample(&y, 3, 1.0, 0).len(), y.len());
    }
}
