//! Multiclass evaluation metrics.
//!
//! The paper argues that plain accuracy and F1 hide failure on the rare COO
//! and HYB classes, and reports Matthews correlation coefficient (MCC) in
//! its multiclass generalization (Gorodkin's R_K). All three metrics are
//! implemented over a shared confusion matrix.

use serde::{Deserialize, Serialize};

/// A `k x k` confusion matrix; `counts[t][p]` counts samples of true class
/// `t` predicted as class `p`.
///
/// ```
/// use spsel_ml::ConfusionMatrix;
/// let cm = ConfusionMatrix::from_labels(&[0, 0, 1, 1], &[0, 1, 1, 1], 2);
/// assert_eq!(cm.accuracy(), 0.75);
/// assert!(cm.mcc() > 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Build from parallel slices of true and predicted labels.
    ///
    /// # Panics
    /// Panics on length mismatch or labels `>= n_classes`.
    pub fn from_labels(y_true: &[usize], y_pred: &[usize], n_classes: usize) -> Self {
        assert_eq!(y_true.len(), y_pred.len(), "label slices must align");
        let mut counts = vec![vec![0usize; n_classes]; n_classes];
        for (&t, &p) in y_true.iter().zip(y_pred) {
            counts[t][p] += 1;
        }
        ConfusionMatrix { counts }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.counts.len()
    }

    /// Count of true class `t` predicted as `p`.
    pub fn get(&self, t: usize, p: usize) -> usize {
        self.counts[t][p]
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|r| r.iter().sum::<usize>()).sum()
    }

    /// Correctly classified samples (trace).
    pub fn correct(&self) -> usize {
        (0..self.n_classes()).map(|i| self.counts[i][i]).sum()
    }

    /// Overall accuracy in `[0, 1]`; `1.0` for an empty matrix.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            1.0
        } else {
            self.correct() as f64 / total as f64
        }
    }

    /// Per-class F1 scores. A class absent from both truth and predictions
    /// contributes an F1 of 0 (scikit-learn's `zero_division=0` behavior).
    pub fn per_class_f1(&self) -> Vec<f64> {
        let k = self.n_classes();
        (0..k)
            .map(|c| {
                let tp = self.counts[c][c];
                let fp: usize = (0..k).filter(|&t| t != c).map(|t| self.counts[t][c]).sum();
                let fn_: usize = (0..k).filter(|&p| p != c).map(|p| self.counts[c][p]).sum();
                let denom = 2 * tp + fp + fn_;
                if denom == 0 {
                    0.0
                } else {
                    2.0 * tp as f64 / denom as f64
                }
            })
            .collect()
    }

    /// Weighted-average F1 over classes (weights = class support), the
    /// convention the paper's F1 column follows for the highly unbalanced
    /// format classes.
    pub fn weighted_f1(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        let f1 = self.per_class_f1();
        (0..self.n_classes())
            .map(|c| {
                let support: usize = self.counts[c].iter().sum();
                f1[c] * support as f64
            })
            .sum::<f64>()
            / total as f64
    }

    /// Unweighted macro-average F1 over classes.
    pub fn macro_f1(&self) -> f64 {
        let f1 = self.per_class_f1();
        if f1.is_empty() {
            1.0
        } else {
            f1.iter().sum::<f64>() / f1.len() as f64
        }
    }

    /// Multiclass Matthews correlation coefficient (Gorodkin's R_K).
    ///
    /// Returns 0 when either marginal is degenerate (all samples in one
    /// true class, or all predictions one class), matching scikit-learn.
    pub fn mcc(&self) -> f64 {
        let k = self.n_classes();
        let s = self.total() as f64;
        if s == 0.0 {
            return 0.0;
        }
        let c = self.correct() as f64;
        let t: Vec<f64> = (0..k)
            .map(|i| self.counts[i].iter().sum::<usize>() as f64)
            .collect();
        let p: Vec<f64> = (0..k)
            .map(|j| (0..k).map(|i| self.counts[i][j]).sum::<usize>() as f64)
            .collect();
        let tp_sum: f64 = t.iter().zip(&p).map(|(a, b)| a * b).sum();
        let t2: f64 = t.iter().map(|a| a * a).sum();
        let p2: f64 = p.iter().map(|a| a * a).sum();
        let denom = ((s * s - p2) * (s * s - t2)).sqrt();
        if denom <= 0.0 {
            0.0
        } else {
            (c * s - tp_sum) / denom
        }
    }
}

/// Accuracy from label slices.
pub fn accuracy(y_true: &[usize], y_pred: &[usize], n_classes: usize) -> f64 {
    ConfusionMatrix::from_labels(y_true, y_pred, n_classes).accuracy()
}

/// Support-weighted F1 from label slices (the paper's F1 column).
pub fn f1_score(y_true: &[usize], y_pred: &[usize], n_classes: usize) -> f64 {
    ConfusionMatrix::from_labels(y_true, y_pred, n_classes).weighted_f1()
}

/// Multiclass MCC from label slices.
pub fn mcc(y_true: &[usize], y_pred: &[usize], n_classes: usize) -> f64 {
    ConfusionMatrix::from_labels(y_true, y_pred, n_classes).mcc()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let y = [0, 1, 2, 1, 0];
        let cm = ConfusionMatrix::from_labels(&y, &y, 3);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.macro_f1(), 1.0);
        assert_eq!(cm.weighted_f1(), 1.0);
        assert!((cm.mcc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn always_wrong_binary_has_negative_mcc() {
        let y_true = [0, 0, 1, 1];
        let y_pred = [1, 1, 0, 0];
        let cm = ConfusionMatrix::from_labels(&y_true, &y_pred, 2);
        assert_eq!(cm.accuracy(), 0.0);
        assert!((cm.mcc() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_prediction_has_zero_mcc() {
        // Predicting the majority class everywhere: 75% accuracy, MCC 0.
        let y_true = [0, 0, 0, 1];
        let y_pred = [0, 0, 0, 0];
        let cm = ConfusionMatrix::from_labels(&y_true, &y_pred, 2);
        assert!((cm.accuracy() - 0.75).abs() < 1e-12);
        assert_eq!(cm.mcc(), 0.0);
    }

    #[test]
    fn mcc_matches_binary_formula() {
        // tp=5, tn=3, fp=2, fn=1
        let mut y_true = vec![1; 6];
        y_true.extend(vec![0; 5]);
        let mut y_pred = vec![1; 5];
        y_pred.push(0); // fn
        y_pred.extend(vec![1, 1]); // fp
        y_pred.extend(vec![0, 0, 0]); // tn
        let cm = ConfusionMatrix::from_labels(&y_true, &y_pred, 2);
        let (tp, tn, fp, fnn): (f64, f64, f64, f64) = (5.0, 3.0, 2.0, 1.0);
        let expected =
            (tp * tn - fp * fnn) / ((tp + fp) * (tp + fnn) * (tn + fp) * (tn + fnn)).sqrt();
        assert!((cm.mcc() - expected).abs() < 1e-12);
    }

    #[test]
    fn f1_ignores_absent_class_support() {
        // Class 2 never appears: weighted F1 unaffected, macro pulled down.
        let y_true = [0, 0, 1, 1];
        let y_pred = [0, 0, 1, 0];
        let cm = ConfusionMatrix::from_labels(&y_true, &y_pred, 3);
        let f1 = cm.per_class_f1();
        assert_eq!(f1[2], 0.0);
        assert!(cm.weighted_f1() > cm.macro_f1());
    }

    #[test]
    fn imbalance_depresses_mcc_but_not_accuracy() {
        // 90 majority correct, 10 minority all wrong.
        let mut y_true = vec![0; 90];
        y_true.extend(vec![1; 10]);
        let y_pred = vec![0; 100];
        let cm = ConfusionMatrix::from_labels(&y_true, &y_pred, 2);
        assert!(cm.accuracy() >= 0.9);
        assert_eq!(cm.mcc(), 0.0);
    }

    #[test]
    fn counts_are_indexed_true_then_pred() {
        let cm = ConfusionMatrix::from_labels(&[0], &[1], 2);
        assert_eq!(cm.get(0, 1), 1);
        assert_eq!(cm.get(1, 0), 0);
    }

    #[test]
    fn empty_inputs() {
        let cm = ConfusionMatrix::from_labels(&[], &[], 3);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.mcc(), 0.0);
        assert_eq!(cm.total(), 0);
    }
}
