//! Linear support vector machine, one-vs-rest, squared hinge loss.
//!
//! Trained by full-batch gradient descent with momentum on
//! `0.5 ||w||^2 + C/n * sum max(0, 1 - y f(x))^2`, which is smooth and
//! deterministic. Multiclass prediction takes the argmax of the per-class
//! decision values. Features are expected to be pre-scaled (the supervised
//! pipeline scales them).

use crate::{Classifier, Dataset};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of [`LinearSvm`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearSvmParams {
    /// Misclassification cost.
    pub c: f64,
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Gradient-descent iterations per binary problem.
    pub max_iter: usize,
}

impl Default for LinearSvmParams {
    fn default() -> Self {
        // The loss uses the *mean* hinge term, so `c` plays the role of
        // `C * n` in the usual sum formulation; 500 corresponds to a
        // moderately regularized LinearSVC on corpus-sized datasets. The
        // learning rate is relative: the trainer divides it by a Lipschitz
        // estimate of the objective, so the same setting is stable across
        // feature scales.
        LinearSvmParams {
            c: 500.0,
            lr: 1.0,
            momentum: 0.95,
            max_iter: 800,
        }
    }
}

/// One-vs-rest linear SVM classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearSvm {
    params: LinearSvmParams,
    /// Per-class weight vectors, `n_classes x (dim + 1)`, bias last.
    weights: Vec<Vec<f64>>,
    n_classes: usize,
    dim: usize,
}

impl LinearSvm {
    /// New untrained model.
    pub fn new(params: LinearSvmParams) -> Self {
        LinearSvm {
            params,
            weights: Vec::new(),
            n_classes: 0,
            dim: 0,
        }
    }

    /// New untrained model with default parameters.
    pub fn with_defaults() -> Self {
        Self::new(LinearSvmParams::default())
    }

    /// Decision value `w_k . x + b_k` for class `k`.
    pub fn decision(&self, k: usize, x: &[f64]) -> f64 {
        let w = &self.weights[k];
        w[..self.dim]
            .iter()
            .zip(x)
            .map(|(wi, xi)| wi * xi)
            .sum::<f64>()
            + w[self.dim]
    }

    /// Fit one binary one-vs-rest problem; `targets[i]` in {-1, +1}.
    fn fit_binary(&self, data: &Dataset, targets: &[f64]) -> Vec<f64> {
        let (n, d) = (data.len(), data.dim());
        let mut w = vec![0.0; d + 1];
        let mut velocity = vec![0.0; d + 1];
        let c_over_n = self.params.c / n as f64;
        // Step size from a Lipschitz estimate of the squared-hinge
        // objective: L ~ 1 (regularizer) + 2 C E[||x||^2 + 1].
        let mean_sq: f64 = data
            .x
            .iter()
            .map(|x| x.iter().map(|v| v * v).sum::<f64>() + 1.0)
            .sum::<f64>()
            / n as f64;
        let step = self.params.lr / (1.0 + 2.0 * self.params.c * mean_sq);
        for _ in 0..self.params.max_iter {
            // grad = w (excluding bias) + C/n * sum -2 y (1 - y f)_+ x
            let mut grad = vec![0.0; d + 1];
            grad[..d].copy_from_slice(&w[..d]);
            for (x, &yi) in data.x.iter().zip(targets) {
                let f: f64 = w[..d].iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>() + w[d];
                let margin = 1.0 - yi * f;
                if margin > 0.0 {
                    let coef = -2.0 * c_over_n * yi * margin;
                    for j in 0..d {
                        grad[j] += coef * x[j];
                    }
                    grad[d] += coef;
                }
            }
            for j in 0..=d {
                velocity[j] = self.params.momentum * velocity[j] - step * grad[j];
                w[j] += velocity[j];
            }
        }
        w
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        self.n_classes = data.n_classes;
        self.dim = data.dim();
        self.weights = (0..data.n_classes)
            .map(|k| {
                let targets: Vec<f64> = data
                    .y
                    .iter()
                    .map(|&l| if l == k { 1.0 } else { -1.0 })
                    .collect();
                self.fit_binary(data, &targets)
            })
            .collect();
    }

    fn predict_one(&self, x: &[f64]) -> usize {
        assert!(!self.weights.is_empty(), "predict before fit");
        assert_eq!(x.len(), self.dim, "feature width mismatch");
        (0..self.n_classes)
            .map(|k| (k, self.decision(k, x)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(k, _)| k)
            .expect("at least one class")
    }

    fn name(&self) -> &'static str {
        "SVM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(n: usize, seed: u64, classes: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = [(-3.0, -3.0), (3.0, 3.0), (-3.0, 3.0), (3.0, -3.0)];
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let c = i % classes;
            x.push(vec![
                centers[c].0 + rng.gen_range(-1.0..1.0),
                centers[c].1 + rng.gen_range(-1.0..1.0),
            ]);
            y.push(c);
        }
        Dataset::new(x, y, classes)
    }

    #[test]
    fn binary_separable() {
        let train = blobs(100, 1, 2);
        let test = blobs(50, 2, 2);
        let mut svm = LinearSvm::with_defaults();
        svm.fit(&train);
        let acc = crate::accuracy(&test.y, &svm.predict(&test.x), 2);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn four_class_ovr() {
        let train = blobs(200, 3, 4);
        let test = blobs(80, 4, 4);
        let mut svm = LinearSvm::with_defaults();
        svm.fit(&train);
        let acc = crate::accuracy(&test.y, &svm.predict(&test.x), 4);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn margin_sign_matches_class() {
        let train = blobs(100, 5, 2);
        let mut svm = LinearSvm::with_defaults();
        svm.fit(&train);
        // A point deep inside class 0's blob has positive class-0 decision.
        assert!(svm.decision(0, &[-3.0, -3.0]) > 0.0);
        assert!(svm.decision(1, &[-3.0, -3.0]) < 0.0);
    }

    #[test]
    fn deterministic() {
        let data = blobs(60, 6, 2);
        let mut a = LinearSvm::with_defaults();
        let mut b = LinearSvm::with_defaults();
        a.fit(&data);
        b.fit(&data);
        assert_eq!(a.weights, b.weights);
    }
}
