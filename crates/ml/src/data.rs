//! Tabular dataset container shared by all classifiers.

use serde::{Deserialize, Serialize};

/// A labeled tabular dataset: `x[i]` is a feature row, `y[i]` its class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature rows, all the same width.
    pub x: Vec<Vec<f64>>,
    /// Class labels in `0..n_classes`.
    pub y: Vec<usize>,
    /// Number of classes.
    pub n_classes: usize,
}

impl Dataset {
    /// Build a dataset, validating row widths and label range.
    ///
    /// # Panics
    /// Panics on length mismatch, inconsistent widths, or out-of-range
    /// labels.
    pub fn new(x: Vec<Vec<f64>>, y: Vec<usize>, n_classes: usize) -> Self {
        assert_eq!(x.len(), y.len(), "one label per row");
        if let Some(first) = x.first() {
            let w = first.len();
            assert!(x.iter().all(|r| r.len() == w), "inconsistent row widths");
        }
        assert!(
            y.iter().all(|&l| l < n_classes),
            "label out of range 0..{n_classes}"
        );
        Dataset { x, y, n_classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature dimensionality (0 for an empty dataset).
    pub fn dim(&self) -> usize {
        self.x.first().map_or(0, |r| r.len())
    }

    /// Samples per class.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &l in &self.y {
            counts[l] += 1;
        }
        counts
    }

    /// New dataset containing the rows at `indices` (clones rows).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: indices.iter().map(|&i| self.x[i].clone()).collect(),
            y: indices.iter().map(|&i| self.y[i]).collect(),
            n_classes: self.n_classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let d = Dataset::new(
            vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
            vec![0, 1, 0],
            2,
        );
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.class_counts(), vec![2, 1]);
    }

    #[test]
    fn subset_picks_rows() {
        let d = Dataset::new(vec![vec![1.0], vec![2.0], vec![3.0]], vec![0, 1, 2], 3);
        let s = d.subset(&[2, 0]);
        assert_eq!(s.x, vec![vec![3.0], vec![1.0]]);
        assert_eq!(s.y, vec![2, 0]);
    }

    #[test]
    #[should_panic]
    fn rejects_label_out_of_range() {
        Dataset::new(vec![vec![1.0]], vec![5], 2);
    }

    #[test]
    #[should_panic]
    fn rejects_ragged_rows() {
        Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0, 0], 1);
    }
}
