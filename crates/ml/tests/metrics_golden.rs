//! Golden-fixture tests for the evaluation metrics: every expected value
//! below was computed by hand from the written confusion matrix (and
//! cross-checked against scikit-learn's conventions), so a regression in
//! `accuracy`, F1, or the multiclass MCC shows up as a mismatch against a
//! literal constant rather than against another code path.

use spsel_ml::metrics::{accuracy, f1_score, mcc};
use spsel_ml::ConfusionMatrix;

const TOL: f64 = 1e-12;

/// Expand a counts matrix (`counts[t][p]`) into aligned label slices.
fn labels_from_counts(counts: &[&[usize]]) -> (Vec<usize>, Vec<usize>) {
    let mut y_true = Vec::new();
    let mut y_pred = Vec::new();
    for (t, row) in counts.iter().enumerate() {
        for (p, &n) in row.iter().enumerate() {
            for _ in 0..n {
                y_true.push(t);
                y_pred.push(p);
            }
        }
    }
    (y_true, y_pred)
}

fn assert_close(got: f64, want: f64, what: &str) {
    assert!((got - want).abs() < TOL, "{what}: got {got}, want {want}");
}

/// 3-class matrix with symmetric marginals:
///
/// ```text
///            pred 0  1  2
/// true 0        [4, 1, 0]
/// true 1        [1, 3, 1]
/// true 2        [0, 1, 4]
/// ```
///
/// n = 15, trace = 11, row sums = col sums = [5, 5, 5].
/// * accuracy = 11/15
/// * per-class F1 = [8/10, 6/10, 8/10] (e.g. class 0: tp=4, fp=1, fn=1)
/// * macro F1 = weighted F1 = 11/15 (equal supports)
/// * MCC (Gorodkin): c*s - Σt·p = 11*15 - 75 = 90;
///   denom = sqrt((225-75)(225-75)) = 150; MCC = 90/150 = 0.6 exactly.
#[test]
fn symmetric_three_class_fixture() {
    let counts: [&[usize]; 3] = [&[4, 1, 0], &[1, 3, 1], &[0, 1, 4]];
    let (y_true, y_pred) = labels_from_counts(&counts);
    let cm = ConfusionMatrix::from_labels(&y_true, &y_pred, 3);

    for (t, row) in counts.iter().enumerate() {
        for (p, &n) in row.iter().enumerate() {
            assert_eq!(cm.get(t, p), n, "cell ({t},{p})");
        }
    }
    assert_close(cm.accuracy(), 11.0 / 15.0, "accuracy");
    let f1 = cm.per_class_f1();
    assert_close(f1[0], 0.8, "f1[0]");
    assert_close(f1[1], 0.6, "f1[1]");
    assert_close(f1[2], 0.8, "f1[2]");
    assert_close(cm.macro_f1(), 11.0 / 15.0, "macro F1");
    assert_close(cm.weighted_f1(), 11.0 / 15.0, "weighted F1");
    assert_close(cm.mcc(), 0.6, "MCC");

    // The free functions must agree with the matrix methods.
    assert_close(accuracy(&y_true, &y_pred, 3), 11.0 / 15.0, "accuracy fn");
    assert_close(f1_score(&y_true, &y_pred, 3), 11.0 / 15.0, "f1 fn");
    assert_close(mcc(&y_true, &y_pred, 3), 0.6, "mcc fn");
}

/// scikit-learn's own multiclass example:
/// `y_true = [0,1,2,0,1,2]`, `y_pred = [0,2,1,0,0,1]`.
///
/// ```text
///            pred 0  1  2
/// true 0        [2, 0, 0]
/// true 1        [1, 0, 1]
/// true 2        [0, 2, 0]
/// ```
///
/// * accuracy = 2/6
/// * per-class F1 = [4/5, 0, 0] (class 0: tp=2, fp=1, fn=0)
/// * macro F1 = weighted F1 = 4/15
/// * MCC: c*s - Σt·p = 2*6 - (2*3 + 2*2 + 2*1) = 0, so exactly 0 —
///   the prediction carries no class information despite 33% accuracy.
#[test]
fn sklearn_doc_example_fixture() {
    let y_true = [0, 1, 2, 0, 1, 2];
    let y_pred = [0, 2, 1, 0, 0, 1];
    let cm = ConfusionMatrix::from_labels(&y_true, &y_pred, 3);
    assert_close(cm.accuracy(), 2.0 / 6.0, "accuracy");
    let f1 = cm.per_class_f1();
    assert_close(f1[0], 0.8, "f1[0]");
    assert_close(f1[1], 0.0, "f1[1]");
    assert_close(f1[2], 0.0, "f1[2]");
    assert_close(cm.macro_f1(), 4.0 / 15.0, "macro F1");
    assert_close(cm.weighted_f1(), 4.0 / 15.0, "weighted F1");
    assert_close(cm.mcc(), 0.0, "MCC");
}

/// Binary fixture checked against the textbook binary MCC formula:
/// tp=6, fn=2, fp=1, tn=3 (class 1 = positive).
///
/// ```text
///            pred 0  1
/// true 0        [3, 1]
/// true 1        [2, 6]
/// ```
///
/// * accuracy = 9/12
/// * F1(class 1) = 2*6/(12+1+2) = 12/15; F1(class 0) = 6/(6+2+1) = 6/9
/// * weighted F1 = (4*(6/9) + 8*(12/15))/12
/// * MCC = (6*3 - 1*2)/sqrt(7*8*4*5) = 16/sqrt(1120)
#[test]
fn binary_fixture_matches_textbook_formula() {
    let counts: [&[usize]; 2] = [&[3, 1], &[2, 6]];
    let (y_true, y_pred) = labels_from_counts(&counts);
    let cm = ConfusionMatrix::from_labels(&y_true, &y_pred, 2);
    assert_close(cm.accuracy(), 9.0 / 12.0, "accuracy");
    let f1 = cm.per_class_f1();
    assert_close(f1[0], 6.0 / 9.0, "f1[0]");
    assert_close(f1[1], 12.0 / 15.0, "f1[1]");
    assert_close(
        cm.weighted_f1(),
        (4.0 * (6.0 / 9.0) + 8.0 * (12.0 / 15.0)) / 12.0,
        "weighted F1",
    );
    assert_close(cm.macro_f1(), (6.0 / 9.0 + 12.0 / 15.0) / 2.0, "macro F1");
    assert_close(cm.mcc(), 16.0 / 1120.0_f64.sqrt(), "MCC");
}

/// Degenerate marginals: when every true label is one class, or every
/// prediction is one class, MCC must be 0 (scikit-learn convention) while
/// accuracy still reflects raw agreement.
#[test]
fn degenerate_one_class_fixtures() {
    // All-true-one-class, predictions mixed: 3 of 5 correct.
    let y_true = [1, 1, 1, 1, 1];
    let y_pred = [1, 0, 1, 2, 1];
    let cm = ConfusionMatrix::from_labels(&y_true, &y_pred, 3);
    assert_close(cm.accuracy(), 3.0 / 5.0, "accuracy (true degenerate)");
    assert_close(cm.mcc(), 0.0, "MCC (true degenerate)");
    // F1 for class 1: tp=3, fp=0, fn=2 -> 6/8; classes 0 and 2 have no
    // true members and no correct predictions -> 0.
    let f1 = cm.per_class_f1();
    assert_close(f1[1], 0.75, "f1[1] (true degenerate)");
    assert_close(cm.weighted_f1(), 0.75, "weighted F1 (true degenerate)");
    assert_close(cm.macro_f1(), 0.25, "macro F1 (true degenerate)");

    // All predictions one class over mixed truth.
    let y_true = [0, 0, 2, 1, 0];
    let y_pred = [0, 0, 0, 0, 0];
    let cm = ConfusionMatrix::from_labels(&y_true, &y_pred, 3);
    assert_close(cm.accuracy(), 3.0 / 5.0, "accuracy (pred degenerate)");
    assert_close(cm.mcc(), 0.0, "MCC (pred degenerate)");

    // Both degenerate and fully correct: accuracy 1, MCC still 0 by
    // convention (no discrimination was demonstrated).
    let y = [2, 2, 2];
    let cm = ConfusionMatrix::from_labels(&y, &y, 3);
    assert_close(cm.accuracy(), 1.0, "accuracy (both degenerate)");
    assert_close(cm.mcc(), 0.0, "MCC (both degenerate)");
}
