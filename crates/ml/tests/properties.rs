//! Property-based tests of the ML substrate's core invariants.

use proptest::prelude::*;
use spsel_ml::cluster::kmeans::KMeans;
use spsel_ml::cluster::online::OnlineKMeans;
use spsel_ml::tree::DecisionTree;
use spsel_ml::{sq_dist, Classifier, ClusterAlgorithm, ConfusionMatrix, Dataset};

/// Random labels in 0..k for n samples.
fn arb_labels(k: usize) -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    proptest::collection::vec((0..k, 0..k), 1..120).prop_map(|pairs| pairs.into_iter().unzip())
}

/// Random small point cloud.
fn arb_points() -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(-100.0f64..100.0, 2..4), 1..60).prop_map(
        |mut pts| {
            // Equalize dimensions to the first point's.
            let d = pts[0].len();
            for p in pts.iter_mut() {
                p.resize(d, 0.0);
            }
            pts
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn metrics_are_bounded((y_true, y_pred) in arb_labels(4)) {
        let cm = ConfusionMatrix::from_labels(&y_true, &y_pred, 4);
        prop_assert!((0.0..=1.0).contains(&cm.accuracy()));
        prop_assert!((0.0..=1.0).contains(&cm.weighted_f1()));
        prop_assert!((0.0..=1.0).contains(&cm.macro_f1()));
        prop_assert!((-1.0..=1.0).contains(&cm.mcc()));
        // Trace + errors == total.
        prop_assert_eq!(cm.total(), y_true.len());
    }

    #[test]
    fn perfect_predictions_maximize_all_metrics((y, _) in arb_labels(3)) {
        let cm = ConfusionMatrix::from_labels(&y, &y, 3);
        prop_assert_eq!(cm.accuracy(), 1.0);
        prop_assert_eq!(cm.weighted_f1(), 1.0);
        // MCC is 1 unless the marginals are degenerate (single class).
        let distinct = y.iter().collect::<std::collections::HashSet<_>>().len();
        if distinct > 1 {
            prop_assert!((cm.mcc() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn kmeans_assignments_are_nearest_centroid(points in arb_points(), k in 1usize..8) {
        let clustering = KMeans::new(k, 7).fit(&points);
        for (p, &a) in points.iter().zip(&clustering.assignments) {
            let assigned = sq_dist(p, &clustering.centroids[a]);
            for c in &clustering.centroids {
                prop_assert!(assigned <= sq_dist(p, c) + 1e-9);
            }
        }
        // Assignment via the public API agrees with the stored one.
        for (p, &a) in points.iter().zip(&clustering.assignments) {
            let via_api = clustering.assign(p);
            prop_assert!(
                (sq_dist(p, &clustering.centroids[via_api])
                    - sq_dist(p, &clustering.centroids[a])).abs() < 1e-9
            );
        }
    }

    #[test]
    fn kmeans_centroid_count_bounded(points in arb_points(), k in 1usize..10) {
        let clustering = KMeans::new(k, 3).fit(&points);
        prop_assert!(clustering.n_clusters() <= k.min(points.len()).max(1));
        prop_assert_eq!(clustering.assignments.len(), points.len());
    }

    #[test]
    fn online_kmeans_counts_are_conserved(points in arb_points()) {
        let mut m = OnlineKMeans::new(5.0, 16);
        for p in &points {
            m.observe(p);
        }
        prop_assert_eq!(m.counts().iter().sum::<usize>(), points.len());
        prop_assert!(m.n_clusters() <= 16);
        prop_assert!(m.n_clusters() >= 1);
    }

    #[test]
    fn flat_centroids_match_assign_and_novelty(points in arb_points()) {
        // Grow an online model, then check that one FlatCentroids::nearest
        // call reproduces the legacy assign + novelty pair exactly: same
        // argmin, bit-identical distance.
        let mut m = OnlineKMeans::new(5.0, 16);
        for p in &points {
            m.observe(p);
        }
        let flat = m.flatten();
        prop_assert_eq!(flat.len(), m.n_clusters());
        for p in &points {
            let (i, d) = flat.nearest(p).expect("non-empty");
            prop_assert_eq!(i, m.assign(p));
            prop_assert_eq!(d.to_bits(), m.novelty(p).to_bits());
        }
    }

    #[test]
    fn unlimited_tree_memorizes_distinct_rows(seed in 0u64..1000) {
        // Rows with unique feature values are always separable.
        let n = 20;
        let x: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 + (seed % 7) as f64 * 0.01]).collect();
        let y: Vec<usize> = (0..n).map(|i| ((i as u64 ^ seed) % 3) as usize).collect();
        let data = Dataset::new(x.clone(), y.clone(), 3);
        let mut t = DecisionTree::with_defaults();
        t.fit(&data);
        prop_assert_eq!(t.predict(&x), y);
    }

    #[test]
    fn stratified_kfold_partitions(y in proptest::collection::vec(0usize..3, 10..100), k in 2usize..5) {
        let folds = spsel_ml::cv::stratified_kfold(&y, 3, k, 11);
        let mut seen = vec![false; y.len()];
        for (train, test) in &folds {
            prop_assert_eq!(train.len() + test.len(), y.len());
            for &i in test {
                prop_assert!(!seen[i], "index {} in two test folds", i);
                seen[i] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }
}
