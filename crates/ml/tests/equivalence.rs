//! Equivalence proofs for the performance rewrites: the presorted split
//! search must grow node-for-node identical trees (structure, thresholds,
//! tie-breaks — checked via `PartialEq` on the fitted model) to the naive
//! per-node re-sorting search it replaced, and the norm-expansion KNN must
//! rank neighbors exactly like the direct squared-distance scan.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spsel_ml::forest::RandomForestParams;
use spsel_ml::gboost::GradientBoostingParams;
use spsel_ml::tree::DecisionTreeParams;
use spsel_ml::{Classifier, Dataset, DecisionTree, GradientBoosting, KnnClassifier, RandomForest};

/// Random dataset with continuous features (ties unlikely).
fn random_dataset(n: usize, dim: usize, n_classes: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let x: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(-3.0..3.0)).collect())
        .collect();
    let y: Vec<usize> = x
        .iter()
        .map(|row| {
            let s: f64 = row.iter().sum();
            let noisy: f64 = s + rng.gen_range(-0.5..0.5);
            ((noisy.abs() * 1.3) as usize) % n_classes
        })
        .collect();
    Dataset::new(x, y, n_classes)
}

/// Adversarial dataset: heavy value ties (quantized features), one
/// constant feature, one near-constant feature.
fn tied_dataset(n: usize, n_classes: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let x: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            vec![
                (rng.gen_range(0..4) as f64) * 0.25, // heavy ties
                7.5,                                 // constant
                if i == 0 { 1.0 } else { 0.0 },      // near-constant
                (rng.gen_range(0..2) as f64),        // binary
                rng.gen_range(-1.0..1.0),            // continuous
            ]
        })
        .collect();
    let y: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n_classes)).collect();
    Dataset::new(x, y, n_classes)
}

fn datasets() -> Vec<(&'static str, Dataset)> {
    vec![
        ("random", random_dataset(160, 6, 4, 11)),
        ("random_binary", random_dataset(90, 3, 2, 23)),
        ("tied", tied_dataset(120, 3, 5)),
        ("tied_small", tied_dataset(13, 2, 9)),
    ]
}

#[test]
fn presorted_tree_identical_to_naive() {
    for (name, data) in datasets() {
        for params in [
            DecisionTreeParams::default(),
            DecisionTreeParams {
                max_depth: Some(3),
                ..Default::default()
            },
            DecisionTreeParams {
                min_samples_leaf: 5,
                min_samples_split: 12,
                ..Default::default()
            },
            DecisionTreeParams {
                max_features: Some(2),
                seed: 42,
                ..Default::default()
            },
        ] {
            let mut fast = DecisionTree::new(params.clone());
            let mut slow = DecisionTree::new(params.clone());
            fast.fit(&data);
            slow.fit_naive(&data);
            assert_eq!(fast, slow, "tree mismatch on {name} with {params:?}");
            assert_eq!(
                fast.predict(&data.x),
                slow.predict(&data.x),
                "prediction mismatch on {name}"
            );
        }
    }
}

#[test]
fn presorted_gboost_identical_to_naive() {
    for (name, data) in datasets() {
        for params in [
            GradientBoostingParams {
                n_rounds: 8,
                max_depth: 3,
                ..Default::default()
            },
            GradientBoostingParams {
                n_rounds: 4,
                max_depth: 6,
                min_child_weight: 2.0,
                ..Default::default()
            },
        ] {
            let mut fast = GradientBoosting::new(params.clone());
            let mut slow = GradientBoosting::new(params.clone());
            fast.fit(&data);
            slow.fit_naive(&data);
            assert_eq!(fast, slow, "booster mismatch on {name} with {params:?}");
            assert_eq!(
                fast.predict(&data.x),
                slow.predict(&data.x),
                "prediction mismatch on {name}"
            );
        }
    }
}

#[test]
fn forest_over_presorted_trees_is_deterministic() {
    // The forest reuses DecisionTree::fit, so tree-level equivalence covers
    // it; this guards the wiring (bootstrap + per-tree seeds) staying
    // deterministic across repeated fits.
    let data = random_dataset(120, 5, 3, 31);
    let params = RandomForestParams {
        n_estimators: 12,
        max_depth: Some(5),
        seed: 7,
        ..Default::default()
    };
    let mut a = RandomForest::new(params.clone());
    let mut b = RandomForest::new(params);
    a.fit(&data);
    b.fit(&data);
    assert_eq!(a, b);
    assert_eq!(a.predict(&data.x), b.predict(&data.x));
}

#[test]
fn knn_norm_expansion_matches_direct_distances() {
    // Reference ranking: direct squared distances, same selection and
    // tie-break logic as KnnClassifier::predict_one.
    fn reference_predict(train: &Dataset, k: usize, q: &[f64]) -> usize {
        let k = k.min(train.x.len());
        let mut dists: Vec<(f64, usize)> = train
            .x
            .iter()
            .zip(&train.y)
            .map(|(xi, &yi)| (spsel_ml::sq_dist(q, xi), yi))
            .collect();
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let neighbors = &mut dists[..k];
        neighbors.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        let mut votes = vec![0usize; train.n_classes];
        for &(_, label) in neighbors.iter() {
            votes[label] += 1;
        }
        let max_votes = *votes.iter().max().unwrap();
        neighbors
            .iter()
            .find(|&&(_, label)| votes[label] == max_votes)
            .map(|&(_, label)| label)
            .unwrap()
    }

    for (name, data) in datasets() {
        for k in [1, 3, 5] {
            let mut knn = KnnClassifier::new(k);
            knn.fit(&data);
            let queries = random_dataset(40, data.dim(), 2, 77 + k as u64);
            for q in &queries.x {
                assert_eq!(
                    knn.predict_one(q),
                    reference_predict(&data, k, q),
                    "knn mismatch on {name} k={k}"
                );
            }
        }
    }
}
