//! Behavioural tests for the [`OnlineSelector`] as the serving layer uses
//! it: deterministic streaming, benchmark prioritization for unlabeled
//! clusters, the feedback-then-redecide loop — and bit-identical
//! equivalence between the serial selector and the concurrent
//! [`ShardedOnlineSelector`] the engine serves from.

use spsel_core::semi::{ClusterMethod, Labeler, SemiConfig, SemiSupervisedSelector};
use spsel_core::{OnlineDecision, OnlineSelector, ShardedOnlineSelector};
use spsel_features::FeatureVector;
use spsel_matrix::{gen, CsrMatrix, Format};

/// A small two-family batch training set: regular stencils (ELL-friendly)
/// and power-law matrices (CSR-friendly).
fn batch_selector() -> SemiSupervisedSelector {
    let mut features = Vec::new();
    let mut labels = Vec::new();
    for s in 0..12u64 {
        features.push(FeatureVector::from_csr(&CsrMatrix::from(&gen::stencil2d(
            12 + s as usize % 4,
            s,
        ))));
        labels.push(Format::Ell);
        features.push(FeatureVector::from_csr(&CsrMatrix::from(&gen::power_law(
            250, 250, 2, 2.4, 100, s,
        ))));
        labels.push(Format::Csr);
    }
    SemiSupervisedSelector::fit(
        &features,
        &labels,
        SemiConfig::new(ClusterMethod::KMeans { nc: 5 }, Labeler::Vote, 3),
    )
}

/// A stream mixing known families with genuinely novel shapes, in a
/// fixed order.
fn stream() -> Vec<FeatureVector> {
    let mut fv = Vec::new();
    for s in 0..8u64 {
        fv.push(FeatureVector::from_csr(&CsrMatrix::from(&gen::power_law(
            260,
            260,
            2,
            2.3,
            90,
            100 + s,
        ))));
        fv.push(FeatureVector::from_csr(&CsrMatrix::from(&gen::stencil2d(
            14 + s as usize % 3,
            200 + s,
        ))));
        fv.push(FeatureVector::from_csr(&CsrMatrix::from(&gen::bimodal(
            1500,
            1500,
            3,
            40,
            0.3,
            300 + s,
        ))));
        fv.push(FeatureVector::from_csr(&CsrMatrix::from(
            &gen::multi_diagonal(600 + s as usize * 17, 7, 400 + s),
        )));
    }
    fv
}

/// Streaming is deterministic: two selectors warm-started from the same
/// batch model and fed the same stream make identical decisions at every
/// step — the property that makes serving reproducible across restarts.
#[test]
fn identical_streams_produce_identical_decision_sequences() {
    let batch = batch_selector();
    let mut a = OnlineSelector::from_batch(&batch, 0.3, 64);
    let mut b = OnlineSelector::from_batch(&batch, 0.3, 64);
    let mut decisions: Vec<OnlineDecision> = Vec::new();
    for fv in &stream() {
        let da = a.observe(fv);
        let db = b.observe(fv);
        assert_eq!(da, db, "divergent decision at step {}", decisions.len());
        decisions.push(da);
    }
    assert_eq!(a.n_clusters(), b.n_clusters());
    assert_eq!(a.staleness(), b.staleness());
    // The stream contains at least one shape the batch never saw.
    assert!(
        decisions.iter().any(|d| d.new_cluster),
        "the novel families should have opened clusters"
    );
}

/// `peek` is the read-only twin of `observe`: it reports the same
/// cluster, format, and benchmark request the next `observe` will make,
/// and repeated peeks never move the model.
#[test]
fn peek_matches_observe_without_mutating() {
    let batch = batch_selector();
    let mut online = OnlineSelector::from_batch(&batch, 0.3, 64);
    for fv in &stream() {
        let before_clusters = online.n_clusters();
        let before_staleness = online.staleness();
        let p1 = online.peek(fv);
        let p2 = online.peek(fv);
        assert_eq!(p1, p2, "peek must be idempotent");
        assert_eq!(online.n_clusters(), before_clusters);
        assert_eq!(online.staleness(), before_staleness);
        let d = online.observe(fv);
        if !d.new_cluster {
            assert_eq!(p1.cluster, d.cluster);
            assert_eq!(p1.format, d.format);
            assert_eq!(p1.benchmark_requested, d.benchmark_requested);
        }
    }
}

/// Unlabeled clusters are prioritized for benchmarking: every observation
/// landing in a label-less cluster requests a benchmark (and raises the
/// staleness), while observations in labeled clusters never do.
#[test]
fn only_unlabeled_clusters_request_benchmarks() {
    let batch = batch_selector();
    let mut online = OnlineSelector::from_batch(&batch, 0.3, 64);
    assert_eq!(
        online.unlabeled_clusters(),
        0,
        "warm start is fully labeled"
    );
    let mut stale = 0usize;
    for fv in &stream() {
        let d = online.observe(fv);
        assert_eq!(
            d.benchmark_requested,
            !online.is_labeled(d.cluster),
            "benchmark requests must track label state"
        );
        if d.new_cluster {
            assert!(d.benchmark_requested, "a fresh cluster has no label yet");
            assert_eq!(d.format, Format::Csr, "unlabeled clusters fall back to CSR");
        }
        stale += d.benchmark_requested as usize;
        assert_eq!(online.staleness(), stale);
    }
    assert!(
        online.unlabeled_clusters() > 0,
        "the novel families should still be awaiting labels"
    );
}

/// The feedback loop: a benchmark label on a cluster immediately changes
/// that cluster's recommendation, stops its benchmark requests, clears
/// its staleness — and a later (corrective) label wins over the first.
#[test]
fn feedback_then_redecide_uses_the_measured_label() {
    let batch = batch_selector();
    let mut online = OnlineSelector::from_batch(&batch, 0.3, 64);
    let novel = FeatureVector::from_csr(&CsrMatrix::from(&gen::bimodal(1500, 1500, 3, 40, 0.3, 9)));
    let d = online.observe(&novel);
    if !d.new_cluster {
        // With this threshold the bimodal family is genuinely novel; if
        // generators ever change, the test is vacuous rather than wrong.
        return;
    }
    assert_eq!(d.format, Format::Csr, "default before feedback");
    assert!(d.benchmark_requested);

    online.report_benchmark(d.cluster, Format::Hyb);
    assert!(online.is_labeled(d.cluster));
    assert_eq!(
        online.staleness(),
        0,
        "feedback clears the cluster's staleness"
    );

    // Redecide: the same family now gets the measured format, observing
    // or peeking, and no further benchmarks are requested.
    let again = online.observe(&novel);
    assert_eq!(again.cluster, d.cluster);
    assert_eq!(again.format, Format::Hyb);
    assert!(!again.benchmark_requested);
    assert_eq!(online.peek(&novel).format, Format::Hyb);
    assert_eq!(online.predict(&novel), Format::Hyb);

    // The platform drifts and a new measurement disagrees: latest wins.
    online.report_benchmark(d.cluster, Format::Ell);
    assert_eq!(online.predict(&novel), Format::Ell);
}

/// The tentpole determinism guarantee: for any single-client stream of
/// interleaved observes, peeks, and feedback, the sharded selector makes
/// decisions bit-identical to the serial `OnlineSelector`, at every
/// shard count — so swapping the engine's concurrency model changed no
/// reply.
#[test]
fn sharded_selector_is_bit_identical_to_serial_for_any_shard_count() {
    let batch = batch_selector();
    for shards in [1usize, 3, 8] {
        let mut serial = OnlineSelector::from_batch(&batch, 0.3, 64);
        let sharded = ShardedOnlineSelector::from_batch(&batch, 0.3, 64, shards);
        assert_eq!(sharded.shards(), shards);
        for (i, fv) in stream().iter().enumerate() {
            // Read path first: peek and the lock-free decide must agree.
            let peek = serial.peek(fv);
            let read = sharded.decide(fv, false);
            assert_eq!(
                read.decision, peek,
                "read divergence at step {i} ({shards} shards)"
            );

            // Write path: observe on both, compare every field bit for
            // bit (distance is an f64 — compare exactly, not loosely).
            let pre_novelty = serial.novelty(fv);
            let d = serial.observe(fv);
            let view = sharded.decide(fv, true);
            assert_eq!(
                view.decision, d,
                "write divergence at step {i} ({shards} shards)"
            );
            assert_eq!(
                view.distance.to_bits(),
                pre_novelty.to_bits(),
                "novelty must be the pre-observation distance, bit for bit"
            );
            assert_eq!(view.cluster_size, serial.cluster_count(d.cluster));

            // Interleave feedback every third step to exercise the shard
            // locks mid-stream.
            if i % 3 == 2 {
                let cluster = d.cluster;
                serial.report_benchmark(cluster, Format::Hyb);
                let fb = sharded
                    .report_benchmark(cluster, Format::Hyb)
                    .expect("cluster exists");
                assert_eq!(fb.unlabeled_clusters, serial.unlabeled_clusters());
                assert_eq!(fb.staleness, serial.staleness());
            }
            assert_eq!(sharded.n_clusters(), serial.n_clusters());
            assert_eq!(sharded.staleness(), serial.staleness());
        }
        // Post-stream, every cluster's label and the final prediction
        // agree.
        let snap = sharded.snapshot();
        for c in 0..serial.n_clusters() {
            assert_eq!(snap.is_labeled(c), serial.is_labeled(c));
        }
        for fv in stream().iter().take(4) {
            assert_eq!(sharded.predict(fv), serial.predict(fv));
        }
        // Out-of-range feedback is a typed None, not a panic.
        assert!(sharded.report_benchmark(10_000, Format::Coo).is_none());
    }
}

/// Read-only floods never touch the write side: `decide(_, false)` takes
/// zero write locks and publishes zero snapshots, which is exactly what
/// the serving layer's contention counters assert in CI.
#[test]
fn read_only_decisions_take_no_write_locks() {
    let batch = batch_selector();
    let sharded = ShardedOnlineSelector::from_batch(&batch, 0.3, 64, 4);
    let base_version = sharded.snapshot().version();
    for fv in &stream() {
        for _ in 0..3 {
            let view = sharded.decide(fv, false);
            assert_eq!(view.snapshot_version, base_version);
        }
    }
    let c = sharded.contention().report();
    assert_eq!(c.read_decisions, stream().len() as u64 * 3);
    assert_eq!(c.write_decisions, 0);
    assert_eq!(c.write_lock_acquisitions, 0, "reads must be lock-free");
    assert_eq!(c.write_lock_wait_us, 0);
    assert_eq!(c.snapshot_swaps, 0);
    assert_eq!(c.shard_imbalance(), 0.0, "no feedback yet");

    // One write decision flips the counters and bumps the version.
    let view = sharded.decide(&stream()[0], true);
    assert_eq!(view.snapshot_version, base_version + 1);
    let c = sharded.contention().report();
    assert_eq!(c.write_decisions, 1);
    assert!(c.write_lock_acquisitions >= 1);
    assert_eq!(c.snapshot_swaps, 1);
}

/// Feedback counters land in the cluster's own shard (`cluster % shards`)
/// and the imbalance ratio reflects a skewed write load.
#[test]
fn feedback_is_counted_per_shard() {
    let batch = batch_selector();
    let shards = 4;
    let sharded = ShardedOnlineSelector::from_batch(&batch, 0.3, 64, shards);
    let n = sharded.n_clusters().min(shards);
    // All feedback onto cluster 1's shard: maximally imbalanced.
    for _ in 0..6 {
        sharded.report_benchmark(1 % n, Format::Ell).unwrap();
    }
    let c = sharded.contention().report();
    assert_eq!(c.shard_feedbacks.len(), shards);
    assert_eq!(c.shard_feedbacks.iter().sum::<u64>(), 6);
    assert_eq!(c.shard_feedbacks[1 % n % shards], 6);
    assert_eq!(c.shard_imbalance(), shards as f64, "one hot shard");
}
