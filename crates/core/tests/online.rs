//! Behavioural tests for the [`OnlineSelector`] as the serving layer uses
//! it: deterministic streaming, benchmark prioritization for unlabeled
//! clusters, and the feedback-then-redecide loop.

use spsel_core::semi::{ClusterMethod, Labeler, SemiConfig, SemiSupervisedSelector};
use spsel_core::{OnlineDecision, OnlineSelector};
use spsel_features::FeatureVector;
use spsel_matrix::{gen, CsrMatrix, Format};

/// A small two-family batch training set: regular stencils (ELL-friendly)
/// and power-law matrices (CSR-friendly).
fn batch_selector() -> SemiSupervisedSelector {
    let mut features = Vec::new();
    let mut labels = Vec::new();
    for s in 0..12u64 {
        features.push(FeatureVector::from_csr(&CsrMatrix::from(&gen::stencil2d(
            12 + s as usize % 4,
            s,
        ))));
        labels.push(Format::Ell);
        features.push(FeatureVector::from_csr(&CsrMatrix::from(&gen::power_law(
            250, 250, 2, 2.4, 100, s,
        ))));
        labels.push(Format::Csr);
    }
    SemiSupervisedSelector::fit(
        &features,
        &labels,
        SemiConfig::new(ClusterMethod::KMeans { nc: 5 }, Labeler::Vote, 3),
    )
}

/// A stream mixing known families with genuinely novel shapes, in a
/// fixed order.
fn stream() -> Vec<FeatureVector> {
    let mut fv = Vec::new();
    for s in 0..8u64 {
        fv.push(FeatureVector::from_csr(&CsrMatrix::from(&gen::power_law(
            260,
            260,
            2,
            2.3,
            90,
            100 + s,
        ))));
        fv.push(FeatureVector::from_csr(&CsrMatrix::from(&gen::stencil2d(
            14 + s as usize % 3,
            200 + s,
        ))));
        fv.push(FeatureVector::from_csr(&CsrMatrix::from(&gen::bimodal(
            1500,
            1500,
            3,
            40,
            0.3,
            300 + s,
        ))));
        fv.push(FeatureVector::from_csr(&CsrMatrix::from(
            &gen::multi_diagonal(600 + s as usize * 17, 7, 400 + s),
        )));
    }
    fv
}

/// Streaming is deterministic: two selectors warm-started from the same
/// batch model and fed the same stream make identical decisions at every
/// step — the property that makes serving reproducible across restarts.
#[test]
fn identical_streams_produce_identical_decision_sequences() {
    let batch = batch_selector();
    let mut a = OnlineSelector::from_batch(&batch, 0.3, 64);
    let mut b = OnlineSelector::from_batch(&batch, 0.3, 64);
    let mut decisions: Vec<OnlineDecision> = Vec::new();
    for fv in &stream() {
        let da = a.observe(fv);
        let db = b.observe(fv);
        assert_eq!(da, db, "divergent decision at step {}", decisions.len());
        decisions.push(da);
    }
    assert_eq!(a.n_clusters(), b.n_clusters());
    assert_eq!(a.staleness(), b.staleness());
    // The stream contains at least one shape the batch never saw.
    assert!(
        decisions.iter().any(|d| d.new_cluster),
        "the novel families should have opened clusters"
    );
}

/// `peek` is the read-only twin of `observe`: it reports the same
/// cluster, format, and benchmark request the next `observe` will make,
/// and repeated peeks never move the model.
#[test]
fn peek_matches_observe_without_mutating() {
    let batch = batch_selector();
    let mut online = OnlineSelector::from_batch(&batch, 0.3, 64);
    for fv in &stream() {
        let before_clusters = online.n_clusters();
        let before_staleness = online.staleness();
        let p1 = online.peek(fv);
        let p2 = online.peek(fv);
        assert_eq!(p1, p2, "peek must be idempotent");
        assert_eq!(online.n_clusters(), before_clusters);
        assert_eq!(online.staleness(), before_staleness);
        let d = online.observe(fv);
        if !d.new_cluster {
            assert_eq!(p1.cluster, d.cluster);
            assert_eq!(p1.format, d.format);
            assert_eq!(p1.benchmark_requested, d.benchmark_requested);
        }
    }
}

/// Unlabeled clusters are prioritized for benchmarking: every observation
/// landing in a label-less cluster requests a benchmark (and raises the
/// staleness), while observations in labeled clusters never do.
#[test]
fn only_unlabeled_clusters_request_benchmarks() {
    let batch = batch_selector();
    let mut online = OnlineSelector::from_batch(&batch, 0.3, 64);
    assert_eq!(
        online.unlabeled_clusters(),
        0,
        "warm start is fully labeled"
    );
    let mut stale = 0usize;
    for fv in &stream() {
        let d = online.observe(fv);
        assert_eq!(
            d.benchmark_requested,
            !online.is_labeled(d.cluster),
            "benchmark requests must track label state"
        );
        if d.new_cluster {
            assert!(d.benchmark_requested, "a fresh cluster has no label yet");
            assert_eq!(d.format, Format::Csr, "unlabeled clusters fall back to CSR");
        }
        stale += d.benchmark_requested as usize;
        assert_eq!(online.staleness(), stale);
    }
    assert!(
        online.unlabeled_clusters() > 0,
        "the novel families should still be awaiting labels"
    );
}

/// The feedback loop: a benchmark label on a cluster immediately changes
/// that cluster's recommendation, stops its benchmark requests, clears
/// its staleness — and a later (corrective) label wins over the first.
#[test]
fn feedback_then_redecide_uses_the_measured_label() {
    let batch = batch_selector();
    let mut online = OnlineSelector::from_batch(&batch, 0.3, 64);
    let novel = FeatureVector::from_csr(&CsrMatrix::from(&gen::bimodal(1500, 1500, 3, 40, 0.3, 9)));
    let d = online.observe(&novel);
    if !d.new_cluster {
        // With this threshold the bimodal family is genuinely novel; if
        // generators ever change, the test is vacuous rather than wrong.
        return;
    }
    assert_eq!(d.format, Format::Csr, "default before feedback");
    assert!(d.benchmark_requested);

    online.report_benchmark(d.cluster, Format::Hyb);
    assert!(online.is_labeled(d.cluster));
    assert_eq!(
        online.staleness(),
        0,
        "feedback clears the cluster's staleness"
    );

    // Redecide: the same family now gets the measured format, observing
    // or peeking, and no further benchmarks are requested.
    let again = online.observe(&novel);
    assert_eq!(again.cluster, d.cluster);
    assert_eq!(again.format, Format::Hyb);
    assert!(!again.benchmark_requested);
    assert_eq!(online.peek(&novel).format, Format::Hyb);
    assert_eq!(online.predict(&novel), Format::Hyb);

    // The platform drifts and a new measurement disagrees: latest wins.
    online.report_benchmark(d.cluster, Format::Ell);
    assert_eq!(online.predict(&novel), Format::Ell);
}
