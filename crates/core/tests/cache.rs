//! Persistent-cache behavior: warm reads reproduce the computed artifacts
//! exactly, corrupted or truncated cache files fall back to recomputation
//! without panicking, and `SPSEL_NO_CACHE` turns the layer off entirely.
//!
//! Each test writes into its own directory under `target/` so runs never
//! interfere with each other or with the real `results/cache/`.

use spsel_core::cache::{Cache, GcConfig, NO_CACHE_ENV};
use spsel_core::corpus::{Corpus, CorpusConfig};
use spsel_core::experiments::ExperimentContext;
use spsel_core::telemetry::RunReport;
use spsel_gpusim::{FaultConfig, Gpu};
use std::path::PathBuf;
use std::time::{Duration, SystemTime};

fn test_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/cache-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_cfg() -> CorpusConfig {
    CorpusConfig::small(20, 7)
}

#[test]
fn warm_read_returns_identical_artifacts() {
    let dir = test_dir("warm");
    let cache = Cache::new(&dir);
    let cfg = small_cfg();

    let corpus = Corpus::build(cfg.clone());
    cache.store_corpus(&corpus);
    let results = corpus.benchmark(Gpu::Turing);
    cache.store_bench(corpus.config(), Gpu::Turing, &corpus.records, &results);

    // A fresh handle (fresh counters) must reproduce both artifacts
    // exactly from disk.
    let warm = Cache::new(&dir);
    let loaded = warm.load_corpus(&cfg).expect("warm corpus read");
    assert_eq!(loaded.records, corpus.records);
    assert_eq!(loaded.config(), corpus.config());
    let loaded_bench = warm
        .load_bench(corpus.config(), Gpu::Turing, &corpus.records)
        .expect("warm bench read");
    assert_eq!(loaded_bench, results);
    let report = warm.report();
    assert_eq!((report.hits, report.misses), (2, 0), "{report:?}");

    // The stored file bytes are stable: storing the same artifacts again
    // produces byte-identical files (deterministic serialization, so the
    // cache key and content never drift between runs).
    let corpus_path = warm.corpus_path(&cfg).unwrap();
    let bench_path = warm.bench_path(&cfg, Gpu::Turing).unwrap();
    let before = (
        std::fs::read(&corpus_path).unwrap(),
        std::fs::read(&bench_path).unwrap(),
    );
    warm.store_corpus(&corpus);
    warm.store_bench(corpus.config(), Gpu::Turing, &corpus.records, &results);
    assert_eq!(std::fs::read(&corpus_path).unwrap(), before.0);
    assert_eq!(std::fs::read(&bench_path).unwrap(), before.1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_entries_recompute_silently() {
    let dir = test_dir("corrupt");
    let cfg = small_cfg();

    // Populate through the full pipeline.
    let cache = Cache::new(&dir);
    let ctx = ExperimentContext::build(cfg.clone(), &cache, &mut RunReport::new("seed"));

    let corpus_path = cache.corpus_path(&cfg).unwrap();
    let bench_path = cache.bench_path(&cfg, Gpu::Pascal).unwrap();

    // Truncate the corpus artifact mid-JSON and replace one bench
    // artifact with garbage bytes.
    let bytes = std::fs::read(&corpus_path).unwrap();
    std::fs::write(&corpus_path, &bytes[..bytes.len() / 2]).unwrap();
    std::fs::write(&bench_path, b"{not json\xff\xfe").unwrap();

    // Loads must fail soft (None), never panic.
    let damaged = Cache::new(&dir);
    assert!(damaged.load_corpus(&cfg).is_none());
    assert!(damaged
        .load_bench(ctx.corpus.config(), Gpu::Pascal, &ctx.corpus.records)
        .is_none());

    // The full pipeline must recompute the damaged artifacts, reuse the
    // intact ones, and end with the same results as the seed run.
    let rebuild = Cache::new(&dir);
    let ctx2 = ExperimentContext::build(cfg.clone(), &rebuild, &mut RunReport::new("rebuild"));
    assert_eq!(ctx2.corpus.records, ctx.corpus.records);
    assert_eq!(ctx2.benches, ctx.benches);
    let report = rebuild.report();
    assert_eq!(report.misses, 2, "corpus + 1 bench damaged: {report:?}");
    assert_eq!(report.hits, 2, "2 bench artifacts intact: {report:?}");
    assert_eq!(report.stores, 2, "damaged artifacts rewritten: {report:?}");

    // After the repair run, a fully warm run hits everything.
    let warm = Cache::new(&dir);
    let ctx3 = ExperimentContext::build(cfg, &warm, &mut RunReport::new("warm"));
    assert_eq!(ctx3.benches, ctx.benches);
    let report = warm.report();
    assert_eq!((report.hits, report.misses), (4, 0), "{report:?}");

    let _ = std::fs::remove_dir_all(&dir);
}

fn set_age(path: &std::path::Path, age: Duration) {
    let f = std::fs::File::options().append(true).open(path).unwrap();
    f.set_modified(SystemTime::now() - age).unwrap();
}

#[test]
fn gc_evicts_oldest_first_under_size_pressure() {
    let dir = test_dir("gc-size");
    let cache = Cache::new(&dir);

    // Four artifacts with distinct ages; each file is a few hundred bytes.
    let mut paths = Vec::new();
    for (i, days) in [40u64, 30, 20, 10].iter().enumerate() {
        let corpus = Corpus::build(CorpusConfig::small(6, 100 + i as u64));
        cache.store_corpus(&corpus);
        let path = cache.corpus_path(corpus.config()).unwrap();
        set_age(&path, Duration::from_secs(days * 86_400));
        paths.push(path);
    }
    let sizes: Vec<u64> = paths
        .iter()
        .map(|p| std::fs::metadata(p).unwrap().len())
        .collect();

    // Budget fits only the two newest files: the two oldest must go, in
    // mtime order, and the survivors stay readable.
    let budget = sizes[2] + sizes[3];
    let gc = cache.gc(&GcConfig {
        max_bytes: budget,
        max_age: Duration::from_secs(365 * 86_400),
    });
    assert_eq!(gc.scanned, 4, "{gc:?}");
    assert_eq!(gc.evicted, 2, "{gc:?}");
    assert_eq!(gc.kept, 2, "{gc:?}");
    assert_eq!(gc.bytes_evicted, sizes[0] + sizes[1], "{gc:?}");
    assert!(!paths[0].exists(), "oldest file must be evicted first");
    assert!(!paths[1].exists());
    assert!(paths[2].exists());
    assert!(paths[3].exists());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gc_expires_by_age_and_keeps_live_entries() {
    let dir = test_dir("gc-age");
    let cache = Cache::new(&dir);

    let old = Corpus::build(CorpusConfig::small(6, 1));
    cache.store_corpus(&old);
    let old_path = cache.corpus_path(old.config()).unwrap();
    set_age(&old_path, Duration::from_secs(30 * 86_400));

    let fresh = Corpus::build(CorpusConfig::small(6, 2));
    cache.store_corpus(&fresh);
    let fresh_path = cache.corpus_path(fresh.config()).unwrap();

    let gc = cache.gc(&GcConfig {
        max_bytes: u64::MAX,
        max_age: Duration::from_secs(7 * 86_400),
    });
    assert_eq!((gc.evicted, gc.kept), (1, 1), "{gc:?}");
    assert!(!old_path.exists(), "expired entry must be evicted");
    assert!(fresh_path.exists(), "live entry must survive");
    assert!(
        cache.load_corpus(fresh.config()).is_some(),
        "survivor stays readable"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_corruption_is_counted_and_recomputed() {
    let dir = test_dir("inject");
    let cfg = small_cfg();
    let corpus = Corpus::build(cfg.clone());

    // A corrupt-rate-1.0 cache truncates every artifact it stores.
    let faulty = Cache::new(&dir).with_faults(FaultConfig::uniform(1.0, 3));
    faulty.store_corpus(&corpus);
    assert_eq!(faulty.corruption_injected(), 1);
    let path = faulty.corpus_path(&cfg).unwrap();
    let stored = std::fs::read(&path).unwrap();

    // The artifact really is damaged on disk, and a clean reader detects
    // it: soft miss, corruption counted, no panic.
    let reader = Cache::new(&dir);
    assert!(reader.load_corpus(&cfg).is_none());
    let report = reader.report();
    assert_eq!(report.corrupt, 1, "{report:?}");

    // Recomputing through the same path heals the entry.
    reader.store_corpus(&corpus);
    assert!(std::fs::read(&path).unwrap().len() > stored.len());
    assert!(Cache::new(&dir).load_corpus(&cfg).is_some());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mismatched_config_is_a_miss() {
    let dir = test_dir("config");
    let cache = Cache::new(&dir);
    let corpus = Corpus::build(small_cfg());
    cache.store_corpus(&corpus);

    // A different corpus config (different seed) must not resolve to the
    // stored artifact.
    let other = CorpusConfig::small(20, 8);
    assert!(cache.load_corpus(&other).is_none());
    assert_ne!(
        cache.corpus_path(&small_cfg()).unwrap(),
        cache.corpus_path(&other).unwrap(),
        "distinct configs must map to distinct cache files"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn no_cache_env_disables_the_layer() {
    // Env-var manipulation stays inside this one test; the test binary
    // runs tests in threads, but no other test in this file reads the
    // variable through `from_env`, and we restore it before returning.
    let dir = test_dir("envoff");

    std::env::set_var(NO_CACHE_ENV, "1");
    let cache = Cache::from_env(&dir);
    std::env::remove_var(NO_CACHE_ENV);
    assert!(!cache.enabled());
    assert!(cache.dir().is_none());
    assert!(cache.corpus_path(&small_cfg()).is_none());

    // Stores are no-ops: nothing appears on disk, loads return None, and
    // the counters stay untouched (a disabled layer records no misses).
    let corpus = Corpus::build(small_cfg());
    cache.store_corpus(&corpus);
    assert!(!dir.exists(), "disabled cache must not create {dir:?}");
    assert!(cache.load_corpus(&small_cfg()).is_none());
    let report = cache.report();
    assert!(!report.enabled);
    assert_eq!((report.hits, report.misses, report.stores), (0, 0, 0));

    // "0" and unset mean enabled.
    std::env::set_var(NO_CACHE_ENV, "0");
    let on = Cache::from_env(&dir);
    std::env::remove_var(NO_CACHE_ENV);
    assert!(on.enabled());
    assert!(Cache::from_env(&dir).enabled());

    let _ = std::fs::remove_dir_all(&dir);
}
