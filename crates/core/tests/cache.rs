//! Sharded-cache behavior: warm reads reproduce computed artifacts
//! bit-for-bit, overlapping corpus sizes share records instead of
//! regenerating them, damage is repaired at shard granularity, fault
//! injection bypasses the benchmark cache in both directions, and GC
//! never strands a benchmark shard whose records are gone.
//!
//! Each test writes into its own directory under `target/` so runs never
//! interfere with each other or with the real `results/cache/`.

use spsel_core::cache::{Cache, GcConfig, GrownRecord, NO_CACHE_ENV};
use spsel_core::corpus::{Corpus, CorpusConfig};
use spsel_core::experiments::ExperimentContext;
use spsel_core::telemetry::RunReport;
use spsel_gpusim::{FaultConfig, Gpu, TrialPolicy};
use std::path::PathBuf;
use std::time::{Duration, SystemTime};

fn test_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/cache-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn set_age(path: &std::path::Path, age: Duration) {
    let f = std::fs::File::options().append(true).open(path).unwrap();
    f.set_modified(SystemTime::now() - age).unwrap();
}

#[test]
fn overlapping_corpus_sizes_share_every_record() {
    let dir = test_dir("overlap");
    let big = CorpusConfig::small(60, 7);
    let mut small = big.clone();
    small.n_base = 40;

    // Cold run at the larger size: generates and benchmarks whole shards.
    let cold = Cache::new(&dir);
    let (corpus_big, plan_big) = Corpus::build_cached(big.clone(), &cold);
    let bench_big = corpus_big.benchmark_cached(&plan_big, Gpu::Turing, &cold);
    // The cached path is bit-identical to the direct path.
    assert_eq!(bench_big, corpus_big.benchmark(Gpu::Turing));
    let cold_report = cold.report();
    assert!(cold_report.record_misses > 0);
    assert_eq!(cold_report.record_hits, 0);

    // Warm run at the smaller size: every record and every benchmark
    // cell is shared — nothing is regenerated or re-benchmarked.
    let warm = Cache::new(&dir);
    let (corpus_small, plan_small) = Corpus::build_cached(small.clone(), &warm);
    let bench_small = corpus_small.benchmark_cached(&plan_small, Gpu::Turing, &warm);
    let warm_report = warm.report();
    assert_eq!(warm_report.record_misses, 0, "{warm_report:?}");
    assert_eq!(warm_report.misses, 0, "{warm_report:?}");
    assert!(warm_report.record_hits > 0, "{warm_report:?}");

    // And the shared-cache build is bit-identical to a cache-free one.
    let reference = Corpus::build(small);
    assert_eq!(corpus_small.records, reference.records);
    assert_eq!(bench_small, reference.benchmark(Gpu::Turing));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn experiment_context_is_bit_identical_warm_and_across_base_overlap() {
    let dir = test_dir("ctx-overlap");
    let big = CorpusConfig::small(30, 3);
    let mut small = big.clone();
    small.n_base = 20;

    let cold = Cache::new(&dir);
    let ctx_big = ExperimentContext::build(big.clone(), &cold, &mut RunReport::new("cold"));

    // Fully warm rerun at the same size: all hits, identical context.
    let warm = Cache::new(&dir);
    let ctx_warm = ExperimentContext::build(big, &warm, &mut RunReport::new("warm"));
    assert_eq!(ctx_warm.corpus.records, ctx_big.corpus.records);
    assert_eq!(ctx_warm.benches, ctx_big.benches);
    assert_eq!(ctx_warm.digest(), ctx_big.digest());
    let r = warm.report();
    assert_eq!((r.misses, r.record_misses), (0, 0), "{r:?}");

    // Warm overlapping smaller base: still all record-level hits, and
    // bit-identical to building that size without any cache.
    let overlap = Cache::new(&dir);
    let ctx_small = ExperimentContext::build(small.clone(), &overlap, &mut RunReport::new("sm"));
    let r = overlap.report();
    assert_eq!((r.misses, r.record_misses), (0, 0), "{r:?}");
    assert!(r.record_hits > 0, "{r:?}");
    let reference = ExperimentContext::new(small);
    assert_eq!(ctx_small.corpus.records, reference.corpus.records);
    assert_eq!(ctx_small.benches, reference.benches);
    assert_eq!(ctx_small.digest(), reference.digest());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn partial_damage_regenerates_only_the_affected_shard() {
    let dir = test_dir("partial");
    // 70 base matrices always span two 64-candidate shards.
    let cfg = CorpusConfig::small(70, 11);

    let cold = Cache::new(&dir);
    let (corpus, plan) = Corpus::build_cached(cfg.clone(), &cold);
    let bench = corpus.benchmark_cached(&plan, Gpu::Pascal, &cold);
    assert!(plan.shards.len() >= 2, "n_base 70 must span 2+ shards");
    let shard_records: Vec<usize> = plan.shards.iter().map(|s| s.ids.len()).collect();

    // Damage the second record shard and the first benchmark shard.
    let rpath = cold.record_shard_path(&cfg, 1).unwrap();
    let bpath = cold.bench_shard_path(&cfg, 0, Gpu::Pascal).unwrap();
    let rbytes = std::fs::read(&rpath).unwrap();
    std::fs::write(&rpath, &rbytes[..rbytes.len() / 2]).unwrap();
    std::fs::write(&bpath, b"{not json\xff\xfe").unwrap();

    // The rebuild repairs exactly the damaged shards: shard 0's records
    // and shard 1's benchmark cells are served from cache, the rest is
    // recomputed — and the outputs are bit-identical to the cold run.
    let repair = Cache::new(&dir);
    let (corpus2, plan2) = Corpus::build_cached(cfg.clone(), &repair);
    let bench2 = corpus2.benchmark_cached(&plan2, Gpu::Pascal, &repair);
    assert_eq!(corpus2.records, corpus.records);
    assert_eq!(bench2, bench);
    let r = repair.report();
    assert_eq!(r.corrupt, 2, "{r:?}");
    // Hits: record shard 0 + bench shard 1; misses: record shard 1 +
    // bench shard 0 (each counted per contained record).
    assert_eq!(r.record_hits as usize, shard_records[0] + shard_records[1]);
    assert_eq!(
        r.record_misses as usize,
        shard_records[1] + shard_records[0]
    );
    assert_eq!(r.stores, 2, "only the damaged shards are rewritten");

    // After the repair, a fully warm run hits everything.
    let warm = Cache::new(&dir);
    let (corpus3, plan3) = Corpus::build_cached(cfg, &warm);
    assert_eq!(corpus3.benchmark_cached(&plan3, Gpu::Pascal, &warm), bench);
    let r = warm.report();
    assert_eq!((r.misses, r.record_misses), (0, 0), "{r:?}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_runs_bypass_the_benchmark_cache_both_ways() {
    let dir = test_dir("faults");
    let cfg = CorpusConfig::small(20, 5);

    // Clean cold run populates the shards.
    let cold = Cache::new(&dir);
    let ctx_clean = ExperimentContext::build(cfg.clone(), &cold, &mut RunReport::new("clean"));
    let bpath = cold.bench_shard_path(&cfg, 0, Gpu::Pascal).unwrap();
    let clean_bytes = std::fs::read(&bpath).unwrap();

    // A fault-injected run must not serve clean cells from the cache
    // (its results are fault-shaped) and must not write its degraded
    // cells back.
    let faults = FaultConfig::uniform(0.2, 17);
    let policy = TrialPolicy::default();
    let faulty_cache = Cache::new(&dir);
    let ctx_faulty = ExperimentContext::build_with_faults(
        cfg.clone(),
        &faulty_cache,
        &mut RunReport::new("faulty"),
        &faults,
        &policy,
    );
    assert!(ctx_faulty.degradation.injected.any());
    assert_ne!(
        ctx_faulty.benches, ctx_clean.benches,
        "fault-shaped results must not equal clean cached cells"
    );
    assert_eq!(
        std::fs::read(&bpath).unwrap(),
        clean_bytes,
        "a fault run must never overwrite clean benchmark shards"
    );

    // A clean warm run after the fault run still reproduces the clean
    // context bit-for-bit: the degraded results never reached the cache.
    let warm = Cache::new(&dir);
    let ctx_warm = ExperimentContext::build(cfg, &warm, &mut RunReport::new("warm"));
    assert_eq!(ctx_warm.benches, ctx_clean.benches);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gc_never_strands_a_shard_family_member() {
    let dir = test_dir("gc-family");
    let cfg = CorpusConfig::small(20, 9);
    let cache = Cache::new(&dir);
    let (corpus, plan) = Corpus::build_cached(cfg.clone(), &cache);
    corpus.benchmark_cached(&plan, Gpu::Pascal, &cache);

    let rpath = cache.record_shard_path(&cfg, 0).unwrap();
    let bpath = cache.bench_shard_path(&cfg, 0, Gpu::Pascal).unwrap();

    // The record shard is ancient but its benchmark shard is fresh: the
    // unit's age is its youngest member's, so both survive an age GC —
    // a live benchmark shard can never lose the records it references.
    set_age(&rpath, Duration::from_secs(30 * 86_400));
    let gc = cache.gc(&GcConfig {
        max_bytes: u64::MAX,
        max_age: Duration::from_secs(7 * 86_400),
    });
    assert_eq!(gc.evicted, 0, "{gc:?}");
    assert!(rpath.exists() && bpath.exists());

    // Once every member is stale the whole unit goes at once: no
    // orphaned benchmark cells, no stranded records.
    set_age(&rpath, Duration::from_secs(30 * 86_400));
    set_age(&bpath, Duration::from_secs(30 * 86_400));
    let gc = cache.gc(&GcConfig {
        max_bytes: u64::MAX,
        max_age: Duration::from_secs(7 * 86_400),
    });
    assert_eq!(gc.evicted, 2, "{gc:?}");
    assert!(!rpath.exists() && !bpath.exists());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gc_evicts_units_oldest_first_under_size_pressure() {
    let dir = test_dir("gc-size");
    let cache = Cache::new(&dir);

    // Four shard units from four distinct families, with distinct ages.
    let mut units = Vec::new();
    for (i, days) in [40u64, 30, 20, 10].iter().enumerate() {
        let cfg = CorpusConfig::small(6, 100 + i as u64);
        let (_, _) = Corpus::build_cached(cfg.clone(), &cache);
        let path = cache.record_shard_path(&cfg, 0).unwrap();
        set_age(&path, Duration::from_secs(days * 86_400));
        units.push(path);
    }
    let sizes: Vec<u64> = units
        .iter()
        .map(|p| std::fs::metadata(p).unwrap().len())
        .collect();

    // Budget fits only the two newest units: the two oldest go, in mtime
    // order, and the survivors stay readable.
    let gc = cache.gc(&GcConfig {
        max_bytes: sizes[2] + sizes[3],
        max_age: Duration::from_secs(365 * 86_400),
    });
    assert_eq!((gc.scanned, gc.evicted, gc.kept), (4, 2, 2), "{gc:?}");
    assert_eq!(gc.bytes_evicted, sizes[0] + sizes[1], "{gc:?}");
    assert!(!units[0].exists(), "oldest unit must be evicted first");
    assert!(!units[1].exists());
    assert!(units[2].exists() && units[3].exists());
    assert!(
        Cache::new(&dir)
            .load_record_shard(&CorpusConfig::small(6, 103), 0, 0)
            .is_some(),
        "survivor stays readable"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gc_evicts_legacy_monolithic_artifacts_unconditionally() {
    let dir = test_dir("gc-legacy");
    let cache = Cache::new(&dir);
    let cfg = CorpusConfig::small(10, 2);
    let (_, _) = Corpus::build_cached(cfg.clone(), &cache);
    let shard = cache.record_shard_path(&cfg, 0).unwrap();

    // Pre-v2 monolithic entries: never converted, never kept.
    let legacy_corpus = dir.join("corpus-0123456789abcdef.json");
    let legacy_bench = dir.join("bench-fedcba9876543210.json");
    std::fs::write(&legacy_corpus, "{}").unwrap();
    std::fs::write(&legacy_bench, "{}").unwrap();

    let gc = cache.gc(&GcConfig::default());
    assert!(!legacy_corpus.exists(), "legacy corpus entry must go");
    assert!(!legacy_bench.exists(), "legacy bench entry must go");
    assert!(shard.exists(), "current shards survive: {gc:?}");
    assert_eq!(gc.evicted, 2, "{gc:?}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_corruption_is_counted_and_recomputed() {
    let dir = test_dir("inject");
    let cfg = CorpusConfig::small(10, 7);

    // A corrupt-rate-1.0 cache truncates every artifact it stores.
    let faulty = Cache::new(&dir).with_faults(FaultConfig::uniform(1.0, 3));
    let (corpus, plan) = Corpus::build_cached(cfg.clone(), &faulty);
    assert!(faulty.corruption_injected() >= 1);
    let path = faulty.record_shard_path(&cfg, 0).unwrap();
    let stored = std::fs::read(&path).unwrap();

    // The artifact really is damaged on disk, and a clean reader detects
    // it: soft miss, corruption counted, no panic — then the rebuild
    // heals the entry and reproduces the same records.
    let reader = Cache::new(&dir);
    assert!(reader.load_record_shard(&cfg, 0, 0).is_none());
    assert_eq!(reader.report().corrupt, 1);
    let (corpus2, _) = Corpus::build_cached(cfg.clone(), &reader);
    assert_eq!(corpus2.records, corpus.records);
    assert!(std::fs::read(&path).unwrap().len() > stored.len());
    assert!(Cache::new(&dir).load_record_shard(&cfg, 0, 0).is_some());
    let _ = plan;

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn growth_appends_dedup_and_extend_the_context() {
    let dir = test_dir("growth");
    let cfg = CorpusConfig::small(15, 4);
    let cache = Cache::new(&dir);
    let mut ctx = ExperimentContext::build(cfg.clone(), &cache, &mut RunReport::new("seed"));
    let digest_before = ctx.digest();
    let len_before = ctx.corpus.len();

    // Grown records: reuse two real records' stats/features under fresh
    // ids, with benchmark cells for all GPUs.
    let make = |i: usize, id: u64| GrownRecord {
        source_seq: i as u64 + 1,
        record: {
            let mut r = ctx.corpus.records[i].clone();
            r.id = id;
            r
        },
        benches: Gpu::ALL.iter().map(|&g| ctx.bench(g)[i]).collect(),
    };
    let batch = vec![
        make(0, 0xDEAD_0001),
        make(1, 0xDEAD_0002),
        make(1, 0xDEAD_0002),
    ];
    assert_eq!(cache.append_growth(&cfg, &batch), 2, "in-batch dup drops");
    assert_eq!(cache.append_growth(&cfg, &batch), 0, "re-append is a no-op");
    assert_eq!(cache.report().records_ingested, 2);

    // Growth shards are append-only: a second distinct batch lands in a
    // new shard file without touching the first.
    let first_shard = cache.growth_shard_path(&cfg, 0).unwrap();
    let first_bytes = std::fs::read(&first_shard).unwrap();
    assert_eq!(cache.append_growth(&cfg, &[make(2, 0xDEAD_0003)]), 1);
    assert_eq!(std::fs::read(&first_shard).unwrap(), first_bytes);

    // The context extends with exactly the distinct grown records, and
    // the digest moves so experiment/model caches can't serve stale
    // results for the grown corpus.
    let added = ctx.extend_with_growth(&cache);
    assert_eq!(added, 3);
    assert_eq!(ctx.corpus.len(), len_before + 3);
    for per_gpu in &ctx.benches {
        assert_eq!(per_gpu.len(), len_before + 3);
    }
    assert_ne!(ctx.digest(), digest_before);
    // Extending again is a no-op: everything is already present.
    assert_eq!(ctx.extend_with_growth(&cache), 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn no_cache_env_disables_the_layer() {
    // Env-var manipulation stays inside this one test; the test binary
    // runs tests in threads, but no other test in this file reads the
    // variable through `from_env`, and we restore it before returning.
    let dir = test_dir("envoff");
    let cfg = CorpusConfig::small(10, 1);

    std::env::set_var(NO_CACHE_ENV, "1");
    let cache = Cache::from_env(&dir);
    std::env::remove_var(NO_CACHE_ENV);
    assert!(!cache.enabled());
    assert!(cache.dir().is_none());
    assert!(cache.record_shard_path(&cfg, 0).is_none());

    // Stores are no-ops: nothing appears on disk, loads return None, and
    // the counters stay untouched (a disabled layer records no misses).
    let (corpus, plan) = Corpus::build_cached(cfg.clone(), &cache);
    corpus.benchmark_cached(&plan, Gpu::Volta, &cache);
    assert!(!dir.exists(), "disabled cache must not create {dir:?}");
    assert!(cache.load_record_shard(&cfg, 0, 0).is_none());
    let report = cache.report();
    assert!(!report.enabled);
    assert_eq!((report.hits, report.misses, report.stores), (0, 0, 0));
    assert_eq!((report.record_hits, report.record_misses), (0, 0));

    // "0" and unset mean enabled.
    std::env::set_var(NO_CACHE_ENV, "0");
    let on = Cache::from_env(&dir);
    std::env::remove_var(NO_CACHE_ENV);
    assert!(on.enabled());
    assert!(Cache::from_env(&dir).enabled());

    let _ = std::fs::remove_dir_all(&dir);
}
