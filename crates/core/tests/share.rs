//! Cross-cell fit sharing is *provably free*: every pooled protocol in
//! `spsel_core::transfer` must produce results bit-identical to its
//! unpooled reference implementation, while actually sharing fits (the
//! pool reports hits). These tests are the equivalence proof the table
//! runners rely on.

use spsel_core::corpus::CorpusConfig;
use spsel_core::experiments::ExperimentContext;
use spsel_core::semi::{ClusterMethod, Labeler, SemiConfig, SemiSupervisedSelector};
use spsel_core::share::FitPool;
use spsel_core::speedup::SelectionQuality;
use spsel_core::supervised::{SupervisedConfig, SupervisedModel};
use spsel_core::transfer::{
    local_semi, local_semi_pooled, local_supervised, local_supervised_pooled, transfer_supervised,
    transfer_supervised_budgets, RetrainBudget, TransferInput,
};
use spsel_gpusim::Gpu;

/// Bitwise equality: shared fits must not move a result by even one ulp.
fn assert_bit_identical(a: &SelectionQuality, b: &SelectionQuality, what: &str) {
    assert_eq!(a.acc.to_bits(), b.acc.to_bits(), "{what}: acc");
    assert_eq!(a.f1.to_bits(), b.f1.to_bits(), "{what}: f1");
    assert_eq!(a.mcc.to_bits(), b.mcc.to_bits(), "{what}: mcc");
    assert_eq!(a.gt.to_bits(), b.gt.to_bits(), "{what}: gt");
    assert_eq!(a.csr.to_bits(), b.csr.to_bits(), "{what}: csr");
    assert_eq!((a.threshold, a.n), (b.threshold, b.n), "{what}: counts");
}

fn context() -> ExperimentContext {
    ExperimentContext::new(CorpusConfig::small(30, 2))
}

#[test]
fn pooled_local_semi_is_bit_identical_and_actually_shares() {
    let ctx = context();
    let gpu = Gpu::Turing;
    let indices = ctx.dataset(gpu);
    let features = ctx.features(&indices);
    let results = ctx.results(gpu, &indices).unwrap();

    let pool = FitPool::new();
    for method in [
        ClusterMethod::KMeans { nc: 6 },
        ClusterMethod::MeanShift,
        ClusterMethod::Birch { nc: 6 },
    ] {
        for labeler in [
            Labeler::Vote,
            Labeler::LogisticRegression,
            Labeler::RandomForest,
        ] {
            let cfg = SemiConfig::new(method, labeler, 1);
            let unpooled = local_semi(&features, &results, cfg, 3, 1);
            let pooled = local_semi_pooled(&features, &results, cfg, 3, 1, &pool);
            assert_bit_identical(
                &pooled,
                &unpooled,
                &format!("{}-{}", method.name(), labeler.name()),
            );
        }
    }
    // Three labelers per method cluster identical folds: two thirds of
    // all clustering fits must come from the pool.
    assert!(
        pool.hits() >= 2 * pool.misses(),
        "{:?}",
        (pool.hits(), pool.misses())
    );
}

#[test]
fn fit_decomposes_into_fit_clustering_then_from_clustering() {
    let ctx = context();
    let indices = ctx.dataset(Gpu::Pascal);
    let features = ctx.features(&indices);
    let results = ctx.results(Gpu::Pascal, &indices).unwrap();
    let labels: Vec<_> = results.iter().map(|r| r.best).collect();

    let cfg = SemiConfig::new(ClusterMethod::KMeans { nc: 5 }, Labeler::Vote, 9);
    let direct = SemiSupervisedSelector::fit(&features, &labels, cfg);
    let fc = SemiSupervisedSelector::fit_clustering(&features, cfg.method, cfg.seed, cfg.pca_dim);
    let staged = SemiSupervisedSelector::from_clustering(&fc, &labels, cfg);
    assert!(fc.n_clusters() > 0);
    assert_eq!(
        direct.predict_batch(&features),
        staged.predict_batch(&features),
        "the two-stage fit must predict identically to the one-shot fit"
    );
}

#[test]
fn pooled_local_supervised_is_bit_identical() {
    let ctx = context();
    let gpu = Gpu::Volta;
    let indices = ctx.dataset(gpu);
    let features = ctx.features(&indices);
    let results = ctx.results(gpu, &indices).unwrap();

    let pool = FitPool::new();
    for model in [SupervisedModel::Dt, SupervisedModel::Knn] {
        let cfg = SupervisedConfig::quick(model, 3);
        let unpooled = local_supervised(&features, None, &results, cfg, 3, 3).unwrap();
        let pooled = local_supervised_pooled(&features, None, &results, cfg, 3, 3, &pool).unwrap();
        assert_bit_identical(&pooled, &unpooled, &format!("{model:?}"));
    }
    let misses_after_first = pool.misses();
    // Re-running an identical cell is served entirely from the pool.
    let cfg = SupervisedConfig::quick(SupervisedModel::Dt, 3);
    local_supervised_pooled(&features, None, &results, cfg, 3, 3, &pool).unwrap();
    assert_eq!(
        pool.misses(),
        misses_after_first,
        "no refit on identical cell"
    );
    assert!(pool.hits() >= 3, "per-fold fits served from the pool");
}

#[test]
fn budgets_protocol_matches_per_budget_protocol() {
    let ctx = context();
    let common = ctx.common_subset();
    let features = ctx.features(&common);
    let source = ctx.results(Gpu::Pascal, &common).unwrap();
    let target = ctx.results(Gpu::Turing, &common).unwrap();
    let input = || TransferInput {
        features: &features,
        images: None,
        source: &source,
        target: &target,
    };

    let cfg = SupervisedConfig::quick(SupervisedModel::Dt, 5);
    let pool = FitPool::new();
    let all = transfer_supervised_budgets(input(), cfg, 3, 5, &pool).unwrap();
    for (i, budget) in RetrainBudget::ALL.into_iter().enumerate() {
        let single = transfer_supervised(input(), cfg, budget, 3, 5).unwrap();
        assert_bit_identical(&all[i], &single, &format!("{budget:?}"));
    }
}
