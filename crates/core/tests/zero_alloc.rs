//! Proof that the steady-state decision hot path is allocation-free.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! pass (which may size thread-local scratch), a flood of `learn: false`
//! decisions and single-pass feature extractions must perform exactly
//! zero heap allocations. Everything lives in one `#[test]` because the
//! counter is process-global: concurrent test threads would pollute it.

use spsel_core::semi::{ClusterMethod, Labeler, SemiConfig};
use spsel_core::{SemiSupervisedSelector, ShardedOnlineSelector};
use spsel_features::{FeatureExtractor, FeatureVector};
use spsel_matrix::{gen, CsrMatrix, Format};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_decision_path_does_not_allocate() {
    // Fit a small batch selector and warm-start the sharded online
    // selector — the setup allocates freely, only the flood below is
    // under measurement.
    let mut features = Vec::new();
    let mut labels = Vec::new();
    for s in 0..12u64 {
        features.push(FeatureVector::from_csr(&CsrMatrix::from(&gen::stencil2d(
            10 + s as usize % 5,
            s,
        ))));
        labels.push(Format::Ell);
        features.push(FeatureVector::from_csr(&CsrMatrix::from(&gen::power_law(
            250, 250, 2, 2.4, 100, s,
        ))));
        labels.push(Format::Csr);
    }
    let batch = SemiSupervisedSelector::fit(
        &features,
        &labels,
        SemiConfig::new(ClusterMethod::KMeans { nc: 5 }, Labeler::Vote, 3),
    );
    let online = ShardedOnlineSelector::from_batch(&batch, 0.5, 64, 4);

    let matrices: Vec<CsrMatrix> = (0..4u64)
        .map(|s| CsrMatrix::from(&gen::banded(120 + s as usize * 17, 4, 0.8, s)))
        .collect();
    let mut extractor = FeatureExtractor::new();

    // Warm-up: the first extraction sizes the extractor's scratch and the
    // first decision on this thread sizes the embedding buffers.
    let mut warm = Vec::new();
    for csr in &matrices {
        let fv = FeatureVector::from_stats(&extractor.stats(csr));
        online.decide(&fv, false);
        warm.push(fv);
    }

    // Measured flood: extraction + embed + nearest-centroid + label
    // lookup, round-robin over the warm matrices. Zero allocations.
    let before = allocations();
    let mut checksum = 0usize;
    for round in 0..50 {
        let csr = &matrices[round % matrices.len()];
        let fv = FeatureVector::from_stats(&extractor.stats(csr));
        let view = online.decide(&fv, false);
        checksum += view.decision.cluster;
    }
    let during = allocations() - before;
    assert_eq!(
        during, 0,
        "steady-state learn:false decisions must not allocate (saw {during})"
    );

    // The flood produced real decisions (keeps the loop from being
    // optimized away and sanity-checks the path actually ran).
    assert!(checksum < 50 * online.n_clusters().max(1));

    // Decisions agree with the allocating warm-up pass.
    for (csr, fv) in matrices.iter().zip(&warm) {
        let again = FeatureVector::from_stats(&extractor.stats(csr));
        let bits_a: Vec<u64> = again.as_slice().iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u64> = fv.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_a, bits_b);
    }
}
