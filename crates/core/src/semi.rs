//! The semi-supervised format selector (the paper's contribution).
//!
//! Training has two decoupled stages, which is exactly what makes the
//! method portable and explainable:
//!
//! 1. **Clustering** (unsupervised, architecture-independent): embed the
//!    Table 1 features through the transform → scale → PCA pipeline and
//!    cluster with K-Means, Mean-Shift, or Birch.
//! 2. **Cluster labeling** (cheap, per-architecture): decide each
//!    cluster's *single* format label from benchmark labels of (a fraction
//!    of) its members — by Majority Vote, or by fitting a small Logistic
//!    Regression / Random Forest on the benchmarked members and taking its
//!    prediction at the cluster centroid. Either way a cluster carries one
//!    format, which is what makes the classification explainable.
//!
//! Prediction assigns a new matrix to the nearest cluster centroid and
//! applies that cluster's labeling rule. Porting to a new architecture
//! only repeats stage 2 ([`SemiSupervisedSelector::relabel`]).

use serde::{Deserialize, Serialize};
use spsel_features::{FeatureVector, Preprocessor};
use spsel_matrix::Format;
use spsel_ml::cluster::{birch::Birch, kmeans::KMeans, meanshift::MeanShift};
use spsel_ml::forest::{RandomForest, RandomForestParams};
use spsel_ml::logreg::LogisticRegression;
use spsel_ml::{Classifier, ClusterAlgorithm, Clustering, Dataset};

/// Clustering algorithm choice (the rows of the paper's Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ClusterMethod {
    /// K-Means with `nc` clusters.
    KMeans { nc: usize },
    /// Mean-Shift (determines its own cluster count).
    MeanShift,
    /// Birch with `nc` final clusters.
    Birch { nc: usize },
}

impl ClusterMethod {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ClusterMethod::KMeans { .. } => "K-Means",
            ClusterMethod::MeanShift => "Mean-Shift",
            ClusterMethod::Birch { .. } => "Birch",
        }
    }
}

/// Cluster-labeling strategy (the columns of the paper's Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Labeler {
    /// Majority vote over benchmarked members.
    Vote,
    /// Per-cluster logistic regression on the embedded features.
    LogisticRegression,
    /// Per-cluster random forest on the embedded features.
    RandomForest,
}

impl Labeler {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Labeler::Vote => "VOTE",
            Labeler::LogisticRegression => "LR",
            Labeler::RandomForest => "RF",
        }
    }
}

/// Configuration of the semi-supervised selector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SemiConfig {
    /// Clustering algorithm.
    pub method: ClusterMethod,
    /// Cluster-labeling strategy.
    pub labeler: Labeler,
    /// Seed for clustering and per-cluster models.
    pub seed: u64,
    /// PCA dimensionality of the embedding (the paper uses 8).
    pub pca_dim: usize,
}

impl SemiConfig {
    /// Paper-default configuration: K-Means + majority vote.
    pub fn new(method: ClusterMethod, labeler: Labeler, seed: u64) -> Self {
        SemiConfig {
            method,
            labeler,
            seed,
            pca_dim: spsel_features::pipeline::DEFAULT_PCA_DIM,
        }
    }
}

/// The labeler-independent half of a fitted selector: the embedding
/// pipeline, the clustering, and the embedded training points. Produced
/// by [`SemiSupervisedSelector::fit_clustering`]; turned into a full
/// selector — for any labeler — by
/// [`SemiSupervisedSelector::from_clustering`].
#[derive(Debug, Clone)]
pub struct FittedClustering {
    preprocessor: Preprocessor,
    clustering: Clustering,
    embedded: Vec<Vec<f64>>,
}

impl FittedClustering {
    /// Number of clusters the fit produced (Mean-Shift decides its own).
    pub fn n_clusters(&self) -> usize {
        self.clustering.n_clusters()
    }
}

/// A fitted semi-supervised selector.
///
/// Serializes in full (pipeline, clustering, per-member label state) so a
/// trained selector can be shipped as a model artifact and reloaded with
/// bit-identical predictions — see the `spsel-serve` crate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SemiSupervisedSelector {
    config: SemiConfig,
    preprocessor: Preprocessor,
    clustering: Clustering,
    /// Embedded training points (kept for relabeling).
    embedded: Vec<Vec<f64>>,
    /// Current per-member labels: target-architecture measurements where a
    /// member has been benchmarked, the labels seen at fit time otherwise
    /// (kept so relabeling can vote over *all* members, not just the
    /// benchmarked subset).
    member_labels: Vec<Format>,
    /// Whether each member's label is a measurement on the *current*
    /// architecture (fresh) or carried over from fit time (stale).
    member_fresh: Vec<bool>,
    /// One format label per cluster.
    labels: Vec<Format>,
}

/// Tie-break preference across the whole format universe: the paper's
/// CSR-first convention for the CUSP four, extended formats last.
const TIE_ORDER: [Format; Format::UNIVERSE_COUNT] = [
    Format::Csr,
    Format::Ell,
    Format::Hyb,
    Format::Coo,
    Format::Bsr,
    Format::Sell,
    Format::Dia,
];

/// Majority format among `labels`, ties broken toward the globally more
/// common format (lower Format index order as final tie-break).
fn majority(labels: &[Format], fallback: Format) -> Format {
    if labels.is_empty() {
        return fallback;
    }
    let mut counts = [0usize; Format::UNIVERSE_COUNT];
    for l in labels {
        counts[l.index()] += 1;
    }
    // CSR-first order mirrors the "default to CSR" convention on ties
    // (strict comparison keeps the earliest maximum). Extended-registry
    // formats vote after the CUSP four, so any label set confined to the
    // default registry behaves exactly as before.
    let order = TIE_ORDER;
    let mut best = order[0];
    for f in order {
        if counts[f.index()] > counts[best.index()] {
            best = f;
        }
    }
    best
}

/// Public majority vote over a label set: the format most of `labels`
/// name, ties broken CSR-first ([`majority`]'s rule), `fallback` when the
/// set is empty. Used by artifact training to label clusters under
/// alternative workloads with the same rule the fit-time labeler uses.
pub fn majority_label(labels: &[Format], fallback: Format) -> Format {
    majority(labels, fallback)
}

/// Weighted majority: each `(label, weight)` pair contributes its weight to
/// the label's count. Exact ties prefer `prior` when given (evidence that
/// merely ties must not overturn the label a cluster already carries),
/// otherwise fall back to CSR-first order as in [`majority`].
fn weighted_majority(votes: &[(Format, f64)], fallback: Format, prior: Option<Format>) -> Format {
    let mut counts = [0.0f64; Format::UNIVERSE_COUNT];
    let mut total = 0.0;
    for &(l, w) in votes {
        counts[l.index()] += w;
        total += w;
    }
    if total == 0.0 {
        return fallback;
    }
    let order = TIE_ORDER;
    let mut best = order[0];
    for f in order {
        if counts[f.index()] > counts[best.index()] {
            best = f;
        }
    }
    if let Some(p) = prior {
        if counts[p.index()] == counts[best.index()] {
            return p;
        }
    }
    best
}

impl SemiSupervisedSelector {
    /// Fit clustering on all features, then label clusters using the given
    /// per-matrix benchmark labels (the *local* protocol: every training
    /// matrix is benchmarked).
    ///
    /// ```
    /// use spsel_core::semi::{ClusterMethod, Labeler, SemiConfig, SemiSupervisedSelector};
    /// use spsel_features::FeatureVector;
    /// use spsel_matrix::{gen, CsrMatrix, Format};
    ///
    /// let features: Vec<FeatureVector> = (0..8)
    ///     .map(|s| FeatureVector::from_csr(&CsrMatrix::from(&gen::stencil2d(10 + s, s as u64))))
    ///     .collect();
    /// let labels = vec![Format::Ell; 8];
    /// let cfg = SemiConfig::new(ClusterMethod::KMeans { nc: 2 }, Labeler::Vote, 1);
    /// let sel = SemiSupervisedSelector::fit(&features, &labels, cfg);
    /// assert_eq!(sel.predict(&features[0]), Format::Ell);
    /// ```
    pub fn fit(features: &[FeatureVector], labels: &[Format], config: SemiConfig) -> Self {
        let fc = Self::fit_clustering(features, config.method, config.seed, config.pca_dim);
        Self::from_clustering(&fc, labels, config)
    }

    /// Stage 1 alone: embed and cluster `features`. The result depends
    /// only on `(features, method, seed, pca_dim)` — not on the labeler
    /// or on any benchmark label — so table cells that train different
    /// labelers on the same fold of the same GPU can share one fitted
    /// clustering (see `spsel_core::share::FitPool`).
    pub fn fit_clustering(
        features: &[FeatureVector],
        method: ClusterMethod,
        seed: u64,
        pca_dim: usize,
    ) -> FittedClustering {
        assert!(!features.is_empty(), "cannot fit on an empty corpus");
        let rows: Vec<Vec<f64>> = features.iter().map(|f| f.as_slice().to_vec()).collect();
        let preprocessor = Preprocessor::fit_rows(&rows, Some(pca_dim));
        let embedded: Vec<Vec<f64>> = rows.iter().map(|r| preprocessor.embed_row(r)).collect();

        let clustering = match method {
            ClusterMethod::KMeans { nc } => KMeans::new(nc, seed).fit(&embedded),
            ClusterMethod::MeanShift => MeanShift::default().fit(&embedded),
            ClusterMethod::Birch { nc } => Birch::new(nc, seed).fit(&embedded),
        };
        FittedClustering {
            preprocessor,
            clustering,
            embedded,
        }
    }

    /// Stage 2 alone: label the clusters of a pre-fitted embedding.
    /// `fit(features, labels, config)` is definitionally
    /// `from_clustering(&fit_clustering(features, ...), labels, config)`,
    /// so a selector built from a shared clustering is bit-identical to
    /// one fitted from scratch. `config` must be the configuration the
    /// clustering was fitted under (method, seed, pca_dim).
    pub fn from_clustering(fc: &FittedClustering, labels: &[Format], config: SemiConfig) -> Self {
        assert_eq!(fc.embedded.len(), labels.len(), "one label per matrix");
        let mut selector = SemiSupervisedSelector {
            config,
            preprocessor: fc.preprocessor.clone(),
            clustering: fc.clustering.clone(),
            embedded: fc.embedded.clone(),
            member_labels: labels.to_vec(),
            member_fresh: vec![true; labels.len()],
            labels: Vec::new(),
        };
        selector.label_clusters(None, 1.0);
        selector
    }

    /// (Re-)label every cluster after benchmarking a subset of training
    /// matrices on a new architecture: `benchmarked[i]` is an index into
    /// the training set and `labels[i]` its measured best format on the
    /// target architecture.
    ///
    /// Benchmarked members take their fresh target labels. Every other
    /// member keeps the (now stale) label it carried before, with its vote
    /// discounted by the observed source/target agreement: if the fresh
    /// measurements agree with the labels they replace at rate `r`, a stale
    /// vote counts `max(0, 2r - 1)` of a fresh one (its excess reliability
    /// over chance). Discarding the unbenchmarked members entirely would
    /// let one or two noisy target samples overturn a label backed by the
    /// whole cluster; counting them at full weight would stop a 50% budget
    /// from ever flipping a cluster whose optimal format really changed.
    ///
    /// This is the porting step: on a new architecture only the benchmarked
    /// subset costs machine time; the clustering is reused unchanged.
    pub fn relabel(&mut self, benchmarked: &[usize], labels: &[Format]) {
        assert_eq!(benchmarked.len(), labels.len());
        // Agreement between fresh measurements and the labels they replace
        // estimates how trustworthy the remaining stale labels are.
        let agree = benchmarked
            .iter()
            .zip(labels)
            .filter(|&(&i, l)| self.member_labels[i] == *l)
            .count();
        let stale_weight = if benchmarked.is_empty() {
            1.0
        } else {
            (2.0 * agree as f64 / benchmarked.len() as f64 - 1.0).max(0.0)
        };
        self.member_fresh = vec![false; self.member_labels.len()];
        for (pos, &i) in benchmarked.iter().enumerate() {
            self.member_labels[i] = labels[pos];
            self.member_fresh[i] = true;
        }
        let old = std::mem::take(&mut self.labels);
        self.label_clusters(Some(old), stale_weight);
    }

    fn label_clusters(&mut self, previous: Option<Vec<Format>>, stale_weight: f64) {
        let nc = self.clustering.n_clusters();
        // Group every training member by its cluster.
        let mut by_cluster: Vec<Vec<(usize, Format, bool)>> = vec![Vec::new(); nc];
        for (i, &label) in self.member_labels.iter().enumerate() {
            let c = self.clustering.assignments[i];
            by_cluster[c].push((i, label, self.member_fresh[i]));
        }
        // Global majority as the fallback for clusters with no members.
        let global = majority(&self.member_labels, Format::Csr);

        self.labels = (0..nc)
            .map(|c| {
                let members = &by_cluster[c];
                let fresh: Vec<(usize, Format)> = members
                    .iter()
                    .filter(|&&(_, _, f)| f)
                    .map(|&(i, l, _)| (i, l))
                    .collect();
                // A cluster without any fresh measurement keeps its
                // previous label: there is no new evidence to act on.
                if fresh.is_empty() {
                    if let Some(old) = &previous {
                        return old[c];
                    }
                    if members.is_empty() {
                        return global;
                    }
                }
                let votes: Vec<(Format, f64)> = members
                    .iter()
                    .map(|&(_, l, f)| (l, if f { 1.0 } else { stale_weight }))
                    .collect();
                let prior = previous.as_ref().map(|old| old[c]);
                let maj = weighted_majority(&votes, global, prior);
                // The per-cluster model trains on the members whose labels
                // are trusted for the current architecture: all members at
                // fit time, the benchmarked subset after a relabel.
                let trusted = if previous.is_none() {
                    members.iter().map(|&(i, l, _)| (i, l)).collect()
                } else {
                    fresh
                };
                let distinct = trusted
                    .iter()
                    .map(|&(_, l)| l)
                    .collect::<std::collections::HashSet<_>>()
                    .len();
                // Pure or tiny clusters need no model; this is also what
                // keeps LR/RF labeling cheap (paper Table 9).
                if distinct <= 1 || trusted.len() < 4 {
                    return maj;
                }
                let x: Vec<Vec<f64>> = trusted
                    .iter()
                    .map(|&(i, _)| self.embedded[i].clone())
                    .collect();
                let y: Vec<usize> = trusted.iter().map(|&(_, l)| l.index()).collect();
                // Class count is derived from the labels (not stored in
                // SemiConfig, which old artifacts serialize): all-CUSP
                // label sets keep the historical 4-class space.
                let nc = crate::label_class_count(trusted.iter().map(|&(_, l)| l));
                let data = Dataset::new(x, y, nc);
                let centroid = &self.clustering.centroids[c];
                match self.config.labeler {
                    Labeler::Vote => maj,
                    Labeler::LogisticRegression => {
                        let mut lr = LogisticRegression::with_defaults();
                        lr.fit(&data);
                        Format::from_index(lr.predict_one(centroid))
                    }
                    Labeler::RandomForest => {
                        let mut rf = RandomForest::new(RandomForestParams {
                            n_estimators: 25,
                            seed: self.config.seed ^ c as u64,
                            ..Default::default()
                        });
                        rf.fit(&data);
                        Format::from_index(rf.predict_one(centroid))
                    }
                }
            })
            .collect();
    }

    /// Number of clusters (the paper's NC column).
    pub fn n_clusters(&self) -> usize {
        self.clustering.n_clusters()
    }

    /// The configuration the selector was fitted with.
    pub fn config(&self) -> &SemiConfig {
        &self.config
    }

    /// The fitted clustering.
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// The fitted preprocessing pipeline.
    pub fn preprocessor(&self) -> &Preprocessor {
        &self.preprocessor
    }

    /// Predict the format for a matrix's feature vector: the label of the
    /// nearest cluster.
    pub fn predict(&self, features: &FeatureVector) -> Format {
        let z = self.preprocessor.embed(features);
        self.labels[self.clustering.assign(&z)]
    }

    /// The cluster a feature vector lands in (without consulting the
    /// label table) — the hook per-workload label tables index with.
    pub fn predict_cluster(&self, features: &FeatureVector) -> usize {
        self.clustering.assign(&self.preprocessor.embed(features))
    }

    /// The per-cluster format labels.
    pub fn cluster_labels(&self) -> &[Format] {
        &self.labels
    }

    /// Predict a batch of feature vectors.
    pub fn predict_batch(&self, features: &[FeatureVector]) -> Vec<Format> {
        features.iter().map(|f| self.predict(f)).collect()
    }

    /// Explain a prediction: the cluster id, its centroid distance, the
    /// cluster's size in the training set, and the decision rule used.
    /// This is the "explainability" the paper contrasts with black-box
    /// supervised models.
    pub fn explain(&self, features: &FeatureVector) -> Explanation {
        let z = self.preprocessor.embed(features);
        let c = self.clustering.assign(&z);
        let members = self
            .clustering
            .assignments
            .iter()
            .filter(|&&a| a == c)
            .count();
        let dist = spsel_ml::dist(&z, &self.clustering.centroids[c]);
        let rule = match self.config.labeler {
            Labeler::Vote => "majority vote over benchmarked members",
            Labeler::LogisticRegression => "logistic regression at the cluster centroid",
            Labeler::RandomForest => "random forest at the cluster centroid",
        };
        Explanation {
            cluster: c,
            centroid_distance: dist,
            cluster_size: members,
            rule,
            format: self.labels[c],
        }
    }
}

/// A human-readable account of one prediction.
///
/// Serialize-only: the `&'static str` rule text points at compiled-in
/// decision-rule descriptions, so explanations are emitted but never parsed
/// back.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Explanation {
    /// Cluster the matrix was assigned to.
    pub cluster: usize,
    /// Euclidean distance to that cluster's centroid in the embedding.
    pub centroid_distance: f64,
    /// Number of training matrices in the cluster.
    pub cluster_size: usize,
    /// Decision rule applied inside the cluster.
    pub rule: &'static str,
    /// The predicted format.
    pub format: Format,
}

#[cfg(test)]
mod tests {
    use super::*;
    use spsel_matrix::{gen, CsrMatrix};

    /// Features from two structurally distinct populations, labeled by
    /// population (a clean clustering problem).
    fn two_population_problem() -> (Vec<FeatureVector>, Vec<Format>) {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for s in 0..20u64 {
            // Uniform stencils -> "ELL".
            let csr = CsrMatrix::from(&gen::stencil2d(12 + s as usize % 8, s));
            features.push(FeatureVector::from_csr(&csr));
            labels.push(Format::Ell);
            // Power-law graphs -> "CSR".
            let csr = CsrMatrix::from(&gen::power_law(400, 400, 2, 2.2, 150, s));
            features.push(FeatureVector::from_csr(&csr));
            labels.push(Format::Csr);
        }
        (features, labels)
    }

    fn kmeans_cfg(labeler: Labeler) -> SemiConfig {
        SemiConfig::new(ClusterMethod::KMeans { nc: 8 }, labeler, 42)
    }

    #[test]
    fn separable_problem_is_learned_by_vote() {
        let (features, labels) = two_population_problem();
        let sel = SemiSupervisedSelector::fit(&features, &labels, kmeans_cfg(Labeler::Vote));
        let preds = sel.predict_batch(&features);
        let correct = preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
        assert!(
            correct as f64 / labels.len() as f64 > 0.9,
            "train accuracy {correct}/{}",
            labels.len()
        );
    }

    #[test]
    fn all_labelers_work() {
        let (features, labels) = two_population_problem();
        for labeler in [
            Labeler::Vote,
            Labeler::LogisticRegression,
            Labeler::RandomForest,
        ] {
            let sel = SemiSupervisedSelector::fit(&features, &labels, kmeans_cfg(labeler));
            let preds = sel.predict_batch(&features);
            let acc = preds.iter().zip(&labels).filter(|(p, l)| p == l).count() as f64
                / labels.len() as f64;
            assert!(acc > 0.8, "{}: accuracy {acc}", labeler.name());
        }
    }

    #[test]
    fn all_cluster_methods_work() {
        let (features, labels) = two_population_problem();
        for method in [
            ClusterMethod::KMeans { nc: 6 },
            ClusterMethod::MeanShift,
            ClusterMethod::Birch { nc: 6 },
        ] {
            let sel = SemiSupervisedSelector::fit(
                &features,
                &labels,
                SemiConfig::new(method, Labeler::Vote, 1),
            );
            assert!(sel.n_clusters() >= 1, "{}", method.name());
            let preds = sel.predict_batch(&features);
            let acc = preds.iter().zip(&labels).filter(|(p, l)| p == l).count() as f64
                / labels.len() as f64;
            assert!(acc > 0.6, "{}: accuracy {acc}", method.name());
        }
    }

    #[test]
    fn relabel_flips_cluster_labels() {
        let (features, labels) = two_population_problem();
        let mut sel = SemiSupervisedSelector::fit(&features, &labels, kmeans_cfg(Labeler::Vote));
        // Target architecture inverts the labels; relabel with everything.
        let flipped: Vec<Format> = labels
            .iter()
            .map(|l| {
                if *l == Format::Ell {
                    Format::Csr
                } else {
                    Format::Ell
                }
            })
            .collect();
        let all: Vec<usize> = (0..labels.len()).collect();
        sel.relabel(&all, &flipped);
        let preds = sel.predict_batch(&features);
        let acc =
            preds.iter().zip(&flipped).filter(|(p, l)| p == l).count() as f64 / labels.len() as f64;
        assert!(acc > 0.9, "accuracy after relabel {acc}");
    }

    #[test]
    fn relabel_with_partial_data_keeps_old_labels_elsewhere() {
        let (features, labels) = two_population_problem();
        let mut sel = SemiSupervisedSelector::fit(&features, &labels, kmeans_cfg(Labeler::Vote));
        let before = sel.predict_batch(&features);
        // Relabel with an empty benchmark set: nothing must change.
        sel.relabel(&[], &[]);
        assert_eq!(sel.predict_batch(&features), before);
    }

    #[test]
    fn explanation_is_consistent_with_prediction() {
        let (features, labels) = two_population_problem();
        let sel = SemiSupervisedSelector::fit(&features, &labels, kmeans_cfg(Labeler::Vote));
        for f in features.iter().take(5) {
            let e = sel.explain(f);
            assert_eq!(e.format, sel.predict(f));
            assert!(e.cluster < sel.n_clusters());
            assert!(e.cluster_size >= 1);
            assert!(e.centroid_distance.is_finite());
        }
    }

    #[test]
    fn majority_prefers_csr_on_tie() {
        assert_eq!(
            majority(&[Format::Coo, Format::Csr], Format::Hyb),
            Format::Csr
        );
        assert_eq!(majority(&[], Format::Hyb), Format::Hyb);
        assert_eq!(
            majority(&[Format::Coo, Format::Coo, Format::Csr], Format::Hyb),
            Format::Coo
        );
    }
}
