//! The six supervised baselines behind one interface.
//!
//! Each model consumes the input representation the corresponding prior
//! work used: the tree models (DT, RF, XGBoost) take the raw Table 1
//! features, the distance-based models (SVM, KNN) take the transformed /
//! scaled / PCA-projected embedding (the paper notes KNN should use the
//! same preprocessing as the clustering algorithms), and the CNN takes the
//! density image.

use crate::error::{CoreError, CoreResult};
use serde::{Deserialize, Serialize};
use spsel_features::{DensityImage, FeatureVector, Preprocessor};
use spsel_matrix::Format;
use spsel_ml::cnn::{CnnClassifier, CnnParams};
use spsel_ml::forest::{RandomForest, RandomForestParams};
use spsel_ml::gboost::{GradientBoosting, GradientBoostingParams};
use spsel_ml::knn::KnnClassifier;
use spsel_ml::svm::LinearSvm;
use spsel_ml::tree::{DecisionTree, DecisionTreeParams};
use spsel_ml::{Classifier, Dataset};

/// The supervised model families of the paper's Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SupervisedModel {
    /// Decision tree.
    Dt,
    /// Random forest (100 estimators, depth 6).
    Rf,
    /// Linear multiclass SVM.
    Svm,
    /// K-nearest neighbors on the embedded features.
    Knn,
    /// XGBoost-style gradient boosting (lr 0.1, 100 rounds).
    Xgb,
    /// Convolutional network on density images.
    Cnn,
}

impl SupervisedModel {
    /// The five tabular models plus the CNN, in the paper's row order.
    pub const ALL: [SupervisedModel; 6] = [
        SupervisedModel::Dt,
        SupervisedModel::Rf,
        SupervisedModel::Svm,
        SupervisedModel::Knn,
        SupervisedModel::Xgb,
        SupervisedModel::Cnn,
    ];

    /// The models used in the transfer experiments (Table 7 omits the CNN
    /// because of its training cost).
    pub const TABULAR: [SupervisedModel; 5] = [
        SupervisedModel::Dt,
        SupervisedModel::Rf,
        SupervisedModel::Svm,
        SupervisedModel::Knn,
        SupervisedModel::Xgb,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            SupervisedModel::Dt => "DT",
            SupervisedModel::Rf => "RF",
            SupervisedModel::Svm => "SVM",
            SupervisedModel::Knn => "KNN",
            SupervisedModel::Xgb => "XGBoost",
            SupervisedModel::Cnn => "CNN",
        }
    }

    /// Whether the model consumes density images instead of features.
    pub fn needs_images(self) -> bool {
        matches!(self, SupervisedModel::Cnn)
    }
}

impl std::fmt::Display for SupervisedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of a supervised selector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SupervisedConfig {
    /// Model family.
    pub model: SupervisedModel,
    /// Seed for stochastic trainers.
    pub seed: u64,
    /// Scale down ensemble sizes / epochs for quick runs and tests.
    pub quick: bool,
}

impl SupervisedConfig {
    /// Full-strength configuration (the paper's hyper-parameters).
    pub fn new(model: SupervisedModel, seed: u64) -> Self {
        SupervisedConfig {
            model,
            seed,
            quick: false,
        }
    }

    /// Reduced configuration for tests.
    pub fn quick(model: SupervisedModel, seed: u64) -> Self {
        SupervisedConfig {
            model,
            seed,
            quick: true,
        }
    }
}

#[derive(Debug, Clone)]
enum ModelImpl {
    Dt(DecisionTree),
    Rf(RandomForest),
    Svm(LinearSvm),
    Knn(KnnClassifier),
    Xgb(GradientBoosting),
    Cnn(Box<CnnClassifier>),
}

/// A fitted supervised format selector.
#[derive(Debug, Clone)]
pub struct SupervisedSelector {
    config: SupervisedConfig,
    model: ModelImpl,
    /// Embedding pipeline for the distance-based models.
    pre: Option<Preprocessor>,
}

impl SupervisedSelector {
    /// Fit a selector. Errors with [`CoreError::MissingImages`] when
    /// `config.model.needs_images()` and `images` is absent or incomplete,
    /// and with [`CoreError::EmptyDataset`] on an empty training set —
    /// both are routine under degraded (fault-injected) runs.
    pub fn fit(
        features: &[FeatureVector],
        images: Option<&[Option<DensityImage>]>,
        labels: &[Format],
        config: SupervisedConfig,
    ) -> CoreResult<Self> {
        assert_eq!(features.len(), labels.len(), "one label per matrix");
        if features.is_empty() {
            return Err(CoreError::EmptyDataset {
                gpu: "training set".into(),
            });
        }
        let y: Vec<usize> = labels.iter().map(|l| l.index()).collect();
        // Registry-aware class space, derived from the labels themselves
        // (all-CUSP label sets keep the historical 4-class models).
        let nc = crate::label_class_count(labels.iter().copied());

        let (model, pre) = match config.model {
            SupervisedModel::Dt => {
                let x: Vec<Vec<f64>> = features.iter().map(|f| f.as_slice().to_vec()).collect();
                let mut m = DecisionTree::new(DecisionTreeParams {
                    max_depth: Some(if config.quick { 6 } else { 20 }),
                    seed: config.seed,
                    ..Default::default()
                });
                m.fit(&Dataset::new(x, y, nc));
                (ModelImpl::Dt(m), None)
            }
            SupervisedModel::Rf => {
                let x: Vec<Vec<f64>> = features.iter().map(|f| f.as_slice().to_vec()).collect();
                let mut m = RandomForest::new(RandomForestParams {
                    n_estimators: if config.quick { 20 } else { 100 },
                    max_depth: Some(6),
                    seed: config.seed,
                    ..Default::default()
                });
                m.fit(&Dataset::new(x, y, nc));
                (ModelImpl::Rf(m), None)
            }
            SupervisedModel::Xgb => {
                let x: Vec<Vec<f64>> = features.iter().map(|f| f.as_slice().to_vec()).collect();
                let mut m = GradientBoosting::new(GradientBoostingParams {
                    n_rounds: if config.quick { 15 } else { 100 },
                    learning_rate: 0.1,
                    ..Default::default()
                });
                m.fit(&Dataset::new(x, y, nc));
                (ModelImpl::Xgb(m), None)
            }
            SupervisedModel::Svm | SupervisedModel::Knn => {
                let rows: Vec<Vec<f64>> = features.iter().map(|f| f.as_slice().to_vec()).collect();
                let pre =
                    Preprocessor::fit_rows(&rows, Some(spsel_features::pipeline::DEFAULT_PCA_DIM));
                let x: Vec<Vec<f64>> = rows.iter().map(|r| pre.embed_row(r)).collect();
                let data = Dataset::new(x, y, nc);
                let m = match config.model {
                    SupervisedModel::Svm => {
                        let mut m = LinearSvm::with_defaults();
                        m.fit(&data);
                        ModelImpl::Svm(m)
                    }
                    _ => {
                        let mut m = KnnClassifier::new(5);
                        m.fit(&data);
                        ModelImpl::Knn(m)
                    }
                };
                (m, Some(pre))
            }
            SupervisedModel::Cnn => {
                let Some(images) = images else {
                    return Err(CoreError::MissingImages {
                        model: config.model.name().to_string(),
                    });
                };
                assert_eq!(images.len(), features.len());
                let mut x: Vec<Vec<f64>> = Vec::with_capacity(images.len());
                for img in images {
                    let Some(img) = img.as_ref() else {
                        return Err(CoreError::MissingImages {
                            model: config.model.name().to_string(),
                        });
                    };
                    x.push(img.pixels().iter().map(|&p| p as f64).collect());
                }
                let mut m = CnnClassifier::new(CnnParams {
                    epochs: if config.quick { 3 } else { 12 },
                    seed: config.seed,
                    ..Default::default()
                });
                m.fit(&Dataset::new(x, y, nc));
                (ModelImpl::Cnn(Box::new(m)), None)
            }
        };
        Ok(SupervisedSelector { config, model, pre })
    }

    /// The configuration this selector was fitted with.
    pub fn config(&self) -> &SupervisedConfig {
        &self.config
    }

    fn input_row(&self, features: &FeatureVector, image: Option<&DensityImage>) -> Vec<f64> {
        match (&self.model, &self.pre) {
            (ModelImpl::Cnn(_), _) => image
                .expect("CNN prediction needs an image")
                .pixels()
                .iter()
                .map(|&p| p as f64)
                .collect(),
            (_, Some(pre)) => pre.embed(features),
            (_, None) => features.as_slice().to_vec(),
        }
    }

    /// Predict the format for one matrix.
    pub fn predict(&self, features: &FeatureVector, image: Option<&DensityImage>) -> Format {
        let row = self.input_row(features, image);
        let idx = match &self.model {
            ModelImpl::Dt(m) => m.predict_one(&row),
            ModelImpl::Rf(m) => m.predict_one(&row),
            ModelImpl::Svm(m) => m.predict_one(&row),
            ModelImpl::Knn(m) => m.predict_one(&row),
            ModelImpl::Xgb(m) => m.predict_one(&row),
            ModelImpl::Cnn(m) => m.predict_one(&row),
        };
        Format::from_index(idx)
    }

    /// Predict a batch; `images[i]` may be `None` for non-CNN models.
    pub fn predict_batch(
        &self,
        features: &[FeatureVector],
        images: Option<&[Option<DensityImage>]>,
    ) -> Vec<Format> {
        (0..features.len())
            .map(|i| {
                let img = images.and_then(|imgs| imgs[i].as_ref());
                self.predict(&features[i], img)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spsel_matrix::{gen, CsrMatrix};

    fn problem() -> (Vec<FeatureVector>, Vec<Format>) {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for s in 0..15u64 {
            features.push(FeatureVector::from_csr(&CsrMatrix::from(&gen::stencil2d(
                10 + s as usize % 6,
                s,
            ))));
            labels.push(Format::Ell);
            features.push(FeatureVector::from_csr(&CsrMatrix::from(&gen::power_law(
                300, 300, 2, 2.3, 120, s,
            ))));
            labels.push(Format::Csr);
        }
        (features, labels)
    }

    #[test]
    fn tabular_models_learn_separable_problem() {
        let (features, labels) = problem();
        for model in SupervisedModel::TABULAR {
            let sel = SupervisedSelector::fit(
                &features,
                None,
                &labels,
                SupervisedConfig::quick(model, 3),
            )
            .unwrap();
            let preds = sel.predict_batch(&features, None);
            let acc = preds.iter().zip(&labels).filter(|(p, l)| p == l).count() as f64
                / labels.len() as f64;
            assert!(acc > 0.9, "{model}: accuracy {acc}");
        }
    }

    #[test]
    fn cnn_learns_from_images() {
        let mut features = Vec::new();
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for s in 0..12u64 {
            let m = CsrMatrix::from(&gen::banded(200, 2, 1.0, s));
            features.push(FeatureVector::from_csr(&m));
            images.push(Some(DensityImage::from_csr(&m, 16)));
            labels.push(Format::Ell);
            let m = CsrMatrix::from(&gen::random_uniform(200, 200, 12, s));
            features.push(FeatureVector::from_csr(&m));
            images.push(Some(DensityImage::from_csr(&m, 16)));
            labels.push(Format::Csr);
        }
        let sel = SupervisedSelector::fit(
            &features,
            Some(&images),
            &labels,
            SupervisedConfig {
                model: SupervisedModel::Cnn,
                seed: 1,
                quick: false,
            },
        )
        .unwrap();
        let preds = sel.predict_batch(&features, Some(&images));
        let acc =
            preds.iter().zip(&labels).filter(|(p, l)| p == l).count() as f64 / labels.len() as f64;
        assert!(acc > 0.8, "CNN train accuracy {acc}");
    }

    #[test]
    fn cnn_without_images_errors_instead_of_panicking() {
        let (features, labels) = problem();
        let err = SupervisedSelector::fit(
            &features,
            None,
            &labels,
            SupervisedConfig::quick(SupervisedModel::Cnn, 0),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::MissingImages { .. }), "{err}");
    }

    #[test]
    fn empty_training_set_errors() {
        let err = SupervisedSelector::fit(
            &[],
            None,
            &[],
            SupervisedConfig::quick(SupervisedModel::Dt, 0),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::EmptyDataset { .. }), "{err}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (features, labels) = problem();
        let a = SupervisedSelector::fit(
            &features,
            None,
            &labels,
            SupervisedConfig::quick(SupervisedModel::Rf, 9),
        )
        .unwrap();
        let b = SupervisedSelector::fit(
            &features,
            None,
            &labels,
            SupervisedConfig::quick(SupervisedModel::Rf, 9),
        )
        .unwrap();
        assert_eq!(
            a.predict_batch(&features, None),
            b.predict_batch(&features, None)
        );
    }
}
