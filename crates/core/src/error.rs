//! Typed errors for the benchmark/label path.
//!
//! The pipeline used to `expect` its way through infeasible records and
//! missing side data; under fault injection those conditions are routine,
//! so they are now values an experiment can skip, report, or degrade on
//! instead of panics that take down the whole run.

use std::fmt;

/// Why a dataset, label set, or model fit could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A record index was requested from a GPU on which it has no usable
    /// benchmark result (infeasible or quarantined).
    InfeasibleRecord {
        /// GPU name.
        gpu: String,
        /// Record index within the corpus.
        index: usize,
    },
    /// A model that needs density images was fit on a corpus built
    /// without them.
    MissingImages {
        /// The model that needed them (e.g. `cnn`).
        model: String,
    },
    /// A GPU contributed no usable records at all (total outage or every
    /// record quarantined/infeasible).
    EmptyDataset {
        /// GPU name.
        gpu: String,
    },
    /// A malformed command-line argument or request parameter (bad flag,
    /// unparsable number, unknown GPU/format name, ...).
    InvalidArgument {
        /// What was wrong, phrased for the user.
        message: String,
    },
    /// An I/O failure on a user-supplied path (matrix file, model
    /// artifact, output location).
    Io {
        /// The path involved.
        path: String,
        /// The underlying error text.
        message: String,
    },
}

impl CoreError {
    /// Invalid-argument constructor (saves `.into()` noise at call sites).
    pub fn invalid_argument(message: impl Into<String>) -> Self {
        CoreError::InvalidArgument {
            message: message.into(),
        }
    }

    /// I/O-error constructor.
    pub fn io(path: impl Into<String>, message: impl Into<String>) -> Self {
        CoreError::Io {
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InfeasibleRecord { gpu, index } => {
                write!(f, "record {index} has no usable benchmark on {gpu}")
            }
            CoreError::MissingImages { model } => {
                write!(f, "{model} needs density images but the corpus has none")
            }
            CoreError::EmptyDataset { gpu } => {
                write!(f, "{gpu} contributed no usable records")
            }
            CoreError::InvalidArgument { message } => {
                write!(f, "invalid argument: {message}")
            }
            CoreError::Io { path, message } => {
                write!(f, "{path}: {message}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Result alias for the benchmark/label path.
pub type CoreResult<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_describe_themselves() {
        let e = CoreError::InfeasibleRecord {
            gpu: "Volta".into(),
            index: 7,
        };
        assert!(e.to_string().contains("record 7"));
        assert!(e.to_string().contains("Volta"));
        let e = CoreError::MissingImages {
            model: "cnn".into(),
        };
        assert!(e.to_string().contains("cnn"));
        let e = CoreError::EmptyDataset {
            gpu: "Pascal".into(),
        };
        assert!(e.to_string().contains("Pascal"));
        let e = CoreError::invalid_argument("--iterations takes a number");
        assert!(e.to_string().contains("--iterations"));
        let e = CoreError::io("model.spsel", "No such file or directory");
        assert!(e.to_string().contains("model.spsel"));
    }
}
