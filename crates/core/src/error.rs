//! Typed errors for the benchmark/label path.
//!
//! The pipeline used to `expect` its way through infeasible records and
//! missing side data; under fault injection those conditions are routine,
//! so they are now values an experiment can skip, report, or degrade on
//! instead of panics that take down the whole run.

use std::fmt;

/// Why a dataset, label set, or model fit could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A record index was requested from a GPU on which it has no usable
    /// benchmark result (infeasible or quarantined).
    InfeasibleRecord {
        /// GPU name.
        gpu: String,
        /// Record index within the corpus.
        index: usize,
    },
    /// A model that needs density images was fit on a corpus built
    /// without them.
    MissingImages {
        /// The model that needed them (e.g. `cnn`).
        model: String,
    },
    /// A GPU contributed no usable records at all (total outage or every
    /// record quarantined/infeasible).
    EmptyDataset {
        /// GPU name.
        gpu: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InfeasibleRecord { gpu, index } => {
                write!(f, "record {index} has no usable benchmark on {gpu}")
            }
            CoreError::MissingImages { model } => {
                write!(f, "{model} needs density images but the corpus has none")
            }
            CoreError::EmptyDataset { gpu } => {
                write!(f, "{gpu} contributed no usable records")
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Result alias for the benchmark/label path.
pub type CoreResult<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_describe_themselves() {
        let e = CoreError::InfeasibleRecord {
            gpu: "Volta".into(),
            index: 7,
        };
        assert!(e.to_string().contains("record 7"));
        assert!(e.to_string().contains("Volta"));
        let e = CoreError::MissingImages {
            model: "cnn".into(),
        };
        assert!(e.to_string().contains("cnn"));
        let e = CoreError::EmptyDataset {
            gpu: "Pascal".into(),
        };
        assert!(e.to_string().contains("Pascal"));
    }
}
