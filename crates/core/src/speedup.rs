//! The paper's selection-quality metrics: ACC / F1 / MCC plus the
//! performance-oriented GT, CSR, and Threshold columns of Table 6.

use serde::{Deserialize, Serialize};
use spsel_gpusim::BenchResult;
use spsel_matrix::Format;
use spsel_ml::ConfusionMatrix;

/// Slowdown factor over the CSR baseline that counts as a "significant"
/// misprediction in the paper's Threshold column.
pub const SLOWDOWN_THRESHOLD: f64 = 1.5;

/// Classification and performance quality of a set of format predictions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectionQuality {
    /// Classification accuracy.
    pub acc: f64,
    /// Support-weighted F1.
    pub f1: f64,
    /// Multiclass Matthews correlation coefficient.
    pub mcc: f64,
    /// Geometric-mean speedup relative to the oracle (always <= 1).
    pub gt: f64,
    /// Geometric-mean speedup relative to always-CSR.
    pub csr: f64,
    /// Matrices suffering a >= 1.5x slowdown over CSR from mispredictions.
    pub threshold: usize,
    /// Number of evaluated matrices.
    pub n: usize,
}

/// Evaluate predictions against benchmark ground truth.
///
/// `results[i]` must be the benchmark outcome of the matrix whose
/// prediction is `predictions[i]`.
pub fn selection_quality(predictions: &[Format], results: &[BenchResult]) -> SelectionQuality {
    assert_eq!(
        predictions.len(),
        results.len(),
        "one result per prediction"
    );
    let n = predictions.len();
    let y_true: Vec<usize> = results.iter().map(|r| r.best.index()).collect();
    let y_pred: Vec<usize> = predictions.iter().map(|p| p.index()).collect();
    let cm = ConfusionMatrix::from_labels(&y_true, &y_pred, Format::COUNT);

    let mut log_gt = 0.0;
    let mut log_csr = 0.0;
    let mut threshold = 0usize;
    for (p, r) in predictions.iter().zip(results) {
        let t_pred = r.times.get(*p);
        let t_best = r.times.get(r.best);
        let t_csr = r.times.get(Format::Csr);
        // A predicted format that does not fit in memory is an infinite
        // slowdown; clamp its contribution but count the threshold hit.
        if !t_pred.is_finite() {
            log_gt += (1.0f64 / 1e3).ln();
            log_csr += (1.0f64 / 1e3).ln();
            threshold += 1;
            continue;
        }
        log_gt += (t_best / t_pred).ln();
        log_csr += (t_csr / t_pred).ln();
        if t_pred / t_csr >= SLOWDOWN_THRESHOLD {
            threshold += 1;
        }
    }
    let denom = n.max(1) as f64;
    SelectionQuality {
        acc: cm.accuracy(),
        f1: cm.weighted_f1(),
        mcc: cm.mcc(),
        gt: (log_gt / denom).exp(),
        csr: (log_csr / denom).exp(),
        threshold,
        n,
    }
}

impl SelectionQuality {
    /// Merge fold-level qualities into their average (the paper reports
    /// means over 5-fold cross-validation).
    pub fn average(folds: &[SelectionQuality]) -> SelectionQuality {
        assert!(!folds.is_empty());
        let k = folds.len() as f64;
        SelectionQuality {
            acc: folds.iter().map(|q| q.acc).sum::<f64>() / k,
            f1: folds.iter().map(|q| q.f1).sum::<f64>() / k,
            mcc: folds.iter().map(|q| q.mcc).sum::<f64>() / k,
            gt: folds.iter().map(|q| q.gt).sum::<f64>() / k,
            csr: folds.iter().map(|q| q.csr).sum::<f64>() / k,
            threshold: (folds.iter().map(|q| q.threshold).sum::<usize>() as f64 / k).round()
                as usize,
            n: folds.iter().map(|q| q.n).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spsel_gpusim::SpmvTimes;

    fn result(us: [f64; 4]) -> BenchResult {
        let times = SpmvTimes { us };
        BenchResult {
            times,
            best: times.best().unwrap(),
        }
    }

    #[test]
    fn oracle_prediction_is_perfect() {
        let results = vec![
            result([10.0, 5.0, 7.0, 20.0]), // best CSR
            result([10.0, 9.0, 4.0, 20.0]), // best ELL
        ];
        let preds: Vec<Format> = results.iter().map(|r| r.best).collect();
        let q = selection_quality(&preds, &results);
        assert_eq!(q.acc, 1.0);
        assert!((q.gt - 1.0).abs() < 1e-12);
        assert!(q.csr >= 1.0);
        assert_eq!(q.threshold, 0);
    }

    #[test]
    fn always_csr_has_unit_csr_speedup() {
        let results = vec![
            result([10.0, 5.0, 7.0, 20.0]),
            result([10.0, 9.0, 4.0, 20.0]),
        ];
        let preds = vec![Format::Csr, Format::Csr];
        let q = selection_quality(&preds, &results);
        assert!((q.csr - 1.0).abs() < 1e-12);
        // GT speedup: sqrt(1 * 4/9).
        assert!((q.gt - (4.0f64 / 9.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn threshold_counts_bad_mispredictions() {
        let results = vec![
            result([30.0, 10.0, 11.0, 40.0]), // CSR best
        ];
        // Predicting COO: 30/10 = 3x slowdown over CSR.
        let q = selection_quality(&[Format::Coo], &results);
        assert_eq!(q.threshold, 1);
        assert!(q.csr < 1.0);
        // Predicting ELL: 11/10 = 1.1x, below the 1.5 threshold.
        let q = selection_quality(&[Format::Ell], &results);
        assert_eq!(q.threshold, 0);
    }

    #[test]
    fn infeasible_prediction_counts_as_threshold_hit() {
        let results = vec![result([10.0, 5.0, f64::INFINITY, 20.0])];
        let q = selection_quality(&[Format::Ell], &results);
        assert_eq!(q.threshold, 1);
        assert!(q.gt < 0.01);
    }

    #[test]
    fn average_is_elementwise_mean() {
        let a = SelectionQuality {
            acc: 0.8,
            f1: 0.8,
            mcc: 0.5,
            gt: 0.9,
            csr: 1.0,
            threshold: 4,
            n: 10,
        };
        let b = SelectionQuality {
            acc: 0.6,
            f1: 0.6,
            mcc: 0.3,
            gt: 0.7,
            csr: 1.2,
            threshold: 8,
            n: 10,
        };
        let m = SelectionQuality::average(&[a, b]);
        assert!((m.acc - 0.7).abs() < 1e-12);
        assert!((m.mcc - 0.4).abs() < 1e-12);
        assert_eq!(m.threshold, 6);
        assert_eq!(m.n, 20);
    }
}
