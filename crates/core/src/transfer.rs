//! Evaluation protocols: local 5-fold cross-validation and the
//! cross-architecture transfer experiment with 0 / 25 / 50 % retraining.
//!
//! Folds run through the parallel runtime's index-addressed drivers: every
//! fold derives from the same `(folds, seed)` split and writes only its own
//! output slot, so serial and parallel runs are bit-identical at any worker
//! count (`tests/thread_sweep.rs` proves it).

use crate::error::CoreResult;
use crate::semi::{SemiConfig, SemiSupervisedSelector};
use crate::share::FitPool;
use crate::speedup::{selection_quality, SelectionQuality};
use crate::supervised::{SupervisedConfig, SupervisedSelector};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use spsel_features::{DensityImage, FeatureVector};
use spsel_gpusim::BenchResult;
use spsel_matrix::Format;
use spsel_ml::cv::{stratified_kfold, stratified_subsample};

/// Fraction of target-architecture training data available for retraining.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetrainBudget {
    /// Direct transfer, no target benchmarks.
    Zero,
    /// 25 % of the training data benchmarked on the target.
    Quarter,
    /// 50 % of the training data benchmarked on the target.
    Half,
}

impl RetrainBudget {
    /// The paper's three budgets in column order.
    pub const ALL: [RetrainBudget; 3] = [
        RetrainBudget::Zero,
        RetrainBudget::Quarter,
        RetrainBudget::Half,
    ];

    /// The fraction of training data this budget benchmarks.
    pub fn fraction(self) -> f64 {
        match self {
            RetrainBudget::Zero => 0.0,
            RetrainBudget::Quarter => 0.25,
            RetrainBudget::Half => 0.5,
        }
    }

    /// Column header used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            RetrainBudget::Zero => "0%",
            RetrainBudget::Quarter => "25%",
            RetrainBudget::Half => "50%",
        }
    }
}

/// Everything a transfer experiment needs about the common-subset corpus.
#[derive(Debug, Clone, Copy)]
pub struct TransferInput<'a> {
    /// Features of the common-subset matrices.
    pub features: &'a [FeatureVector],
    /// Density images (only needed for CNN models).
    pub images: Option<&'a [Option<DensityImage>]>,
    /// Benchmark results on the *source* architecture.
    pub source: &'a [BenchResult],
    /// Benchmark results on the *target* architecture.
    pub target: &'a [BenchResult],
}

fn labels_of(results: &[BenchResult], indices: &[usize]) -> Vec<Format> {
    indices.iter().map(|&i| results[i].best).collect()
}

fn results_of(results: &[BenchResult], indices: &[usize]) -> Vec<BenchResult> {
    indices.iter().map(|&i| results[i]).collect()
}

fn features_of(features: &[FeatureVector], indices: &[usize]) -> Vec<FeatureVector> {
    indices.iter().map(|&i| features[i].clone()).collect()
}

fn images_of(
    images: Option<&[Option<DensityImage>]>,
    indices: &[usize],
) -> Option<Vec<Option<DensityImage>>> {
    images.map(|imgs| indices.iter().map(|&i| imgs[i].clone()).collect())
}

/// Local protocol (Tables 4 and 6): k-fold cross-validation with training
/// and evaluation on the same architecture.
pub fn local_semi(
    features: &[FeatureVector],
    results: &[BenchResult],
    cfg: SemiConfig,
    folds: usize,
    seed: u64,
) -> SelectionQuality {
    let y: Vec<usize> = results.iter().map(|r| r.best.index()).collect();
    let qualities: Vec<SelectionQuality> = stratified_kfold(&y, Format::COUNT, folds, seed)
        .into_par_iter()
        .map(|(train, test)| {
            let sel = SemiSupervisedSelector::fit(
                &features_of(features, &train),
                &labels_of(results, &train),
                cfg,
            );
            let preds = sel.predict_batch(&features_of(features, &test));
            selection_quality(&preds, &results_of(results, &test))
        })
        .collect();
    SelectionQuality::average(&qualities)
}

/// [`local_semi`] with the per-fold clustering drawn from a shared
/// [`FitPool`]: cells that train different labelers on the same
/// `(features, method, seed)` fold fit the clustering once.
/// `SemiSupervisedSelector::fit` is definitionally
/// `from_clustering(fit_clustering(..))`, so the cell output is
/// bit-identical to the unpooled protocol (proven in
/// `tests/share.rs`).
pub fn local_semi_pooled(
    features: &[FeatureVector],
    results: &[BenchResult],
    cfg: SemiConfig,
    folds: usize,
    seed: u64,
    pool: &FitPool,
) -> SelectionQuality {
    let y: Vec<usize> = results.iter().map(|r| r.best.index()).collect();
    let qualities: Vec<SelectionQuality> = stratified_kfold(&y, Format::COUNT, folds, seed)
        .into_par_iter()
        .map(|(train, test)| {
            let train_features = features_of(features, &train);
            let fc = pool.clustering(&train_features, cfg.method, cfg.seed, cfg.pca_dim);
            let sel =
                SemiSupervisedSelector::from_clustering(&fc, &labels_of(results, &train), cfg);
            let preds = sel.predict_batch(&features_of(features, &test));
            selection_quality(&preds, &results_of(results, &test))
        })
        .collect();
    SelectionQuality::average(&qualities)
}

/// Local protocol for a supervised model. Errors when the model cannot be
/// fit (e.g. CNN without images) instead of panicking.
pub fn local_supervised(
    features: &[FeatureVector],
    images: Option<&[Option<DensityImage>]>,
    results: &[BenchResult],
    cfg: SupervisedConfig,
    folds: usize,
    seed: u64,
) -> CoreResult<SelectionQuality> {
    let y: Vec<usize> = results.iter().map(|r| r.best.index()).collect();
    let qualities: Vec<SelectionQuality> = stratified_kfold(&y, Format::COUNT, folds, seed)
        .into_par_iter()
        .map(|(train, test)| -> CoreResult<SelectionQuality> {
            let train_imgs = images_of(images, &train);
            let sel = SupervisedSelector::fit(
                &features_of(features, &train),
                train_imgs.as_deref(),
                &labels_of(results, &train),
                cfg,
            )?;
            let test_imgs = images_of(images, &test);
            let preds = sel.predict_batch(&features_of(features, &test), test_imgs.as_deref());
            Ok(selection_quality(&preds, &results_of(results, &test)))
        })
        .collect::<Vec<_>>()
        .into_iter()
        .collect::<CoreResult<_>>()?;
    Ok(SelectionQuality::average(&qualities))
}

/// [`local_supervised`] with featural fits drawn from a shared
/// [`FitPool`]. CNN cells (images present) fit directly — an image
/// tensor is not part of the pool key — so only cells whose fit is fully
/// determined by `(features, labels, config)` ever share.
pub fn local_supervised_pooled(
    features: &[FeatureVector],
    images: Option<&[Option<DensityImage>]>,
    results: &[BenchResult],
    cfg: SupervisedConfig,
    folds: usize,
    seed: u64,
    pool: &FitPool,
) -> CoreResult<SelectionQuality> {
    if images.is_some() {
        return local_supervised(features, images, results, cfg, folds, seed);
    }
    let y: Vec<usize> = results.iter().map(|r| r.best.index()).collect();
    let qualities: Vec<SelectionQuality> = stratified_kfold(&y, Format::COUNT, folds, seed)
        .into_par_iter()
        .map(|(train, test)| -> CoreResult<SelectionQuality> {
            let sel = pool.supervised(
                &features_of(features, &train),
                &labels_of(results, &train),
                cfg,
            )?;
            let preds = sel.predict_batch(&features_of(features, &test), None);
            Ok(selection_quality(&preds, &results_of(results, &test)))
        })
        .collect::<Vec<_>>()
        .into_iter()
        .collect::<CoreResult<_>>()?;
    Ok(SelectionQuality::average(&qualities))
}

/// Transfer protocol for the semi-supervised selector (Table 5) at all
/// three retraining budgets: the clustering is fitted *once* per fold on
/// the training fold with *source* labels, then cloned and relabeled with
/// *target* benchmarks of a stratified subset for each nonzero budget.
/// Evaluation is against the target ground truth on the held-out fold.
pub fn transfer_semi_budgets(
    input: TransferInput<'_>,
    cfg: SemiConfig,
    folds: usize,
    seed: u64,
) -> [SelectionQuality; 3] {
    let y_target: Vec<usize> = input.target.iter().map(|r| r.best.index()).collect();
    let per_fold: Vec<[SelectionQuality; 3]> =
        stratified_kfold(&y_target, Format::COUNT, folds, seed)
            .into_par_iter()
            .map(|(train, test)| {
                let base = SemiSupervisedSelector::fit(
                    &features_of(input.features, &train),
                    &labels_of(input.source, &train),
                    cfg,
                );
                let test_features = features_of(input.features, &test);
                let test_results = results_of(input.target, &test);
                let train_y: Vec<usize> = train
                    .iter()
                    .map(|&i| input.target[i].best.index())
                    .collect();
                RetrainBudget::ALL.map(|budget| {
                    let preds = if budget.fraction() > 0.0 {
                        // Stratified subset of the training fold, benchmarked on
                        // the target architecture.
                        let sub =
                            stratified_subsample(&train_y, Format::COUNT, budget.fraction(), seed);
                        let sub_labels: Vec<Format> =
                            sub.iter().map(|&p| input.target[train[p]].best).collect();
                        let mut sel = base.clone();
                        sel.relabel(&sub, &sub_labels);
                        sel.predict_batch(&test_features)
                    } else {
                        base.predict_batch(&test_features)
                    };
                    selection_quality(&preds, &test_results)
                })
            })
            .collect();
    [0, 1, 2].map(|b| {
        let per_budget: Vec<SelectionQuality> = per_fold.iter().map(|f| f[b]).collect();
        SelectionQuality::average(&per_budget)
    })
}

/// Single-budget variant of [`transfer_semi_budgets`].
pub fn transfer_semi(
    input: TransferInput<'_>,
    cfg: SemiConfig,
    budget: RetrainBudget,
    folds: usize,
    seed: u64,
) -> SelectionQuality {
    let all = transfer_semi_budgets(input, cfg, folds, seed);
    all[RetrainBudget::ALL
        .iter()
        .position(|b| *b == budget)
        .expect("budget listed")]
}

/// Transfer protocol for a supervised model (Table 7): the model trains on
/// the training fold where the retraining-budget subset carries target
/// labels and the rest carries source labels; evaluation is against the
/// target ground truth on the held-out fold.
pub fn transfer_supervised(
    input: TransferInput<'_>,
    cfg: SupervisedConfig,
    budget: RetrainBudget,
    folds: usize,
    seed: u64,
) -> CoreResult<SelectionQuality> {
    let y_target: Vec<usize> = input.target.iter().map(|r| r.best.index()).collect();
    let qualities: Vec<SelectionQuality> = stratified_kfold(&y_target, Format::COUNT, folds, seed)
        .into_par_iter()
        .map(|(train, test)| -> CoreResult<SelectionQuality> {
            let mut labels = labels_of(input.source, &train);
            if budget.fraction() > 0.0 {
                let train_y: Vec<usize> = train
                    .iter()
                    .map(|&i| input.target[i].best.index())
                    .collect();
                let sub = stratified_subsample(&train_y, Format::COUNT, budget.fraction(), seed);
                for &p in &sub {
                    labels[p] = input.target[train[p]].best;
                }
            }
            let train_imgs = images_of(input.images, &train);
            let sel = SupervisedSelector::fit(
                &features_of(input.features, &train),
                train_imgs.as_deref(),
                &labels,
                cfg,
            )?;
            let test_imgs = images_of(input.images, &test);
            let preds =
                sel.predict_batch(&features_of(input.features, &test), test_imgs.as_deref());
            Ok(selection_quality(&preds, &results_of(input.target, &test)))
        })
        .collect::<Vec<_>>()
        .into_iter()
        .collect::<CoreResult<_>>()?;
    Ok(SelectionQuality::average(&qualities))
}

/// [`transfer_supervised`] at all three budgets with one k-fold split
/// computation and fits drawn from a shared [`FitPool`]: budgets whose
/// label vectors coincide on a fold (always true when the stratified
/// subset happens to agree with the source labels, and common between
/// 0% and small budgets) share one fit. Per budget, the result is
/// bit-identical to the single-budget protocol.
pub fn transfer_supervised_budgets(
    input: TransferInput<'_>,
    cfg: SupervisedConfig,
    folds: usize,
    seed: u64,
    pool: &FitPool,
) -> CoreResult<[SelectionQuality; 3]> {
    let y_target: Vec<usize> = input.target.iter().map(|r| r.best.index()).collect();
    let per_fold: Vec<[SelectionQuality; 3]> =
        stratified_kfold(&y_target, Format::COUNT, folds, seed)
            .into_par_iter()
            .map(|(train, test)| -> CoreResult<[SelectionQuality; 3]> {
                let train_features = features_of(input.features, &train);
                let test_features = features_of(input.features, &test);
                let test_results = results_of(input.target, &test);
                let train_imgs = images_of(input.images, &train);
                let test_imgs = images_of(input.images, &test);
                let source_labels = labels_of(input.source, &train);
                let train_y: Vec<usize> = train
                    .iter()
                    .map(|&i| input.target[i].best.index())
                    .collect();
                let mut qs = Vec::with_capacity(RetrainBudget::ALL.len());
                for budget in RetrainBudget::ALL {
                    let mut labels = source_labels.clone();
                    if budget.fraction() > 0.0 {
                        let sub =
                            stratified_subsample(&train_y, Format::COUNT, budget.fraction(), seed);
                        for &p in &sub {
                            labels[p] = input.target[train[p]].best;
                        }
                    }
                    let preds = if input.images.is_none() {
                        let sel = pool.supervised(&train_features, &labels, cfg)?;
                        sel.predict_batch(&test_features, None)
                    } else {
                        let sel = SupervisedSelector::fit(
                            &train_features,
                            train_imgs.as_deref(),
                            &labels,
                            cfg,
                        )?;
                        sel.predict_batch(&test_features, test_imgs.as_deref())
                    };
                    qs.push(selection_quality(&preds, &test_results));
                }
                Ok([qs[0], qs[1], qs[2]])
            })
            .collect::<Vec<_>>()
            .into_iter()
            .collect::<CoreResult<_>>()?;
    Ok([0, 1, 2].map(|b| {
        let per_budget: Vec<SelectionQuality> = per_fold.iter().map(|f| f[b]).collect();
        SelectionQuality::average(&per_budget)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semi::{ClusterMethod, Labeler};
    use crate::supervised::SupervisedModel;
    use spsel_gpusim::SpmvTimes;
    use spsel_matrix::{gen, CsrMatrix};

    /// Synthetic two-population problem with architecture-dependent labels:
    /// population A is ELL on the source but CSR on the target.
    fn problem() -> (Vec<FeatureVector>, Vec<BenchResult>, Vec<BenchResult>) {
        let mut features = Vec::new();
        let mut source = Vec::new();
        let mut target = Vec::new();
        let mk = |best: Format| -> BenchResult {
            let mut us = [10.0; 4];
            us[best.index()] = 5.0;
            BenchResult {
                times: SpmvTimes { us },
                best,
            }
        };
        for s in 0..30u64 {
            features.push(FeatureVector::from_csr(&CsrMatrix::from(&gen::stencil2d(
                10 + s as usize % 7,
                s,
            ))));
            source.push(mk(Format::Ell));
            target.push(mk(Format::Csr));
            features.push(FeatureVector::from_csr(&CsrMatrix::from(&gen::power_law(
                250, 250, 2, 2.4, 100, s,
            ))));
            source.push(mk(Format::Csr));
            target.push(mk(Format::Csr));
        }
        (features, source, target)
    }

    #[test]
    fn local_semi_beats_chance() {
        let (features, source, _) = problem();
        let q = local_semi(
            &features,
            &source,
            SemiConfig::new(ClusterMethod::KMeans { nc: 8 }, Labeler::Vote, 1),
            5,
            1,
        );
        assert!(q.acc > 0.8, "acc {}", q.acc);
        assert!(q.mcc > 0.5, "mcc {}", q.mcc);
    }

    #[test]
    fn retraining_repairs_transfer() {
        let (features, source, target) = problem();
        let input = TransferInput {
            features: &features,
            images: None,
            source: &source,
            target: &target,
        };
        let cfg = SemiConfig::new(ClusterMethod::KMeans { nc: 8 }, Labeler::Vote, 1);
        let q0 = transfer_semi(input, cfg, RetrainBudget::Zero, 5, 2);
        let q50 = transfer_semi(input, cfg, RetrainBudget::Half, 5, 2);
        // At 0% the selector predicts ELL for population A (source labels)
        // but the target wants CSR, so accuracy is ~0.5; retraining fixes it.
        assert!(q0.acc < 0.75, "0% acc {}", q0.acc);
        assert!(q50.acc > 0.9, "50% acc {}", q50.acc);
    }

    #[test]
    fn supervised_transfer_also_improves_with_budget() {
        let (features, source, target) = problem();
        let input = TransferInput {
            features: &features,
            images: None,
            source: &source,
            target: &target,
        };
        let cfg = SupervisedConfig::quick(SupervisedModel::Dt, 3);
        let q0 = transfer_supervised(input, cfg, RetrainBudget::Zero, 5, 2).unwrap();
        let q50 = transfer_supervised(input, cfg, RetrainBudget::Half, 5, 2).unwrap();
        // At 0% population A carries only stale source labels (~50%
        // overall accuracy); at 50% half of its labels are corrected, so
        // accuracy must rise markedly (though mixed labels cap it).
        assert!(q50.acc > q0.acc + 0.1, "50% {} vs 0% {}", q50.acc, q0.acc);
        assert!(q50.acc > 0.65, "50% acc {}", q50.acc);
    }

    #[test]
    fn local_supervised_learns() {
        let (features, source, _) = problem();
        let q = local_supervised(
            &features,
            None,
            &source,
            SupervisedConfig::quick(SupervisedModel::Rf, 5),
            5,
            3,
        )
        .unwrap();
        assert!(q.acc > 0.85, "acc {}", q.acc);
    }
}
