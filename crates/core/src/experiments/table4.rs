//! Table 4: local performance of the semi-supervised approach, nine
//! clustering × labeling combinations on each GPU.

use super::{ExperimentContext, SemiRow};
use crate::semi::{ClusterMethod, Labeler, SemiConfig};
use crate::share::FitPool;
use crate::transfer::local_semi_pooled;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration of the Table 4 run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Config {
    /// Candidate cluster counts for K-Means and Birch; the best-MCC value
    /// is reported per combination (the paper's "series of preliminary
    /// experiments to determine a good K").
    pub nc_candidates: Vec<usize>,
    /// Cross-validation folds (the paper uses 5).
    pub folds: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for Table4Config {
    fn default() -> Self {
        Table4Config {
            nc_candidates: vec![50, 100, 150, 200, 300, 400],
            folds: 5,
            seed: 17,
        }
    }
}

/// Table 4 contents: one block of nine rows per surviving GPU.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4 {
    /// GPUs that contributed a block (all three unless one degraded away).
    pub gpus: Vec<String>,
    /// `rows[g]`: the nine algorithm rows for `gpus[g]`.
    pub rows: Vec<Vec<SemiRow>>,
}

fn methods(nc: usize) -> [ClusterMethod; 3] {
    [
        ClusterMethod::KMeans { nc },
        ClusterMethod::MeanShift,
        ClusterMethod::Birch { nc },
    ]
}

const LABELERS: [Labeler; 3] = [
    Labeler::Vote,
    Labeler::LogisticRegression,
    Labeler::RandomForest,
];

/// Run the local semi-supervised evaluation on every surviving GPU.
///
/// The nine (clustering, labeler) cells of every GPU run through the
/// parallel runtime: each cell reads shared inputs, derives all its work
/// from `cfg.seed`, and fills only its own output slot, so any worker
/// count produces the same table as a serial run. The three labeler
/// cells of one `(GPU, method, nc)` cluster identical data, so their
/// per-fold clusterings (and Mean-Shift's full-dataset NC probe) come
/// from a shared [`FitPool`] and are fitted once instead of three times;
/// cell outputs are bit-identical to unpooled fits.
pub fn run(ctx: &ExperimentContext, cfg: &Table4Config) -> Table4 {
    let pool = FitPool::new();
    let mut gpus = Vec::new();
    let mut inputs = Vec::new();
    for gpu in ctx.active_gpus() {
        let indices = ctx.dataset(gpu);
        let features = ctx.features(&indices);
        let Ok(results) = ctx.results(gpu, &indices) else {
            continue; // dataset indices are feasible by construction
        };
        gpus.push(gpu.name().to_string());
        inputs.push((features, results));
    }

    let mut cells = Vec::new();
    for g in 0..inputs.len() {
        for method in methods(0) {
            for labeler in LABELERS {
                cells.push((g, method, labeler));
            }
        }
    }
    let cells_per_gpu = methods(0).len() * LABELERS.len();

    let computed: Vec<(usize, Option<SemiRow>)> = cells
        .into_par_iter()
        .map(|(g, method, labeler)| {
            let (features, results) = &inputs[g];
            // Mean-Shift chooses its own cluster count; K-Means and
            // Birch sweep the candidates and keep the best MCC.
            let candidates: Vec<usize> = match method {
                ClusterMethod::MeanShift => vec![0],
                _ => cfg.nc_candidates.clone(),
            };
            let mut best: Option<SemiRow> = None;
            for nc in candidates {
                let m = match method {
                    ClusterMethod::KMeans { .. } => ClusterMethod::KMeans { nc },
                    ClusterMethod::Birch { .. } => ClusterMethod::Birch { nc },
                    ClusterMethod::MeanShift => ClusterMethod::MeanShift,
                };
                let semi_cfg = SemiConfig::new(m, labeler, cfg.seed);
                let q = local_semi_pooled(features, results, semi_cfg, cfg.folds, cfg.seed, &pool);
                // Report the NC actually used: for Mean-Shift, measure
                // the discovered cluster count on the full dataset.
                let nc_used = match m {
                    ClusterMethod::MeanShift => pool
                        .clustering(features, m, semi_cfg.seed, semi_cfg.pca_dim)
                        .n_clusters(),
                    _ => nc,
                };
                let row = SemiRow {
                    algorithm: format!("{}-{}", m.name(), labeler.name()),
                    nc: nc_used,
                    mcc: q.mcc,
                    acc: q.acc,
                    f1: q.f1,
                };
                if best.as_ref().is_none_or(|b| row.mcc > b.mcc) {
                    best = Some(row);
                }
            }
            (g, best)
        })
        .collect();

    let mut rows: Vec<Vec<SemiRow>> = vec![Vec::with_capacity(cells_per_gpu); inputs.len()];
    for (g, row) in computed {
        if let Some(row) = row {
            rows[g].push(row);
        }
    }
    Table4 { gpus, rows }
}

impl Table4 {
    /// Render in the paper's layout (surviving GPUs only).
    pub fn render(&self) -> String {
        if self.rows.is_empty() || self.rows[0].is_empty() {
            return "Table 4: no surviving GPU datasets\n".to_string();
        }
        let mut out = String::new();
        out.push_str(&format!("{:<20}", "Algorithm:"));
        for gpu in &self.gpus {
            out.push_str(&format!(
                "| {:>6} {:>6} {:>6} {:>6} ",
                gpu, "MCC", "ACC", "F1"
            ));
        }
        out.push('\n');
        out.push_str(&format!("{:<20}", ""));
        for _ in &self.gpus {
            out.push_str(&format!("| {:>6} {:>6} {:>6} {:>6} ", "NC", "", "", ""));
        }
        out.push('\n');
        for r in 0..self.rows[0].len() {
            out.push_str(&format!("{:<20}", self.rows[0][r].algorithm));
            for g in 0..self.rows.len() {
                let row = &self.rows[g][r];
                out.push_str(&format!(
                    "| {:>6} {:>6.3} {:>6.3} {:>6.3} ",
                    row.nc, row.mcc, row.acc, row.f1
                ));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    #[test]
    fn small_run_produces_nine_rows_per_gpu() {
        let ctx = ExperimentContext::new(CorpusConfig::small(30, 2));
        let cfg = Table4Config {
            nc_candidates: vec![6],
            folds: 3,
            seed: 1,
        };
        let t = run(&ctx, &cfg);
        assert_eq!(t.rows.len(), 3);
        for gpu_rows in &t.rows {
            assert_eq!(gpu_rows.len(), 9);
            for row in gpu_rows {
                assert!((0.0..=1.0).contains(&row.acc), "{row:?}");
                assert!((-1.0..=1.0).contains(&row.mcc), "{row:?}");
            }
        }
        let r = t.render();
        assert!(r.contains("K-Means-VOTE"));
        assert!(r.contains("Mean-Shift-RF"));
        assert!(r.contains("Birch-LR"));
    }
}
