//! The Section 5.1 anecdote: the worst-case slowdown from defaulting to
//! CSR. The paper reports a 194.85x slowdown for the `mawi_201512012345`
//! network trace on the Quadro RTX 8000, where HYB is optimal.
//!
//! `mawi`-like matrices (tens of millions of near-empty rows plus a few
//! enormous hub rows) are exactly the shape our `row_skewed` generator
//! produces; this runner sweeps hub sizes and reports the worst CSR
//! slowdown the performance model yields on each GPU.

use serde::{Deserialize, Serialize};
use spsel_features::MatrixStats;
use spsel_gpusim::{predict_times, Gpu};
use spsel_matrix::Format;

/// One worst-case observation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorstCase {
    /// GPU.
    pub gpu: Gpu,
    /// Rows of the matrix.
    pub nrows: usize,
    /// Size of the hub row.
    pub hub: usize,
    /// CSR time / best time.
    pub slowdown: f64,
    /// The optimal format.
    pub best: Format,
}

/// Build `mawi`-like statistics: `nrows` rows of 2 nonzeros plus one hub
/// row of `hub` nonzeros.
pub fn mawi_like(nrows: usize, hub: usize) -> MatrixStats {
    // Constructed analytically (a real counts vector with tens of millions
    // of entries would add nothing).
    let nnz = 2 * (nrows - 1) + hub;
    let mean = nnz as f64 / nrows as f64;
    let dev_low = mean - 2.0;
    let dev_high = hub as f64 - mean;
    let var = ((nrows - 1) as f64 * dev_low * dev_low + dev_high * dev_high) / nrows as f64;
    MatrixStats {
        nrows,
        ncols: nrows,
        nnz,
        nnz_min: 2,
        nnz_max: hub,
        nnz_mean: mean,
        nnz_std: var.sqrt(),
        sig_lower: dev_low.abs(),
        sig_higher: dev_high,
        csr_max: hub + 62,
        hyb_ell_width: 2,
        hyb_ell_size: 2 * nrows,
        hyb_ell_nnz: 2 * nrows,
        hyb_coo_nnz: hub.saturating_sub(2),
        diagonals: nrows.min(hub + 2),
        dia_size: nrows * nrows.min(hub + 2),
        ell_size: hub * nrows,
    }
}

/// Sweep hub sizes on every GPU and report each GPU's worst case.
pub fn run() -> Vec<WorstCase> {
    let mut out = Vec::new();
    for gpu in Gpu::ALL {
        let spec = gpu.spec();
        let mut worst: Option<WorstCase> = None;
        for &nrows in &[1_000_000usize, 4_000_000, 16_000_000] {
            for &hub_frac in &[0.05f64, 0.2, 0.5, 0.9] {
                let hub = (nrows as f64 * hub_frac) as usize;
                let stats = mawi_like(nrows, hub);
                let times = predict_times(&spec, &stats, 0xBAD);
                let Some(best) = times.best() else { continue };
                if best == Format::Csr || !times.get(Format::Csr).is_finite() {
                    continue;
                }
                let slowdown = times.get(Format::Csr) / times.get(best);
                if worst.as_ref().is_none_or(|w| slowdown > w.slowdown) {
                    worst = Some(WorstCase {
                        gpu,
                        nrows,
                        hub,
                        slowdown,
                        best,
                    });
                }
            }
        }
        if let Some(w) = worst {
            out.push(w);
        }
    }
    out
}

/// Render the worst cases.
pub fn render(cases: &[WorstCase]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8}{:>12}{:>12}{:>12}{:>8}\n",
        "GPU", "rows", "hub nnz", "slowdown", "best"
    ));
    for c in cases {
        out.push_str(&format!(
            "{:<8}{:>12}{:>12}{:>12.2}{:>8}\n",
            c.gpu.name(),
            c.nrows,
            c.hub,
            c.slowdown,
            c.best.name()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_is_order_of_magnitude() {
        let cases = run();
        assert_eq!(cases.len(), 3);
        for c in &cases {
            assert!(
                c.slowdown > 10.0,
                "{}: worst slowdown only {:.1}",
                c.gpu.name(),
                c.slowdown
            );
            assert_ne!(c.best, Format::Csr);
        }
        // The Turing anecdote: slowdown deep into the double digits with a
        // non-CSR optimum, as in the paper's 194.85x HYB example.
        let turing = cases.iter().find(|c| c.gpu == Gpu::Turing).unwrap();
        assert!(
            turing.slowdown > 50.0,
            "Turing slowdown {:.1}",
            turing.slowdown
        );
    }

    #[test]
    fn mawi_like_stats_are_consistent() {
        let s = mawi_like(1000, 500);
        assert_eq!(s.nnz, 2 * 999 + 500);
        assert_eq!(s.nnz_max, 500);
        assert_eq!(s.hyb_coo_nnz, 498);
        assert!(s.nnz_std > 0.0);
    }

    #[test]
    fn render_contains_gpus() {
        let r = render(&run());
        assert!(r.contains("Turing"));
        assert!(r.contains("slowdown"));
    }
}
