//! Table 3: distribution of the best sparse formats across GPUs, plus the
//! common subset.

use super::ExperimentContext;
use serde::{Deserialize, Serialize};
use spsel_gpusim::Gpu;
use spsel_matrix::Format;

/// Table 3 contents.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3 {
    /// `per_gpu[g][f]`: matrices whose best format is `Format::ALL[f]` on
    /// `Gpu::ALL[g]`, over that GPU's full dataset.
    pub per_gpu: [[usize; 4]; 3],
    /// Dataset size per GPU.
    pub totals: [usize; 3],
    /// Same distribution restricted to the common subset.
    pub common: [[usize; 4]; 3],
    /// Common-subset size.
    pub common_total: usize,
}

/// Count label distributions per GPU and over the common subset.
pub fn run(ctx: &ExperimentContext) -> Table3 {
    let mut per_gpu = [[0usize; 4]; 3];
    let mut totals = [0usize; 3];
    for (g, _) in Gpu::ALL.iter().enumerate() {
        for r in ctx.benches[g].iter().flatten() {
            per_gpu[g][r.best.index()] += 1;
            totals[g] += 1;
        }
    }
    let common_idx = ctx.common_subset();
    let mut common = [[0usize; 4]; 3];
    for (g, _) in Gpu::ALL.iter().enumerate() {
        for &i in &common_idx {
            // The common subset is feasible on every *active* GPU; a GPU
            // lost to an outage stays all-zero here.
            if let Some(r) = ctx.benches[g][i] {
                common[g][r.best.index()] += 1;
            }
        }
    }
    Table3 {
        per_gpu,
        totals,
        common,
        common_total: common_idx.len(),
    }
}

impl Table3 {
    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<8}{:>8}{:>8}{:>8}   | common:{:>8}{:>8}{:>8}\n",
            "", "Pascal", "Volta", "Turing", "Pascal", "Volta", "Turing"
        ));
        for f in Format::ALL {
            out.push_str(&format!("{:<8}", f.name()));
            for g in 0..3 {
                out.push_str(&format!("{:>8}", self.per_gpu[g][f.index()]));
            }
            out.push_str("   |        ");
            for g in 0..3 {
                out.push_str(&format!("{:>8}", self.common[g][f.index()]));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "{:<8}{:>8}{:>8}{:>8}   | common total: {}\n",
            "Total", self.totals[0], self.totals[1], self.totals[2], self.common_total
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    #[test]
    fn distributions_sum_to_totals() {
        let ctx = ExperimentContext::new(CorpusConfig::small(30, 5));
        let t = run(&ctx);
        for g in 0..3 {
            assert_eq!(t.per_gpu[g].iter().sum::<usize>(), t.totals[g]);
            assert_eq!(t.common[g].iter().sum::<usize>(), t.common_total);
        }
        let r = t.render();
        assert!(r.contains("CSR"));
        assert!(r.contains("Total"));
    }
}
