//! Table 8: relative format-conversion cost and total benchmarking hours
//! per platform.
//!
//! The first half reports the conversion-cost ratios; in addition to the
//! paper's model numbers we *measure* the ratios with this workspace's own
//! CPU kernels and conversions on a sample of corpus-like matrices, which
//! gives an independently reproduced version of the same table.

use super::ExperimentContext;
use serde::{Deserialize, Serialize};
use spsel_gpusim::{conversion_cost_relative, estimate_benchmark_hours, Gpu};
use spsel_matrix::{gen, CooMatrix, CsrMatrix, EllMatrix, Format, HybMatrix, SpMv};
use std::time::Instant;

/// Table 8 contents.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table8 {
    /// Model ratios (the paper's values, adapted from prior work).
    pub model_ratios: [f64; 4],
    /// Ratios measured with this crate's CPU conversions and kernels.
    pub measured_ratios: [f64; 4],
    /// Estimated benchmarking hours per GPU (paper: Pascal 27, Quadro 24,
    /// Volta 18).
    pub hours: [f64; 3],
    /// Matrices counted per GPU.
    pub counted: [usize; 3],
}

/// Median of a mutable sample.
fn median(xs: &mut [f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Measure conversion-cost/SpMV ratios on a sample of generated matrices.
pub fn measure_conversion_ratios(sample_seeds: &[u64]) -> [f64; 4] {
    let mut coo_r = Vec::new();
    let mut ell_r = Vec::new();
    let mut hyb_r = Vec::new();
    for &seed in sample_seeds {
        let base = gen::random_uniform(20_000, 20_000, 16, seed);
        let csr = CsrMatrix::from(&base);
        let x = vec![1.0; csr.ncols()];
        let mut y = vec![0.0; csr.nrows()];

        // Time one CSR SpMV (averaged over a few runs to steady the clock).
        let t0 = Instant::now();
        let reps = 5;
        for _ in 0..reps {
            csr.spmv(&x, &mut y);
        }
        let spmv = t0.elapsed().as_secs_f64() / reps as f64;

        let t0 = Instant::now();
        let coo = CooMatrix::from(&csr);
        let coo_t = t0.elapsed().as_secs_f64();
        std::hint::black_box(&coo);

        let t0 = Instant::now();
        let ell = EllMatrix::try_from_csr(&csr).expect("uniform matrix is ELL-safe");
        let ell_t = t0.elapsed().as_secs_f64();
        std::hint::black_box(&ell);

        let t0 = Instant::now();
        let hyb = HybMatrix::from_csr(&csr);
        let hyb_t = t0.elapsed().as_secs_f64();
        std::hint::black_box(&hyb);

        coo_r.push(coo_t / spmv);
        ell_r.push(ell_t / spmv);
        hyb_r.push(hyb_t / spmv);
    }
    let mut out = [0.0; 4];
    out[Format::Coo.index()] = median(&mut coo_r);
    out[Format::Csr.index()] = 0.0;
    out[Format::Ell.index()] = median(&mut ell_r);
    out[Format::Hyb.index()] = median(&mut hyb_r);
    out
}

/// Run the Table 8 accounting.
pub fn run(ctx: &ExperimentContext, trials: usize, read_seconds: f64) -> Table8 {
    let measured_ratios = measure_conversion_ratios(&[1, 2, 3]);
    let mut hours = [0.0; 3];
    let mut counted = [0usize; 3];
    let stats: Vec<_> = ctx.corpus.records.iter().map(|r| r.stats.clone()).collect();
    let ids: Vec<u64> = ctx.corpus.records.iter().map(|r| r.id).collect();
    for (g, gpu) in Gpu::ALL.iter().enumerate() {
        hours[g] = estimate_benchmark_hours(&gpu.spec(), &stats, &ids, trials, read_seconds);
        counted[g] = ctx.dataset(*gpu).len();
    }
    Table8 {
        model_ratios: conversion_cost_relative(),
        measured_ratios,
        hours,
        counted,
    }
}

impl Table8 {
    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Format   Conversion Cost (model)   (measured, CPU kernels)\n");
        for f in [Format::Coo, Format::Ell, Format::Hyb] {
            out.push_str(&format!(
                "{:<9}{:>18.0}{:>26.1}\n",
                f.name(),
                self.model_ratios[f.index()],
                self.measured_ratios[f.index()]
            ));
        }
        out.push('\n');
        out.push_str("Platform   Matrices   Time (Hours)\n");
        let names = ["Pascal", "Volta", "Quadro"];
        // Paper order: Pascal, Quadro, Volta; keep Gpu::ALL order but label.
        for (g, gpu) in Gpu::ALL.iter().enumerate() {
            let label = if *gpu == Gpu::Turing {
                names[2]
            } else {
                gpu.name()
            };
            out.push_str(&format!(
                "{:<11}{:>8}{:>14.1}\n",
                label, self.counted[g], self.hours[g]
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    #[test]
    fn measured_ratios_are_ordered_like_the_paper() {
        // Exact magnitudes are hardware- and build-profile-dependent (the
        // paper's 9/102/147 are GPU numbers); assert the structure only:
        // CSR costs nothing, every other conversion costs something.
        let r = measure_conversion_ratios(&[7]);
        assert_eq!(r[Format::Csr.index()], 0.0);
        assert!(r[Format::Coo.index()] > 0.0);
        assert!(r[Format::Ell.index()] > 0.0);
        assert!(r[Format::Hyb.index()] > 0.0);
    }

    #[test]
    fn hours_positive_for_nonempty_corpus() {
        let ctx = ExperimentContext::new(CorpusConfig::small(10, 3));
        let t = run(&ctx, 100, 5.0);
        for h in t.hours {
            assert!(h > 0.0);
        }
        assert!(t.render().contains("Time (Hours)"));
    }
}
