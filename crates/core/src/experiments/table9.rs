//! Table 9: wall-clock training time of each model in the transfer
//! setting with 0 / 25 / 50 % additional target data.

use super::ExperimentContext;
use crate::semi::{ClusterMethod, Labeler, SemiConfig, SemiSupervisedSelector};
use crate::supervised::{SupervisedConfig, SupervisedModel, SupervisedSelector};
use serde::{Deserialize, Serialize};
use spsel_gpusim::Gpu;
use spsel_matrix::Format;
use spsel_ml::cv::stratified_subsample;
use std::time::Instant;

/// Configuration of the Table 9 run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table9Config {
    /// Source/target GPUs used for timing (any pair works; times depend
    /// only on data sizes).
    pub source: Gpu,
    /// Target architecture providing the retraining labels.
    pub target: Gpu,
    /// Number of clusters for the K-Means rows.
    pub nc: usize,
    /// Include the CNN row (expensive).
    pub with_cnn: bool,
    /// Use reduced model sizes.
    pub quick: bool,
    /// Seed.
    pub seed: u64,
}

impl Default for Table9Config {
    fn default() -> Self {
        Table9Config {
            source: Gpu::Pascal,
            target: Gpu::Turing,
            nc: 200,
            with_cnn: false,
            quick: false,
            seed: 41,
        }
    }
}

/// One row: a model and its training seconds per budget.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table9Row {
    /// Model name.
    pub model: String,
    /// Seconds at 0 / 25 / 50 % transfer data.
    pub seconds: [f64; 3],
}

/// Table 9 contents.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table9 {
    /// All measured rows.
    pub rows: Vec<Table9Row>,
}

/// Run the training-time measurement. Returns an empty table when either
/// timing GPU degraded away (nothing to time on a dead dataset).
pub fn run(ctx: &ExperimentContext, cfg: &Table9Config) -> Table9 {
    let common = ctx.common_subset();
    let features = ctx.features(&common);
    let images = ctx.images(&common);
    let (Ok(source_results), Ok(target_results)) = (
        ctx.results(cfg.source, &common),
        ctx.results(cfg.target, &common),
    ) else {
        eprintln!(
            "degradation: skipping table 9 ({} or {} lost)",
            cfg.source, cfg.target
        );
        return Table9 { rows: Vec::new() };
    };
    let source_labels: Vec<Format> = source_results.iter().map(|r| r.best).collect();
    let target_labels: Vec<Format> = target_results.iter().map(|r| r.best).collect();
    let y_target: Vec<usize> = target_labels.iter().map(|l| l.index()).collect();

    // At budget b the training set is the source-labeled corpus plus the
    // b-fraction of target-labeled matrices appended (training cost grows
    // with the budget, as in the paper's Table 9).
    let budget_sets: Vec<(Vec<usize>, Vec<Format>)> = [0.0, 0.25, 0.5]
        .iter()
        .map(|&frac| {
            let extra = if frac > 0.0 {
                stratified_subsample(&y_target, Format::COUNT, frac, cfg.seed)
            } else {
                Vec::new()
            };
            let mut idx: Vec<usize> = (0..features.len()).collect();
            let mut labels = source_labels.clone();
            for &e in &extra {
                idx.push(e);
                labels.push(target_labels[e]);
            }
            (idx, labels)
        })
        .collect();

    let mut rows = Vec::new();

    // Supervised models.
    let models: Vec<SupervisedModel> = SupervisedModel::ALL
        .into_iter()
        .filter(|m| cfg.with_cnn || !m.needs_images())
        .collect();
    for model in models {
        let sup_cfg = if cfg.quick {
            SupervisedConfig::quick(model, cfg.seed)
        } else {
            SupervisedConfig::new(model, cfg.seed)
        };
        let mut seconds = [0.0; 3];
        let mut fit_failed = false;
        for (b, (idx, labels)) in budget_sets.iter().enumerate() {
            let f: Vec<_> = idx.iter().map(|&i| features[i].clone()).collect();
            let img: Vec<_> = idx.iter().map(|&i| images[i].clone()).collect();
            let img_arg = model.needs_images().then_some(img.as_slice());
            let t0 = Instant::now();
            match SupervisedSelector::fit(&f, img_arg, labels, sup_cfg) {
                Ok(sel) => {
                    seconds[b] = t0.elapsed().as_secs_f64();
                    std::hint::black_box(&sel);
                }
                Err(e) => {
                    eprintln!("degradation: skipping {} timing: {e}", model.name());
                    fit_failed = true;
                    break;
                }
            }
        }
        if fit_failed {
            continue;
        }
        rows.push(Table9Row {
            model: model.name().to_string(),
            seconds,
        });
    }

    // Semi-supervised rows: clustering is fitted once per budget run (the
    // timing includes it, matching the "training time" accounting), then
    // relabeled with the extra target data.
    for labeler in [
        Labeler::Vote,
        Labeler::LogisticRegression,
        Labeler::RandomForest,
    ] {
        let semi_cfg = SemiConfig::new(ClusterMethod::KMeans { nc: cfg.nc }, labeler, cfg.seed);
        let mut seconds = [0.0; 3];
        for (b, frac) in [0.0, 0.25, 0.5].iter().enumerate() {
            let t0 = Instant::now();
            let mut sel = SemiSupervisedSelector::fit(&features, &source_labels, semi_cfg);
            if *frac > 0.0 {
                let sub = stratified_subsample(&y_target, Format::COUNT, *frac, cfg.seed);
                let sub_labels: Vec<Format> = sub.iter().map(|&i| target_labels[i]).collect();
                sel.relabel(&sub, &sub_labels);
            }
            seconds[b] = t0.elapsed().as_secs_f64();
            std::hint::black_box(&sel);
        }
        rows.push(Table9Row {
            model: format!("K-Means-{}", labeler.name()),
            seconds,
        });
    }

    Table9 { rows }
}

impl Table9 {
    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16}{:>10}{:>10}{:>10}\n",
            "Model", "0%", "25%", "50%"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<16}{:>10.3}{:>10.3}{:>10.3}\n",
                row.model, row.seconds[0], row.seconds[1], row.seconds[2]
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    #[test]
    fn timing_rows_are_positive_and_complete() {
        let ctx = ExperimentContext::new(CorpusConfig::small(20, 8));
        let cfg = Table9Config {
            nc: 5,
            quick: true,
            ..Default::default()
        };
        let t = run(&ctx, &cfg);
        // 5 tabular models + 3 K-Means rows.
        assert_eq!(t.rows.len(), 8);
        for row in &t.rows {
            for s in row.seconds {
                assert!(s >= 0.0);
            }
        }
        assert!(t.render().contains("K-Means-VOTE"));
    }
}
