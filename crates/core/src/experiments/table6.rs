//! Table 6: local performance of the supervised classifiers (DT, RF, SVM,
//! KNN, XGBoost, CNN) on each GPU, with the GT / CSR / Threshold columns.

use super::ExperimentContext;
use crate::speedup::SelectionQuality;
use crate::supervised::{SupervisedConfig, SupervisedModel};
use crate::transfer::local_supervised;
use serde::{Deserialize, Serialize};
use spsel_gpusim::Gpu;

/// Configuration of the Table 6 run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table6Config {
    /// Cross-validation folds.
    pub folds: usize,
    /// Seed.
    pub seed: u64,
    /// Include the CNN (requires a corpus built with images; expensive).
    pub with_cnn: bool,
    /// Use reduced model sizes (tests / smoke runs).
    pub quick: bool,
}

impl Default for Table6Config {
    fn default() -> Self {
        Table6Config {
            folds: 5,
            seed: 31,
            with_cnn: true,
            quick: false,
        }
    }
}

/// One row of Table 6.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table6Row {
    /// Model name.
    pub model: String,
    /// Quality metrics (ACC, F1, MCC, GT, CSR, Threshold).
    pub quality: SelectionQuality,
}

/// Table 6 contents: one block per GPU.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table6 {
    /// `rows[g]`: model rows for `Gpu::ALL[g]`.
    pub rows: Vec<Vec<Table6Row>>,
}

/// Run the supervised local evaluation on every GPU.
pub fn run(ctx: &ExperimentContext, cfg: &Table6Config) -> Table6 {
    let models: Vec<SupervisedModel> = SupervisedModel::ALL
        .into_iter()
        .filter(|m| cfg.with_cnn || !m.needs_images())
        .collect();
    let mut rows = Vec::new();
    for gpu in Gpu::ALL {
        let indices = ctx.dataset(gpu);
        let features = ctx.features(&indices);
        let images = ctx.images(&indices);
        let results = ctx.results(gpu, &indices);
        let mut gpu_rows = Vec::new();
        for model in &models {
            let sup_cfg = if cfg.quick {
                SupervisedConfig::quick(*model, cfg.seed)
            } else {
                SupervisedConfig::new(*model, cfg.seed)
            };
            let images_arg = model.needs_images().then_some(images.as_slice());
            let quality = local_supervised(
                &features, images_arg, &results, sup_cfg, cfg.folds, cfg.seed,
            );
            gpu_rows.push(Table6Row {
                model: model.name().to_string(),
                quality,
            });
        }
        rows.push(gpu_rows);
    }
    Table6 { rows }
}

impl Table6 {
    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10}{:>8}{:>7}{:>7}{:>7}{:>7}{:>9}\n",
            "MLM", "ACC", "F1", "MCC", "GT", "CSR", "Thresh."
        ));
        for (g, gpu) in Gpu::ALL.iter().enumerate() {
            out.push_str(&format!("--- {gpu} ---\n"));
            for row in &self.rows[g] {
                let q = &row.quality;
                out.push_str(&format!(
                    "{:<10}{:>8.2}{:>7.2}{:>7.2}{:>7.2}{:>7.2}{:>9}\n",
                    row.model,
                    q.acc * 100.0,
                    q.f1,
                    q.mcc,
                    q.gt,
                    q.csr,
                    q.threshold
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    #[test]
    fn small_run_without_cnn() {
        let ctx = ExperimentContext::new(CorpusConfig::small(24, 4));
        let cfg = Table6Config {
            folds: 3,
            seed: 1,
            with_cnn: false,
            quick: true,
        };
        let t = run(&ctx, &cfg);
        assert_eq!(t.rows.len(), 3);
        for gpu_rows in &t.rows {
            assert_eq!(gpu_rows.len(), 5);
            for row in gpu_rows {
                assert!(row.quality.gt <= 1.0 + 1e-9, "{row:?}");
                assert!(row.quality.acc > 0.2, "{row:?}");
            }
        }
        assert!(t.render().contains("XGBoost"));
    }
}
