//! Table 6: local performance of the supervised classifiers (DT, RF, SVM,
//! KNN, XGBoost, CNN) on each GPU, with the GT / CSR / Threshold columns.

use super::ExperimentContext;
use crate::share::FitPool;
use crate::speedup::SelectionQuality;
use crate::supervised::{SupervisedConfig, SupervisedModel};
use crate::transfer::local_supervised_pooled;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration of the Table 6 run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table6Config {
    /// Cross-validation folds.
    pub folds: usize,
    /// Seed.
    pub seed: u64,
    /// Include the CNN (requires a corpus built with images; expensive).
    pub with_cnn: bool,
    /// Use reduced model sizes (tests / smoke runs).
    pub quick: bool,
}

impl Default for Table6Config {
    fn default() -> Self {
        Table6Config {
            folds: 5,
            seed: 31,
            with_cnn: true,
            quick: false,
        }
    }
}

/// One row of Table 6.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table6Row {
    /// Model name.
    pub model: String,
    /// Quality metrics (ACC, F1, MCC, GT, CSR, Threshold).
    pub quality: SelectionQuality,
}

/// Table 6 contents: one block per surviving GPU.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table6 {
    /// GPUs that contributed a block (all three unless one degraded away).
    pub gpus: Vec<String>,
    /// `rows[g]`: model rows for `gpus[g]`.
    pub rows: Vec<Vec<Table6Row>>,
}

/// Run the supervised local evaluation on every surviving GPU. Models
/// whose fit fails (e.g. the CNN on a corpus without images) are skipped
/// with a note rather than aborting the table.
///
/// All (model, GPU) cells run through the parallel runtime: each cell
/// derives its work from `cfg.seed` alone and fills only its own output
/// slot, so any worker count produces the same table as a serial run.
/// Featural fits are drawn from a shared [`FitPool`], so cells that
/// would train an identical model (same features, labels, and config)
/// fit it once; outputs are bit-identical to unpooled fits.
pub fn run(ctx: &ExperimentContext, cfg: &Table6Config) -> Table6 {
    let pool = FitPool::new();
    let models: Vec<SupervisedModel> = SupervisedModel::ALL
        .into_iter()
        .filter(|m| cfg.with_cnn || !m.needs_images())
        .collect();
    let mut gpus = Vec::new();
    let mut inputs = Vec::new();
    for gpu in ctx.active_gpus() {
        let indices = ctx.dataset(gpu);
        let features = ctx.features(&indices);
        let images = ctx.images(&indices);
        let Ok(results) = ctx.results(gpu, &indices) else {
            continue; // dataset indices are feasible by construction
        };
        gpus.push(gpu.name().to_string());
        inputs.push((gpu, features, images, results));
    }

    let mut cells = Vec::new();
    for g in 0..inputs.len() {
        for model in &models {
            cells.push((g, *model));
        }
    }
    let computed: Vec<(usize, Option<Table6Row>)> = cells
        .into_par_iter()
        .map(|(g, model)| {
            let (gpu, features, images, results) = &inputs[g];
            let sup_cfg = if cfg.quick {
                SupervisedConfig::quick(model, cfg.seed)
            } else {
                SupervisedConfig::new(model, cfg.seed)
            };
            let images_arg = model.needs_images().then_some(images.as_slice());
            match local_supervised_pooled(
                features, images_arg, results, sup_cfg, cfg.folds, cfg.seed, &pool,
            ) {
                Ok(quality) => (
                    g,
                    Some(Table6Row {
                        model: model.name().to_string(),
                        quality,
                    }),
                ),
                Err(e) => {
                    eprintln!("degradation: skipping {} on {gpu}: {e}", model.name());
                    (g, None)
                }
            }
        })
        .collect();

    let mut rows: Vec<Vec<Table6Row>> = vec![Vec::with_capacity(models.len()); inputs.len()];
    for (g, row) in computed {
        if let Some(row) = row {
            rows[g].push(row);
        }
    }
    Table6 { gpus, rows }
}

impl Table6 {
    /// Render in the paper's layout (surviving GPUs only).
    pub fn render(&self) -> String {
        if self.rows.is_empty() {
            return "Table 6: no surviving GPU datasets\n".to_string();
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10}{:>8}{:>7}{:>7}{:>7}{:>7}{:>9}\n",
            "MLM", "ACC", "F1", "MCC", "GT", "CSR", "Thresh."
        ));
        for (g, gpu) in self.gpus.iter().enumerate() {
            out.push_str(&format!("--- {gpu} ---\n"));
            for row in &self.rows[g] {
                let q = &row.quality;
                out.push_str(&format!(
                    "{:<10}{:>8.2}{:>7.2}{:>7.2}{:>7.2}{:>7.2}{:>9}\n",
                    row.model,
                    q.acc * 100.0,
                    q.f1,
                    q.mcc,
                    q.gt,
                    q.csr,
                    q.threshold
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    #[test]
    fn small_run_without_cnn() {
        let ctx = ExperimentContext::new(CorpusConfig::small(24, 4));
        let cfg = Table6Config {
            folds: 3,
            seed: 1,
            with_cnn: false,
            quick: true,
        };
        let t = run(&ctx, &cfg);
        assert_eq!(t.rows.len(), 3);
        for gpu_rows in &t.rows {
            assert_eq!(gpu_rows.len(), 5);
            for row in gpu_rows {
                assert!(row.quality.gt <= 1.0 + 1e-9, "{row:?}");
                assert!(row.quality.acc > 0.2, "{row:?}");
            }
        }
        assert!(t.render().contains("XGBoost"));
    }
}
