//! Format zoo: per-workload label distributions and the cross-workload
//! disagreement table.
//!
//! The paper freezes the selection problem at (four CUSP formats, SpMV).
//! This experiment re-poses it over a [`FormatRegistry`] and the three
//! reported workloads (SpMV, SpMM-4, SpMM-32): for every corpus matrix
//! and GPU it asks the performance model for the best *registered* format
//! under each workload, then reports
//!
//! 1. the per-workload label distribution (the Table 3 shape, one block
//!    per workload), and
//! 2. the disagreement table: for each workload pair, how many matrices
//!    change their best format when the workload changes — the number
//!    that justifies treating labels as `(workload → format)` instead of
//!    a single format per matrix.

use super::ExperimentContext;
use serde::{Deserialize, Serialize};
use spsel_gpusim::{best_format_for, Gpu};
use spsel_matrix::{Format, FormatRegistry, Workload};

/// Which registry the zoo experiment labels against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegistryChoice {
    /// The paper's four CUSP formats.
    CuspDefault,
    /// CUSP four plus BSR and SELL-C-σ.
    Extended,
    /// Every format the workspace knows (adds DIA).
    Full,
}

impl RegistryChoice {
    /// Materialize the chosen registry.
    pub fn registry(self) -> FormatRegistry {
        match self {
            RegistryChoice::CuspDefault => FormatRegistry::cusp_default(),
            RegistryChoice::Extended => FormatRegistry::extended(),
            RegistryChoice::Full => FormatRegistry::full(),
        }
    }
}

/// Experiment parameters (also the experiment-cache key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FormatZooConfig {
    /// Registry to label against.
    pub registry: RegistryChoice,
}

impl Default for FormatZooConfig {
    fn default() -> Self {
        FormatZooConfig {
            registry: RegistryChoice::Extended,
        }
    }
}

/// Label distribution of one workload: the Table 3 shape over the
/// full format universe (unregistered formats stay zero).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadDistribution {
    /// Workload wire name (`spmv`, `spmm4`, `spmm32`).
    pub workload: String,
    /// `per_gpu[g][f]`: matrices labeled `Format::UNIVERSE[f]` on
    /// `Gpu::ALL[g]`.
    pub per_gpu: [[usize; Format::UNIVERSE_COUNT]; 3],
    /// Labeled-matrix count per GPU (matrices with any feasible format).
    pub totals: [usize; 3],
}

/// One row of the cross-workload disagreement table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DisagreementRow {
    /// GPU name.
    pub gpu: String,
    /// First workload of the pair.
    pub from: String,
    /// Second workload of the pair.
    pub to: String,
    /// Matrices labeled under both workloads.
    pub total: usize,
    /// Matrices whose best format differs between the two workloads.
    pub disagreements: usize,
    /// The most common label transition, as `"CSR->ELL"` (empty when the
    /// workloads agree everywhere).
    pub top_shift: String,
}

impl DisagreementRow {
    /// Disagreement rate in `[0, 1]`.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.disagreements as f64 / self.total as f64
        }
    }
}

/// Format-zoo experiment output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FormatZoo {
    /// Names of the registered formats, registry order.
    pub registry_formats: Vec<String>,
    /// The registry digest the labels were computed under.
    pub registry_digest: String,
    /// One distribution block per workload in [`Workload::ALL`] order.
    pub distributions: Vec<WorkloadDistribution>,
    /// Disagreement rows: every GPU × ordered workload pair.
    pub disagreement: Vec<DisagreementRow>,
}

/// Label the corpus per workload and tabulate distributions and
/// disagreements.
pub fn run(ctx: &ExperimentContext, cfg: &FormatZooConfig) -> FormatZoo {
    let registry = cfg.registry.registry();
    let workloads = Workload::ALL;

    // labels[w][g][i]: best registered format of record i on GPU g under
    // workload w (None: nothing feasible, or the GPU lost the record).
    let labels: Vec<Vec<Vec<Option<Format>>>> = workloads
        .iter()
        .map(|&w| {
            Gpu::ALL
                .iter()
                .map(|&g| {
                    let spec = g.spec();
                    (0..ctx.corpus.len())
                        .map(|i| {
                            // Stay on each GPU's surviving dataset so a
                            // quarantined or infeasible record does not
                            // re-enter through the zoo path.
                            ctx.benches[g as usize][i]?;
                            let r = &ctx.corpus.records[i];
                            best_format_for(&spec, &r.stats, r.id, &registry, w)
                        })
                        .collect()
                })
                .collect()
        })
        .collect();

    let distributions = workloads
        .iter()
        .enumerate()
        .map(|(wi, w)| {
            let mut per_gpu = [[0usize; Format::UNIVERSE_COUNT]; 3];
            let mut totals = [0usize; 3];
            for g in 0..Gpu::ALL.len() {
                for f in labels[wi][g].iter().flatten() {
                    per_gpu[g][f.index()] += 1;
                    totals[g] += 1;
                }
            }
            WorkloadDistribution {
                workload: w.name(),
                per_gpu,
                totals,
            }
        })
        .collect();

    let mut disagreement = Vec::new();
    for (g, gpu) in Gpu::ALL.iter().enumerate() {
        for a in 0..workloads.len() {
            for b in a + 1..workloads.len() {
                let mut total = 0;
                let mut disagreements = 0;
                let mut shifts: Vec<((Format, Format), usize)> = Vec::new();
                for i in 0..ctx.corpus.len() {
                    let (Some(fa), Some(fb)) = (labels[a][g][i], labels[b][g][i]) else {
                        continue;
                    };
                    total += 1;
                    if fa != fb {
                        disagreements += 1;
                        match shifts.iter_mut().find(|(k, _)| *k == (fa, fb)) {
                            Some((_, n)) => *n += 1,
                            None => shifts.push(((fa, fb), 1)),
                        }
                    }
                }
                let top_shift = shifts
                    .iter()
                    .max_by_key(|&&(_, n)| n)
                    .map(|((fa, fb), _)| format!("{}->{}", fa.name(), fb.name()))
                    .unwrap_or_default();
                disagreement.push(DisagreementRow {
                    gpu: gpu.name().to_string(),
                    from: workloads[a].name(),
                    to: workloads[b].name(),
                    total,
                    disagreements,
                    top_shift,
                });
            }
        }
    }

    FormatZoo {
        registry_formats: registry.formats().iter().map(|f| f.name().into()).collect(),
        registry_digest: registry.digest(),
        distributions,
        disagreement,
    }
}

impl FormatZoo {
    /// Total disagreements across all rows (the headline number: zero
    /// would mean the workload axis is redundant).
    pub fn total_disagreements(&self) -> usize {
        self.disagreement.iter().map(|r| r.disagreements).sum()
    }

    /// Render both tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Format zoo: registry [{}] digest {}\n\n",
            self.registry_formats.join(", "),
            self.registry_digest
        ));
        out.push_str("Per-workload best-format distribution\n");
        let shown: Vec<Format> = Format::UNIVERSE
            .into_iter()
            .filter(|f| self.registry_formats.iter().any(|n| n == f.name()))
            .collect();
        for dist in &self.distributions {
            out.push_str(&format!("  workload {}\n", dist.workload));
            out.push_str(&format!(
                "  {:<8}{:>8}{:>8}{:>8}\n",
                "", "Pascal", "Volta", "Turing"
            ));
            for f in &shown {
                out.push_str(&format!("  {:<8}", f.name()));
                for g in 0..3 {
                    out.push_str(&format!("{:>8}", dist.per_gpu[g][f.index()]));
                }
                out.push('\n');
            }
            out.push_str(&format!(
                "  {:<8}{:>8}{:>8}{:>8}\n",
                "Total", dist.totals[0], dist.totals[1], dist.totals[2]
            ));
        }
        out.push_str("\nCross-workload label disagreement\n");
        out.push_str(&format!(
            "  {:<8}{:<16}{:>8}{:>10}{:>8}  {}\n",
            "GPU", "pair", "total", "disagree", "rate", "top shift"
        ));
        for r in &self.disagreement {
            out.push_str(&format!(
                "  {:<8}{:<16}{:>8}{:>10}{:>7.1}%  {}\n",
                r.gpu,
                format!("{}->{}", r.from, r.to),
                r.total,
                r.disagreements,
                100.0 * r.rate(),
                r.top_shift
            ));
        }
        out.push_str(&format!(
            "  total disagreements: {}\n",
            self.total_disagreements()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    #[test]
    fn distributions_sum_and_disagreement_rows_cover_pairs() {
        let ctx = ExperimentContext::new(CorpusConfig::small(30, 5));
        let zoo = run(&ctx, &FormatZooConfig::default());
        assert_eq!(zoo.distributions.len(), Workload::ALL.len());
        for dist in &zoo.distributions {
            for g in 0..3 {
                assert_eq!(dist.per_gpu[g].iter().sum::<usize>(), dist.totals[g]);
            }
        }
        // 3 GPUs x 3 unordered workload pairs.
        assert_eq!(zoo.disagreement.len(), 9);
        let r = zoo.render();
        assert!(r.contains("spmm32"));
        assert!(r.contains("disagree"));
    }

    #[test]
    fn extended_registry_disagrees_somewhere() {
        // The acceptance criterion: the disagreement table must have
        // nonzero rows under the extended registry.
        let ctx = ExperimentContext::new(CorpusConfig::small(40, 7));
        let zoo = run(&ctx, &FormatZooConfig::default());
        assert!(
            zoo.total_disagreements() > 0,
            "no matrix changed label across workloads"
        );
    }

    #[test]
    fn default_registry_spmv_block_matches_table3() {
        // The zoo's SpMV distribution under the CUSP registry must equal
        // Table 3's per-GPU distribution: same model, same noise lanes.
        let ctx = ExperimentContext::new(CorpusConfig::small(25, 9));
        let zoo = run(
            &ctx,
            &FormatZooConfig {
                registry: RegistryChoice::CuspDefault,
            },
        );
        let t3 = super::super::table3::run(&ctx);
        let spmv = &zoo.distributions[0];
        assert_eq!(spmv.workload, "spmv");
        for g in 0..3 {
            for f in Format::ALL {
                assert_eq!(
                    spmv.per_gpu[g][f.index()],
                    t3.per_gpu[g][f.index()],
                    "GPU {g} format {f}"
                );
            }
            assert_eq!(spmv.totals[g], t3.totals[g]);
        }
    }
}
