//! One runner per table of the paper.
//!
//! Every runner consumes a shared [`ExperimentContext`] (corpus + per-GPU
//! benchmark results) so the corpus is built and benchmarked exactly once
//! per invocation of the harness. Each runner returns a serializable
//! result struct with a `render()` method that prints the table in the
//! paper's layout.

pub mod ablation;
pub mod formatzoo;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod table8;
pub mod table9;
pub mod worstcase;

use crate::cache::Cache;
use crate::corpus::{Corpus, CorpusConfig};
use crate::error::{CoreError, CoreResult};
use crate::telemetry::{DegradationReport, QuarantinedRecord, RunReport};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use spsel_features::{DensityImage, FeatureVector};
use spsel_gpusim::{BenchOutcome, BenchResult, CorpusBench, FaultConfig, Gpu, TrialPolicy};

/// Corpus plus ground-truth benchmarks for all three GPUs.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// The synthetic corpus.
    pub corpus: Corpus,
    /// `benches[g][i]`: benchmark result of record `i` on `Gpu::ALL[g]`.
    /// `None` entries are infeasible *or* quarantined records; a GPU whose
    /// whole run failed is all-`None` and listed in
    /// `degradation.failed_gpus`.
    pub benches: Vec<Vec<Option<BenchResult>>>,
    /// Fault-injection and graceful-degradation accounting for this build.
    pub degradation: DegradationReport,
}

impl ExperimentContext {
    /// Build the corpus and benchmark it on all three GPUs (no cache, no
    /// instrumentation — see [`ExperimentContext::build`] for both).
    pub fn new(cfg: CorpusConfig) -> Self {
        Self::build(cfg, &Cache::disabled(), &mut RunReport::new("context"))
    }

    /// Cache-aware, instrumented construction with faults off; see
    /// [`ExperimentContext::build_with_faults`].
    pub fn build(cfg: CorpusConfig, cache: &Cache, report: &mut RunReport) -> Self {
        Self::build_with_faults(
            cfg,
            cache,
            report,
            &FaultConfig::off(),
            &TrialPolicy::default(),
        )
    }

    /// Cache-aware, instrumented, fault-tolerant construction: the corpus
    /// and each GPU's benchmark results are loaded from `cache` when a
    /// valid artifact exists and recomputed (then stored back) otherwise.
    /// The three GPU targets are benchmarked concurrently; each per-GPU
    /// benchmark is itself record-parallel, and both levels produce
    /// results identical to a serial run.
    ///
    /// With `faults` enabled, benchmarking goes through the resilient
    /// trial-level path ([`Corpus::measure`]): quarantined records become
    /// `None` entries with their reasons recorded in the degradation
    /// report, a GPU whose whole run fails is skipped (all-`None`), and
    /// the benchmark cache is bypassed so fault-shaped results never
    /// poison fault-free runs. With `faults` off this is bit-identical to
    /// the classic path. Phase timings, cache counters, and the
    /// degradation section land in `report`.
    pub fn build_with_faults(
        cfg: CorpusConfig,
        cache: &Cache,
        report: &mut RunReport,
        faults: &FaultConfig,
        policy: &TrialPolicy,
    ) -> Self {
        let (corpus, plan) = report.time("corpus_build", || Corpus::build_cached(cfg, cache));
        let mut degradation = DegradationReport {
            faults_enabled: faults.enabled(),
            fault_seed: faults.seed,
            fault_rates: faults.rates,
            ..Default::default()
        };
        // Per GPU: the results plus, under faults, what happened to them.
        enum GpuRun {
            Clean(Vec<Option<BenchResult>>),
            Measured(CorpusBench),
            Outage,
        }
        let runs: Vec<GpuRun> = report.time("benchmark", || {
            Gpu::ALL
                .to_vec()
                .into_par_iter()
                .map(|g| {
                    if !faults.enabled() {
                        return GpuRun::Clean(corpus.benchmark_cached(&plan, g, cache));
                    }
                    if faults.gpu_outage(g as usize) {
                        return GpuRun::Outage;
                    }
                    GpuRun::Measured(corpus.measure(g, faults, policy))
                })
                .collect()
        });
        let mut benches = Vec::with_capacity(Gpu::ALL.len());
        for (g, run) in Gpu::ALL.into_iter().zip(runs) {
            match run {
                GpuRun::Clean(results) => benches.push(results),
                GpuRun::Outage => {
                    eprintln!(
                        "degradation: {} benchmark run failed entirely; \
                         continuing with the surviving GPUs",
                        g.name()
                    );
                    degradation.fail_gpu(g.name());
                    benches.push(vec![None; corpus.len()]);
                }
                GpuRun::Measured(bench) => {
                    degradation.injected.merge(&bench.counters);
                    for (index, error) in bench.quarantined() {
                        degradation.quarantine(QuarantinedRecord {
                            gpu: g.name().to_string(),
                            index,
                            id: corpus.records[index].id,
                            class: error.class().to_string(),
                            reason: error.reason(),
                        });
                    }
                    degradation.infeasible += bench
                        .outcomes
                        .iter()
                        .filter(|o| matches!(o, BenchOutcome::Infeasible))
                        .count() as u64;
                    benches.push(bench.results());
                }
            }
        }
        degradation.cache_corruption_injected = cache.corruption_injected();
        report.cache = cache.report();
        report.degradation = degradation.clone();
        ExperimentContext {
            corpus,
            benches,
            degradation,
        }
    }

    /// Extend the context with grown records ingested from serve-time
    /// journals (`spsel corpus ingest`): every grown record of the
    /// corpus config's generator family not already present is appended
    /// to the corpus together with its cached benchmark cells, so a
    /// retrain touches only new records — nothing is regenerated or
    /// re-benchmarked. Returns how many records were appended. The
    /// grown records participate in [`ExperimentContext::digest`], so
    /// experiment and model cache keys track corpus growth.
    pub fn extend_with_growth(&mut self, cache: &Cache) -> usize {
        let grown = cache.load_growth(self.corpus.config());
        let mut have: std::collections::HashSet<u64> =
            self.corpus.records.iter().map(|r| r.id).collect();
        let mut added = 0;
        for g in grown {
            if g.benches.len() != self.benches.len() || !have.insert(g.record.id) {
                continue;
            }
            for (per_gpu, cell) in self.benches.iter_mut().zip(&g.benches) {
                per_gpu.push(*cell);
            }
            self.corpus.records.push(g.record);
            added += 1;
        }
        added
    }

    /// Canonical digest of everything an experiment's numbers can depend
    /// on: corpus version + config (floats as bit patterns), every record
    /// id (so grown corpora key differently from their seed corpus), and,
    /// per GPU, every benchmark entry (presence, the four per-format
    /// timings as bit patterns, and the best-format index). Two contexts
    /// with equal digests produce bit-identical tables for equal
    /// experiment params, which is what keys the experiment-phase cache.
    pub fn digest(&self) -> u64 {
        let mut w = crate::cache::KeyWriter::new();
        w.u32(crate::cache::CORPUS_VERSION);
        w.corpus_config(self.corpus.config());
        w.usize(self.corpus.len());
        for r in &self.corpus.records {
            w.u64(r.id);
        }
        w.usize(self.benches.len());
        for per_gpu in &self.benches {
            w.usize(per_gpu.len());
            for entry in per_gpu {
                match entry {
                    None => w.bool(false),
                    Some(r) => {
                        w.bool(true);
                        for &us in &r.times.us {
                            w.f64(us);
                        }
                        w.usize(r.best.index());
                    }
                }
            }
        }
        w.finish()
    }

    /// Benchmark results for one GPU.
    pub fn bench(&self, gpu: Gpu) -> &[Option<BenchResult>] {
        &self.benches[gpu as usize]
    }

    /// Record indices that fit on `gpu` (that GPU's dataset).
    pub fn dataset(&self, gpu: Gpu) -> Vec<usize> {
        (0..self.corpus.len())
            .filter(|&i| self.bench(gpu)[i].is_some())
            .collect()
    }

    /// GPUs that contributed at least one usable record (a GPU lost to a
    /// whole-run outage, or whose every record was quarantined, is not
    /// active). Tables iterate these to render with the survivors.
    pub fn active_gpus(&self) -> Vec<Gpu> {
        Gpu::ALL
            .into_iter()
            .filter(|&g| self.bench(g).iter().any(|r| r.is_some()))
            .collect()
    }

    /// Record indices that fit on every *active* GPU (the paper's Common
    /// Subset). With all GPUs healthy this is the classic definition; a
    /// GPU that failed entirely does not shrink the subset to nothing.
    pub fn common_subset(&self) -> Vec<usize> {
        let active = self.active_gpus();
        if active.is_empty() {
            return Vec::new();
        }
        (0..self.corpus.len())
            .filter(|&i| active.iter().all(|&g| self.bench(g)[i].is_some()))
            .collect()
    }

    /// Features of the given record indices.
    pub fn features(&self, indices: &[usize]) -> Vec<FeatureVector> {
        indices
            .iter()
            .map(|&i| self.corpus.records[i].features.clone())
            .collect()
    }

    /// Density images of the given record indices (entries may be `None`
    /// if the corpus was built without images).
    pub fn images(&self, indices: &[usize]) -> Vec<Option<DensityImage>> {
        indices
            .iter()
            .map(|&i| self.corpus.records[i].image.clone())
            .collect()
    }

    /// Benchmark results of the given indices on one GPU. Errors when an
    /// index has no usable result there (infeasible or quarantined) —
    /// pass indices from [`ExperimentContext::dataset`] or
    /// [`ExperimentContext::common_subset`], and skip the GPU on `Err`.
    pub fn results(&self, gpu: Gpu, indices: &[usize]) -> CoreResult<Vec<BenchResult>> {
        indices
            .iter()
            .map(|&i| {
                self.bench(gpu)[i].ok_or_else(|| CoreError::InfeasibleRecord {
                    gpu: gpu.name().to_string(),
                    index: i,
                })
            })
            .collect()
    }
}

/// The six source→target GPU pairs of Table 5, in the paper's row order.
pub const TRANSFER_PAIRS: [(Gpu, Gpu); 6] = [
    (Gpu::Pascal, Gpu::Turing),
    (Gpu::Pascal, Gpu::Volta),
    (Gpu::Turing, Gpu::Pascal),
    (Gpu::Turing, Gpu::Volta),
    (Gpu::Volta, Gpu::Pascal),
    (Gpu::Volta, Gpu::Turing),
];

/// Helper shared by Tables 4 and 5: the nine clustering × labeling
/// combinations in the paper's row order.
pub fn nine_algorithms(nc: usize) -> Vec<(crate::semi::ClusterMethod, crate::semi::Labeler)> {
    use crate::semi::{ClusterMethod, Labeler};
    let methods = [
        ClusterMethod::KMeans { nc },
        ClusterMethod::MeanShift,
        ClusterMethod::Birch { nc },
    ];
    let labelers = [
        Labeler::Vote,
        Labeler::LogisticRegression,
        Labeler::RandomForest,
    ];
    methods
        .into_iter()
        .flat_map(|m| labelers.into_iter().map(move |l| (m, l)))
        .collect()
}

/// One row shared by the semi-supervised tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SemiRow {
    /// "K-Means-VOTE" etc.
    pub algorithm: String,
    /// Number of clusters used.
    pub nc: usize,
    /// MCC score.
    pub mcc: f64,
    /// Accuracy.
    pub acc: f64,
    /// Weighted F1.
    pub f1: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_builds_and_partitions() {
        let ctx = ExperimentContext::new(CorpusConfig::small(25, 11));
        assert_eq!(ctx.benches.len(), 3);
        assert!(!ctx.degradation.faults_enabled);
        assert_eq!(ctx.active_gpus(), Gpu::ALL.to_vec());
        let common = ctx.common_subset();
        for g in Gpu::ALL {
            let ds = ctx.dataset(g);
            assert!(common.len() <= ds.len());
            // results() must succeed on dataset indices.
            let r = ctx.results(g, &ds).unwrap();
            assert_eq!(r.len(), ds.len());
        }
        // And error (not panic) on an index outside any dataset.
        let infeasible: Vec<usize> = (0..ctx.corpus.len())
            .filter(|&i| ctx.bench(Gpu::Pascal)[i].is_none())
            .collect();
        if let Some(&i) = infeasible.first() {
            assert!(ctx.results(Gpu::Pascal, &[i]).is_err());
        }
    }

    #[test]
    fn faulty_build_degrades_and_reruns_bit_identically() {
        let cfg = CorpusConfig::small(20, 5);
        let faults = FaultConfig::uniform(0.05, 17);
        let policy = TrialPolicy::default();
        let mut r1 = RunReport::new("a");
        let a = ExperimentContext::build_with_faults(
            cfg.clone(),
            &Cache::disabled(),
            &mut r1,
            &faults,
            &policy,
        );
        assert!(a.degradation.faults_enabled);
        assert!(a.degradation.injected.any(), "5% faults injected nothing");
        assert_eq!(r1.degradation, a.degradation);
        // Same fault seed: bit-identical benches and identical accounting.
        let mut r2 = RunReport::new("b");
        let b = ExperimentContext::build_with_faults(
            cfg,
            &Cache::disabled(),
            &mut r2,
            &faults,
            &policy,
        );
        assert_eq!(a.benches, b.benches);
        assert_eq!(a.degradation, b.degradation);
    }

    #[test]
    fn gpu_outage_is_skipped_not_fatal() {
        let cfg = CorpusConfig::small(15, 3);
        let mut faults = FaultConfig::uniform(0.0, 1);
        faults.rates.gpu_outage = 1.0; // every GPU down: worst case
        let ctx = ExperimentContext::build_with_faults(
            cfg,
            &Cache::disabled(),
            &mut RunReport::new("outage"),
            &faults,
            &TrialPolicy::default(),
        );
        assert_eq!(ctx.degradation.failed_gpus.len(), 3);
        assert!(ctx.active_gpus().is_empty());
        assert!(ctx.common_subset().is_empty());
        for g in Gpu::ALL {
            assert!(ctx.dataset(g).is_empty());
        }
    }

    #[test]
    fn nine_algorithms_are_nine() {
        assert_eq!(nine_algorithms(10).len(), 9);
    }
}
