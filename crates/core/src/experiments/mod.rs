//! One runner per table of the paper.
//!
//! Every runner consumes a shared [`ExperimentContext`] (corpus + per-GPU
//! benchmark results) so the corpus is built and benchmarked exactly once
//! per invocation of the harness. Each runner returns a serializable
//! result struct with a `render()` method that prints the table in the
//! paper's layout.

pub mod ablation;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod table8;
pub mod table9;
pub mod worstcase;

use crate::cache::Cache;
use crate::corpus::{Corpus, CorpusConfig};
use crate::telemetry::RunReport;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use spsel_features::{DensityImage, FeatureVector};
use spsel_gpusim::{BenchResult, Gpu};

/// Corpus plus ground-truth benchmarks for all three GPUs.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// The synthetic corpus.
    pub corpus: Corpus,
    /// `benches[g][i]`: benchmark result of record `i` on `Gpu::ALL[g]`.
    pub benches: Vec<Vec<Option<BenchResult>>>,
}

impl ExperimentContext {
    /// Build the corpus and benchmark it on all three GPUs (no cache, no
    /// instrumentation — see [`ExperimentContext::build`] for both).
    pub fn new(cfg: CorpusConfig) -> Self {
        Self::build(cfg, &Cache::disabled(), &mut RunReport::new("context"))
    }

    /// Cache-aware, instrumented construction: the corpus and each GPU's
    /// benchmark results are loaded from `cache` when a valid artifact
    /// exists and recomputed (then stored back) otherwise. The three GPU
    /// targets are benchmarked concurrently; each per-GPU benchmark is
    /// itself record-parallel, and both levels produce results identical
    /// to a serial run. Phase timings and cache counters land in `report`.
    pub fn build(cfg: CorpusConfig, cache: &Cache, report: &mut RunReport) -> Self {
        let corpus = report.time("corpus_build", || {
            cache.load_corpus(&cfg).unwrap_or_else(|| {
                let corpus = Corpus::build(cfg.clone());
                cache.store_corpus(&corpus);
                corpus
            })
        });
        let benches = report.time("benchmark", || {
            Gpu::ALL
                .to_vec()
                .into_par_iter()
                .map(|g| {
                    cache
                        .load_bench(corpus.config(), g, &corpus.records)
                        .unwrap_or_else(|| {
                            let results = corpus.benchmark(g);
                            cache.store_bench(corpus.config(), g, &corpus.records, &results);
                            results
                        })
                })
                .collect()
        });
        report.cache = cache.report();
        ExperimentContext { corpus, benches }
    }

    /// Benchmark results for one GPU.
    pub fn bench(&self, gpu: Gpu) -> &[Option<BenchResult>] {
        &self.benches[gpu as usize]
    }

    /// Record indices that fit on `gpu` (that GPU's dataset).
    pub fn dataset(&self, gpu: Gpu) -> Vec<usize> {
        (0..self.corpus.len())
            .filter(|&i| self.bench(gpu)[i].is_some())
            .collect()
    }

    /// Record indices that fit on every GPU (the paper's Common Subset).
    pub fn common_subset(&self) -> Vec<usize> {
        self.corpus.common_subset(&self.benches)
    }

    /// Features of the given record indices.
    pub fn features(&self, indices: &[usize]) -> Vec<FeatureVector> {
        indices
            .iter()
            .map(|&i| self.corpus.records[i].features.clone())
            .collect()
    }

    /// Density images of the given record indices (entries may be `None`
    /// if the corpus was built without images).
    pub fn images(&self, indices: &[usize]) -> Vec<Option<DensityImage>> {
        indices
            .iter()
            .map(|&i| self.corpus.records[i].image.clone())
            .collect()
    }

    /// Unwrapped benchmark results of the given indices on one GPU.
    ///
    /// # Panics
    /// Panics if an index is infeasible on that GPU; pass indices from
    /// [`ExperimentContext::dataset`] or [`ExperimentContext::common_subset`].
    pub fn results(&self, gpu: Gpu, indices: &[usize]) -> Vec<BenchResult> {
        indices
            .iter()
            .map(|&i| self.bench(gpu)[i].expect("index must be feasible on this GPU"))
            .collect()
    }
}

/// The six source→target GPU pairs of Table 5, in the paper's row order.
pub const TRANSFER_PAIRS: [(Gpu, Gpu); 6] = [
    (Gpu::Pascal, Gpu::Turing),
    (Gpu::Pascal, Gpu::Volta),
    (Gpu::Turing, Gpu::Pascal),
    (Gpu::Turing, Gpu::Volta),
    (Gpu::Volta, Gpu::Pascal),
    (Gpu::Volta, Gpu::Turing),
];

/// Helper shared by Tables 4 and 5: the nine clustering × labeling
/// combinations in the paper's row order.
pub fn nine_algorithms(nc: usize) -> Vec<(crate::semi::ClusterMethod, crate::semi::Labeler)> {
    use crate::semi::{ClusterMethod, Labeler};
    let methods = [
        ClusterMethod::KMeans { nc },
        ClusterMethod::MeanShift,
        ClusterMethod::Birch { nc },
    ];
    let labelers = [
        Labeler::Vote,
        Labeler::LogisticRegression,
        Labeler::RandomForest,
    ];
    methods
        .into_iter()
        .flat_map(|m| labelers.into_iter().map(move |l| (m, l)))
        .collect()
}

/// One row shared by the semi-supervised tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SemiRow {
    /// "K-Means-VOTE" etc.
    pub algorithm: String,
    /// Number of clusters used.
    pub nc: usize,
    /// MCC score.
    pub mcc: f64,
    /// Accuracy.
    pub acc: f64,
    /// Weighted F1.
    pub f1: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_builds_and_partitions() {
        let ctx = ExperimentContext::new(CorpusConfig::small(25, 11));
        assert_eq!(ctx.benches.len(), 3);
        let common = ctx.common_subset();
        for g in Gpu::ALL {
            let ds = ctx.dataset(g);
            assert!(common.len() <= ds.len());
            // results() must not panic on dataset indices.
            let r = ctx.results(g, &ds);
            assert_eq!(r.len(), ds.len());
        }
    }

    #[test]
    fn nine_algorithms_are_nine() {
        assert_eq!(nine_algorithms(10).len(), 9);
    }
}
