//! Ablation studies for the design choices the paper motivates but does
//! not sweep exhaustively:
//!
//! * the log/sqrt feature transform (the paper's key fix — Section 4
//!   reports that naive clustering "does not work well");
//! * the PCA dimensionality (the paper fixes 8);
//! * the number of clusters NC (the paper's accuracy/training-cost
//!   trade-off);
//! * the number of matrices benchmarked per cluster (the paper's Section 4
//!   worked example: one vote vs two votes per cluster).

use super::ExperimentContext;
use crate::semi::{ClusterMethod, Labeler, SemiConfig, SemiSupervisedSelector};
use crate::speedup::selection_quality;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use spsel_features::{FeatureVector, Preprocessor};
use spsel_gpusim::Gpu;
use spsel_matrix::Format;
use spsel_ml::cluster::{cluster_purity, kmeans::KMeans};
use spsel_ml::cv::stratified_kfold;
use spsel_ml::ClusterAlgorithm;

/// Result of the transform ablation: clustering quality with and without
/// the variance-stabilizing transforms.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransformAblation {
    /// Weighted cluster purity with the full pipeline.
    pub purity_with: f64,
    /// Weighted cluster purity with raw (only min-max scaled) features.
    pub purity_without: f64,
    /// Size of the largest cluster with transforms (balance indicator).
    pub max_cluster_with: usize,
    /// Size of the largest cluster without transforms.
    pub max_cluster_without: usize,
    /// Number of clusters requested.
    pub nc: usize,
}

/// Compare clustering purity with and without the log/sqrt transforms
/// (the paper's observation: raw power-law features produce outlier
/// clusters and impure mega-clusters).
pub fn transforms(ctx: &ExperimentContext, gpu: Gpu, nc: usize, seed: u64) -> TransformAblation {
    let ds = ctx.dataset(gpu);
    let features = ctx.features(&ds);
    let labels: Vec<usize> = ctx
        .results(gpu, &ds)
        .map(|rs| rs.iter().map(|r| r.best.index()).collect())
        .unwrap_or_default();
    let rows: Vec<Vec<f64>> = features.iter().map(|f| f.as_slice().to_vec()).collect();

    let run = |pre: &Preprocessor| -> (f64, usize) {
        let embedded: Vec<Vec<f64>> = rows.iter().map(|r| pre.embed_row(r)).collect();
        let clustering = KMeans::new(nc, seed).fit(&embedded);
        let (_, purity) = cluster_purity(&clustering, &labels, Format::COUNT);
        let max_cluster = clustering
            .members()
            .iter()
            .map(|m| m.len())
            .max()
            .unwrap_or(0);
        (purity, max_cluster)
    };

    let with = Preprocessor::fit_rows(&rows, Some(8));
    let without = Preprocessor::fit_without_transforms(&rows, Some(8));
    let (purity_with, max_cluster_with) = run(&with);
    let (purity_without, max_cluster_without) = run(&without);
    TransformAblation {
        purity_with,
        purity_without,
        max_cluster_with,
        max_cluster_without,
        nc,
    }
}

/// One point of the PCA-dimension sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PcaPoint {
    /// Kept components.
    pub dim: usize,
    /// Cross-validated MCC of K-Means-VOTE in that embedding.
    pub mcc: f64,
    /// Cross-validated accuracy.
    pub acc: f64,
    /// Variance fraction captured by the kept components.
    pub explained: f64,
}

/// Sweep the PCA dimensionality (the paper fixes 8).
pub fn pca_sweep(
    ctx: &ExperimentContext,
    gpu: Gpu,
    dims: &[usize],
    nc: usize,
    folds: usize,
    seed: u64,
) -> Vec<PcaPoint> {
    let ds = ctx.dataset(gpu);
    let features = ctx.features(&ds);
    let Ok(results) = ctx.results(gpu, &ds) else {
        return Vec::new(); // dataset indices are feasible by construction
    };
    // Grid points run through the parallel runtime; each derives its work
    // from (dim, seed) alone and fills its own slot, so worker count does
    // not change the sweep.
    dims.par_iter()
        .map(|&dim| {
            let mut cfg = SemiConfig::new(ClusterMethod::KMeans { nc }, Labeler::Vote, seed);
            cfg.pca_dim = dim;
            let q = crate::transfer::local_semi(&features, &results, cfg, folds, seed);
            // Explained variance measured on the full dataset.
            let rows: Vec<Vec<f64>> = features.iter().map(|f| f.as_slice().to_vec()).collect();
            let pre = Preprocessor::fit_rows(&rows, Some(dim));
            let explained = pre.pca().map_or(1.0, |p| p.explained_variance_ratio());
            PcaPoint {
                dim,
                mcc: q.mcc,
                acc: q.acc,
                explained,
            }
        })
        .collect()
}

/// One point of the NC sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NcPoint {
    /// Number of clusters.
    pub nc: usize,
    /// Cross-validated MCC.
    pub mcc: f64,
    /// Cross-validated accuracy.
    pub acc: f64,
    /// Weighted training purity at this NC.
    pub purity: f64,
}

/// Sweep the number of clusters (the paper's accuracy vs training-cost
/// trade-off: more clusters are purer but need more benchmarks).
pub fn nc_sweep(
    ctx: &ExperimentContext,
    gpu: Gpu,
    ncs: &[usize],
    folds: usize,
    seed: u64,
) -> Vec<NcPoint> {
    let ds = ctx.dataset(gpu);
    let features = ctx.features(&ds);
    let Ok(results) = ctx.results(gpu, &ds) else {
        return Vec::new();
    };
    let labels: Vec<usize> = results.iter().map(|r| r.best.index()).collect();
    let rows: Vec<Vec<f64>> = features.iter().map(|f| f.as_slice().to_vec()).collect();
    let pre = Preprocessor::fit_rows(&rows, Some(8));
    let embedded: Vec<Vec<f64>> = rows.iter().map(|r| pre.embed_row(r)).collect();

    ncs.par_iter()
        .map(|&nc| {
            let cfg = SemiConfig::new(ClusterMethod::KMeans { nc }, Labeler::Vote, seed);
            let q = crate::transfer::local_semi(&features, &results, cfg, folds, seed);
            let clustering = KMeans::new(nc, seed).fit(&embedded);
            let (_, purity) = cluster_purity(&clustering, &labels, Format::COUNT);
            NcPoint {
                nc,
                mcc: q.mcc,
                acc: q.acc,
                purity,
            }
        })
        .collect()
}

/// One point of the votes-per-cluster experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VotesPoint {
    /// Matrices benchmarked per cluster.
    pub votes: usize,
    /// Total matrices benchmarked (the porting cost).
    pub benchmarked: usize,
    /// Test accuracy on the target architecture.
    pub acc: f64,
    /// Test MCC.
    pub mcc: f64,
}

/// The paper's Section 4 worked example, measured for real: fit clusters,
/// then label each cluster from only `votes` benchmarked members on the
/// target architecture and evaluate on a held-out fold.
pub fn votes_per_cluster(
    ctx: &ExperimentContext,
    gpu: Gpu,
    votes_options: &[usize],
    nc: usize,
    folds: usize,
    seed: u64,
) -> Vec<VotesPoint> {
    let ds = ctx.dataset(gpu);
    let features = ctx.features(&ds);
    let Ok(results) = ctx.results(gpu, &ds) else {
        return Vec::new();
    };
    let y: Vec<usize> = results.iter().map(|r| r.best.index()).collect();

    votes_options
        .par_iter()
        .map(|&votes| {
            let mut accs = Vec::new();
            let mut mccs = Vec::new();
            let mut benchmarked_total = 0usize;
            for (train, test) in stratified_kfold(&y, Format::COUNT, folds, seed) {
                let train_features: Vec<FeatureVector> =
                    train.iter().map(|&i| features[i].clone()).collect();
                let train_labels: Vec<Format> = train.iter().map(|&i| results[i].best).collect();
                // Fit clusters with *no* labels used beyond the vote subset:
                // fit() needs labels for the initial labeling, so fit with
                // the full set and then overwrite via relabel with only the
                // voted members per cluster.
                let mut sel = SemiSupervisedSelector::fit(
                    &train_features,
                    &train_labels,
                    SemiConfig::new(ClusterMethod::KMeans { nc }, Labeler::Vote, seed),
                );
                let members = sel.clustering().members();
                let mut subset = Vec::new();
                for m in &members {
                    subset.extend(m.iter().take(votes).copied());
                }
                benchmarked_total += subset.len();
                let subset_labels: Vec<Format> = subset.iter().map(|&i| train_labels[i]).collect();
                // Reset labels to the vote-subset-only view.
                sel.relabel(&subset, &subset_labels);

                let test_features: Vec<FeatureVector> =
                    test.iter().map(|&i| features[i].clone()).collect();
                let test_results: Vec<_> = test.iter().map(|&i| results[i]).collect();
                let preds = sel.predict_batch(&test_features);
                let q = selection_quality(&preds, &test_results);
                accs.push(q.acc);
                mccs.push(q.mcc);
            }
            VotesPoint {
                votes,
                benchmarked: benchmarked_total / folds,
                acc: accs.iter().sum::<f64>() / accs.len() as f64,
                mcc: mccs.iter().sum::<f64>() / mccs.len() as f64,
            }
        })
        .collect()
}

/// Render helpers for the ablation binary.
pub fn render_transforms(t: &TransformAblation) -> String {
    format!(
        "transform ablation (K-Means, NC = {}):\n  with log/sqrt:    purity {:.3}, largest cluster {}\n  without:          purity {:.3}, largest cluster {}\n",
        t.nc, t.purity_with, t.max_cluster_with, t.purity_without, t.max_cluster_without
    )
}

/// Render the PCA sweep.
pub fn render_pca(points: &[PcaPoint]) -> String {
    let mut out =
        String::from("PCA dimension sweep (K-Means-VOTE):\n  dim    MCC    ACC  explained\n");
    for p in points {
        out.push_str(&format!(
            "{:>5} {:>6.3} {:>6.3} {:>10.3}\n",
            p.dim, p.mcc, p.acc, p.explained
        ));
    }
    out
}

/// Render the NC sweep.
pub fn render_nc(points: &[NcPoint]) -> String {
    let mut out =
        String::from("cluster count sweep (K-Means-VOTE):\n   NC    MCC    ACC  purity\n");
    for p in points {
        out.push_str(&format!(
            "{:>5} {:>6.3} {:>6.3} {:>7.3}\n",
            p.nc, p.mcc, p.acc, p.purity
        ));
    }
    out
}

/// Render the votes-per-cluster experiment.
pub fn render_votes(points: &[VotesPoint]) -> String {
    let mut out =
        String::from("benchmarks per cluster (K-Means-VOTE, porting cost vs accuracy):\nvotes  benchmarked    ACC    MCC\n");
    for p in points {
        out.push_str(&format!(
            "{:>5} {:>12} {:>6.3} {:>6.3}\n",
            p.votes, p.benchmarked, p.acc, p.mcc
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    fn ctx() -> ExperimentContext {
        ExperimentContext::new(CorpusConfig::small(60, 13))
    }

    #[test]
    fn transform_ablation_runs() {
        let ctx = ctx();
        let t = transforms(&ctx, Gpu::Turing, 12, 3);
        assert!((0.0..=1.0).contains(&t.purity_with));
        assert!((0.0..=1.0).contains(&t.purity_without));
        assert!(t.max_cluster_with > 0);
        assert!(render_transforms(&t).contains("purity"));
    }

    #[test]
    fn pca_sweep_monotone_explained_variance() {
        let ctx = ctx();
        let points = pca_sweep(&ctx, Gpu::Pascal, &[2, 8, 16], 10, 3, 5);
        assert_eq!(points.len(), 3);
        assert!(points[0].explained <= points[1].explained + 1e-9);
        assert!(points[1].explained <= points[2].explained + 1e-9);
        assert!(render_pca(&points).contains("dim"));
    }

    #[test]
    fn nc_sweep_purity_grows_with_clusters() {
        let ctx = ctx();
        let points = nc_sweep(&ctx, Gpu::Volta, &[2, 40], 3, 5);
        assert!(
            points[1].purity >= points[0].purity - 0.02,
            "purity should not fall substantially with more clusters: {points:?}"
        );
        assert!(render_nc(&points).contains("NC"));
    }

    #[test]
    fn more_votes_do_not_hurt() {
        let ctx = ctx();
        let points = votes_per_cluster(&ctx, Gpu::Turing, &[1, 8], 10, 3, 2);
        assert_eq!(points.len(), 2);
        assert!(points[1].benchmarked >= points[0].benchmarked);
        // With more benchmarks per cluster accuracy should not collapse.
        assert!(points[1].acc + 0.05 >= points[0].acc, "{points:?}");
        assert!(render_votes(&points).contains("votes"));
    }
}
