//! Table 2: the GPU hardware specifications.

use serde::Serialize;
use spsel_gpusim::{Gpu, GpuSpec};

/// Table 2 contents.
#[derive(Debug, Clone, Serialize)]
pub struct Table2 {
    /// One spec per GPU in paper column order.
    pub specs: Vec<GpuSpec>,
}

/// Collect the hardware table.
pub fn run() -> Table2 {
    Table2 {
        specs: Gpu::ALL.iter().map(|g| g.spec()).collect(),
    }
}

impl Table2 {
    /// Render in the paper's layout (rows = attributes, columns = GPUs).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let col = |s: &str| format!("{s:>12}");
        out.push_str(&format!("{:<18}", "u-architecture"));
        for s in &self.specs {
            out.push_str(&col(s.gpu.name()));
        }
        out.push('\n');
        out.push_str(&format!("{:<18}", "Model"));
        for s in &self.specs {
            out.push_str(&col(s.model));
        }
        out.push('\n');
        out.push_str(&format!("{:<18}", "# of SMs"));
        for s in &self.specs {
            out.push_str(&col(&s.sms.to_string()));
        }
        out.push('\n');
        out.push_str(&format!("{:<18}", "L1 cache per SM"));
        for s in &self.specs {
            out.push_str(&col(&format!("{} KiB", s.l1_kib)));
        }
        out.push('\n');
        out.push_str(&format!("{:<18}", "L2 cache"));
        for s in &self.specs {
            out.push_str(&col(&format!("{} KiB", s.l2_kib)));
        }
        out.push('\n');
        out.push_str(&format!("{:<18}", "Memory (GB)"));
        for s in &self.specs {
            out.push_str(&col(&s.memory_gb.to_string()));
        }
        out.push('\n');
        out.push_str(&format!("{:<18}", "Memory bandwidth"));
        for s in &self.specs {
            out.push_str(&col(&format!("{} GB/s", s.bandwidth_gbs)));
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_all_three_gpus() {
        let t = super::run();
        let r = t.render();
        for name in [
            "Pascal", "Volta", "Turing", "GTX 1080", "RTX 8000", "897 GB/s",
        ] {
            assert!(r.contains(name), "missing {name} in:\n{r}");
        }
    }
}
