//! Table 7: the supervised classifiers under transfer, five GPU pairs x
//! five tabular models x three retraining budgets (the paper omits the
//! CNN for cost, and the Volta-to-Pascal pair for space).

use super::ExperimentContext;
use crate::share::FitPool;
use crate::speedup::SelectionQuality;
use crate::supervised::{SupervisedConfig, SupervisedModel};
use crate::transfer::{transfer_supervised_budgets, RetrainBudget, TransferInput};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use spsel_gpusim::Gpu;

/// The five transfer pairs of Table 7 in the paper's row order (Volta to
/// Pascal is omitted, as in the paper).
pub const TABLE7_PAIRS: [(Gpu, Gpu); 5] = [
    (Gpu::Turing, Gpu::Volta),
    (Gpu::Pascal, Gpu::Volta),
    (Gpu::Turing, Gpu::Pascal),
    (Gpu::Pascal, Gpu::Turing),
    (Gpu::Volta, Gpu::Turing),
];

/// Configuration of the Table 7 run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table7Config {
    /// Cross-validation folds.
    pub folds: usize,
    /// Seed.
    pub seed: u64,
    /// Use reduced model sizes (tests / smoke runs).
    pub quick: bool,
}

impl Default for Table7Config {
    fn default() -> Self {
        Table7Config {
            folds: 5,
            seed: 37,
            quick: false,
        }
    }
}

/// One row of Table 7: a model under one transfer pair at all budgets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table7Row {
    /// Model name.
    pub model: String,
    /// Quality per budget in `RetrainBudget::ALL` order.
    pub budgets: [SelectionQuality; 3],
}

/// Table 7 contents.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table7 {
    /// `(source, target, rows)` per pair.
    pub pairs: Vec<(Gpu, Gpu, Vec<Table7Row>)>,
}

/// Run the supervised transfer evaluation (pairs whose source or target
/// GPU degraded away are skipped; models whose fit fails are skipped).
///
/// All (model, pair) cells run through the parallel runtime: each cell
/// derives its work from `cfg.seed` alone and fills only its own output
/// slot, so any worker count produces the same table as a serial run.
/// Each cell evaluates its three budgets through
/// [`transfer_supervised_budgets`] — one k-fold split computation per
/// cell, with fits drawn from a shared [`FitPool`] so budgets (or
/// cells) whose training inputs coincide fit once; per-budget outputs
/// are bit-identical to the single-budget protocol.
pub fn run(ctx: &ExperimentContext, cfg: &Table7Config) -> Table7 {
    let pool = FitPool::new();
    let common = ctx.common_subset();
    let features = ctx.features(&common);
    let active = ctx.active_gpus();
    let mut live_pairs = Vec::new();
    for (source, target) in TABLE7_PAIRS {
        if !active.contains(&source) || !active.contains(&target) {
            eprintln!("degradation: skipping transfer {source} to {target} (GPU lost)");
            continue;
        }
        let (Ok(source_results), Ok(target_results)) =
            (ctx.results(source, &common), ctx.results(target, &common))
        else {
            continue; // common subset is feasible on active GPUs
        };
        live_pairs.push((source, target, source_results, target_results));
    }

    let mut cells = Vec::new();
    for p in 0..live_pairs.len() {
        for model in SupervisedModel::TABULAR {
            cells.push((p, model));
        }
    }
    let computed: Vec<(usize, Option<Table7Row>)> = cells
        .into_par_iter()
        .map(|(p, model)| {
            let (_, _, source_results, target_results) = &live_pairs[p];
            let input = TransferInput {
                features: &features,
                images: None,
                source: source_results,
                target: target_results,
            };
            let sup_cfg = if cfg.quick {
                SupervisedConfig::quick(model, cfg.seed)
            } else {
                SupervisedConfig::new(model, cfg.seed)
            };
            let row = match transfer_supervised_budgets(input, sup_cfg, cfg.folds, cfg.seed, &pool)
            {
                Ok(budgets) => Some(Table7Row {
                    model: model.name().to_string(),
                    budgets,
                }),
                Err(e) => {
                    eprintln!("degradation: skipping {} transfer: {e}", model.name());
                    None
                }
            };
            (p, row)
        })
        .collect();

    let mut pairs: Vec<(Gpu, Gpu, Vec<Table7Row>)> = live_pairs
        .iter()
        .map(|&(source, target, ..)| (source, target, Vec::new()))
        .collect();
    for (p, row) in computed {
        if let Some(row) = row {
            pairs[p].2.push(row);
        }
    }
    Table7 { pairs }
}

impl Table7 {
    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<10}", "MLM"));
        for b in RetrainBudget::ALL {
            out.push_str(&format!(
                "|{:>7}{:>6}{:>6}{:>6}{:>6} ",
                format!("ACC-{}", b.label()),
                "F1",
                "MCC",
                "GT",
                "CSR"
            ));
        }
        out.push('\n');
        for (source, target, rows) in &self.pairs {
            out.push_str(&format!("--- {source} to {target} ---\n"));
            for row in rows {
                out.push_str(&format!("{:<10}", row.model));
                for q in &row.budgets {
                    out.push_str(&format!(
                        "|{:>7.2}{:>6.2}{:>6.2}{:>6.2}{:>6.2} ",
                        q.acc * 100.0,
                        q.f1,
                        q.mcc,
                        q.gt,
                        q.csr
                    ));
                }
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    #[test]
    fn small_run_has_five_pairs_of_five_models() {
        let ctx = ExperimentContext::new(CorpusConfig::small(24, 6));
        let cfg = Table7Config {
            folds: 3,
            seed: 2,
            quick: true,
        };
        let t = run(&ctx, &cfg);
        assert_eq!(t.pairs.len(), 5);
        for (_, _, rows) in &t.pairs {
            assert_eq!(rows.len(), 5);
            for row in rows {
                for q in &row.budgets {
                    assert!((0.0..=1.0).contains(&q.acc));
                }
            }
        }
        assert!(t.render().contains("Turing to Volta"));
    }
}
