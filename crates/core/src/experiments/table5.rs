//! Table 5: the semi-supervised approach under transfer, six GPU pairs x
//! nine algorithms x three retraining budgets.

use super::{ExperimentContext, SemiRow, TRANSFER_PAIRS};
use crate::semi::{ClusterMethod, Labeler, SemiConfig};
use crate::transfer::{transfer_semi_budgets, TransferInput};
use serde::{Deserialize, Serialize};
use spsel_gpusim::Gpu;

/// Configuration of the Table 5 run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5Config {
    /// Candidate cluster counts for K-Means and Birch.
    pub nc_candidates: Vec<usize>,
    /// Cross-validation folds.
    pub folds: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for Table5Config {
    fn default() -> Self {
        Table5Config {
            nc_candidates: vec![100, 200, 400],
            folds: 5,
            seed: 23,
        }
    }
}

/// One row of Table 5: an algorithm under one transfer pair, at all three
/// retraining budgets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5Row {
    /// "K-Means-VOTE" etc.
    pub algorithm: String,
    /// Number of clusters used.
    pub nc: usize,
    /// `[mcc, acc, f1]` per budget in `RetrainBudget::ALL` order.
    pub budgets: [[f64; 3]; 3],
}

/// Table 5 contents.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5 {
    /// `(source, target, rows)` per transfer pair.
    pub pairs: Vec<(Gpu, Gpu, Vec<Table5Row>)>,
}

const LABELERS: [Labeler; 3] = [
    Labeler::Vote,
    Labeler::LogisticRegression,
    Labeler::RandomForest,
];

/// Run the transfer evaluation over all six GPU pairs (pairs whose source
/// or target GPU degraded away are skipped).
pub fn run(ctx: &ExperimentContext, cfg: &Table5Config) -> Table5 {
    let common = ctx.common_subset();
    let features = ctx.features(&common);
    let active = ctx.active_gpus();
    let mut pairs = Vec::new();
    for (source, target) in TRANSFER_PAIRS {
        if !active.contains(&source) || !active.contains(&target) {
            eprintln!("degradation: skipping transfer {source} to {target} (GPU lost)");
            continue;
        }
        let (Ok(source_results), Ok(target_results)) =
            (ctx.results(source, &common), ctx.results(target, &common))
        else {
            continue; // common subset is feasible on active GPUs
        };
        let input = TransferInput {
            features: &features,
            images: None,
            source: &source_results,
            target: &target_results,
        };
        // Mean-Shift discovers its own cluster count; measure it once per
        // pair so the NC column is informative.
        let ms_nc = {
            let labels: Vec<_> = source_results.iter().map(|r| r.best).collect();
            crate::semi::SemiSupervisedSelector::fit(
                &features,
                &labels,
                SemiConfig::new(ClusterMethod::MeanShift, Labeler::Vote, cfg.seed),
            )
            .n_clusters()
        };
        let mut rows = Vec::new();
        for base_method in [
            ClusterMethod::KMeans { nc: 0 },
            ClusterMethod::MeanShift,
            ClusterMethod::Birch { nc: 0 },
        ] {
            for labeler in LABELERS {
                let candidates: Vec<usize> = match base_method {
                    ClusterMethod::MeanShift => vec![0],
                    _ => cfg.nc_candidates.clone(),
                };
                let mut best: Option<Table5Row> = None;
                for nc in candidates {
                    let method = match base_method {
                        ClusterMethod::KMeans { .. } => ClusterMethod::KMeans { nc },
                        ClusterMethod::Birch { .. } => ClusterMethod::Birch { nc },
                        ClusterMethod::MeanShift => ClusterMethod::MeanShift,
                    };
                    let semi_cfg = SemiConfig::new(method, labeler, cfg.seed);
                    let qs = transfer_semi_budgets(input, semi_cfg, cfg.folds, cfg.seed);
                    let mut budgets = [[0.0; 3]; 3];
                    for (bi, q) in qs.iter().enumerate() {
                        budgets[bi] = [q.mcc, q.acc, q.f1];
                    }
                    let row = Table5Row {
                        algorithm: format!("{}-{}", method.name(), labeler.name()),
                        nc: if matches!(method, ClusterMethod::MeanShift) {
                            ms_nc
                        } else {
                            nc
                        },
                        budgets,
                    };
                    // Select NC by the 0%-budget MCC (transfer without
                    // target data is the headline scenario).
                    if best
                        .as_ref()
                        .is_none_or(|b| row.budgets[0][0] > b.budgets[0][0])
                    {
                        best = Some(row);
                    }
                }
                if let Some(row) = best {
                    rows.push(row);
                }
            }
        }
        pairs.push((source, target, rows));
    }
    Table5 { pairs }
}

impl Table5 {
    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24}{:>6} |{:>7}{:>7}{:>7} |{:>7}{:>7}{:>7} |{:>7}{:>7}{:>7}\n",
            "Algorithm",
            "NC",
            "MCC-0",
            "ACC-0",
            "F1-0",
            "MCC-25",
            "ACC-25",
            "F1-25",
            "MCC-50",
            "ACC-50",
            "F1-50"
        ));
        for (source, target, rows) in &self.pairs {
            out.push_str(&format!("--- {source} to {target} ---\n"));
            for row in rows {
                out.push_str(&format!("{:<24}{:>6} ", row.algorithm, row.nc));
                for b in 0..3 {
                    out.push_str(&format!(
                        "|{:>7.3}{:>7.3}{:>7.3} ",
                        row.budgets[b][0], row.budgets[b][1], row.budgets[b][2]
                    ));
                }
                out.push('\n');
            }
        }
        out
    }
}

/// Convert a Table 5 row at one budget into a [`SemiRow`] (used by
/// summaries and tests).
pub fn as_semi_row(row: &Table5Row, budget_index: usize) -> SemiRow {
    SemiRow {
        algorithm: row.algorithm.clone(),
        nc: row.nc,
        mcc: row.budgets[budget_index][0],
        acc: row.budgets[budget_index][1],
        f1: row.budgets[budget_index][2],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    #[test]
    fn small_transfer_run() {
        let ctx = ExperimentContext::new(CorpusConfig::small(24, 9));
        let cfg = Table5Config {
            nc_candidates: vec![5],
            folds: 3,
            seed: 2,
        };
        let t = run(&ctx, &cfg);
        assert_eq!(t.pairs.len(), 6);
        for (_, _, rows) in &t.pairs {
            assert_eq!(rows.len(), 9);
        }
        let rendered = t.render();
        assert!(rendered.contains("Pascal to Turing"));
        assert!(rendered.contains("Volta to Turing"));
    }
}
