//! Semi-supervised sparse matrix format selection.
//!
//! This crate is the paper's primary contribution plus the experiment
//! harness around it:
//!
//! * [`corpus`] — a seeded synthetic matrix corpus standing in for the
//!   SuiteSparse collection, with permutation augmentation and per-GPU
//!   ground-truth labels from the `spsel-gpusim` performance model;
//! * [`semi`] — the semi-supervised selector: cluster matrices in the
//!   transformed feature space, then label each cluster with a small
//!   amount of benchmark data (Majority Vote, Logistic Regression, or
//!   Random Forest per cluster);
//! * [`supervised`] — the six supervised baselines (DT, RF, SVM, KNN,
//!   XGBoost, CNN) behind one interface;
//! * [`transfer`] — the cross-architecture transfer protocol with
//!   0 / 25 / 50 % retraining budgets;
//! * [`speedup`] — the paper's GT / CSR / Threshold performance columns;
//! * [`experiments`] — one runner per table of the paper (Tables 2-9 plus
//!   the Section 5.1 worst-case anecdote).

pub mod cache;
pub mod corpus;
pub mod error;
pub mod experiments;
pub mod featsel;
pub mod online;
pub mod overhead;
pub mod regression;
pub mod semi;
pub mod share;
pub mod speedup;
pub mod supervised;
pub mod telemetry;
pub mod transfer;

pub use cache::{Cache, GcConfig, GcReport};
pub use corpus::{Corpus, CorpusConfig, MatrixRecord};
pub use error::{CoreError, CoreResult};
pub use featsel::{greedy_forward_selection, FeatureSelection, SearchModel};
pub use online::{
    ContentionReport, DecisionPhaseNs, OnlineContention, OnlineDecision, OnlineFeedbackView,
    OnlineSelector, OnlineSnapshot, OnlineStateData, OnlineView, ShardedOnlineSelector,
};
pub use overhead::{amortized_best, break_even_iterations, AmortizedChoice};
pub use regression::TimeRegressor;
pub use semi::{ClusterMethod, Labeler, SemiConfig, SemiSupervisedSelector};
pub use speedup::{selection_quality, SelectionQuality};
pub use supervised::{SupervisedConfig, SupervisedModel};
pub use telemetry::{DegradationReport, RunReport};
pub use transfer::{transfer_semi, transfer_semi_budgets, transfer_supervised, RetrainBudget};

/// Class count for a training label set: the paper's 4-class space
/// ([`spsel_matrix::Format::COUNT`]) when every label is one of the CUSP
/// formats — keeping the default registry bit-identical to the historical
/// pipeline — and one past the largest stable format id otherwise. This
/// is derived from data rather than stored in any serialized config so
/// that pre-registry model artifacts keep loading unchanged.
pub fn label_class_count(labels: impl IntoIterator<Item = spsel_matrix::Format>) -> usize {
    labels
        .into_iter()
        .map(|l| l.index() + 1)
        .max()
        .unwrap_or(0)
        .max(spsel_matrix::Format::COUNT)
}
