//! Regression-based format selection: the other family of prior work the
//! paper describes ("the ML models can be either regression or
//! classification based").
//!
//! One ridge regressor per format predicts `log(kernel time)` from the
//! embedded features; selection takes the argmin of the predicted times.
//! Unlike the classifiers this exposes *quantitative* estimates, which is
//! what the overhead-conscious rule in [`crate::overhead`] needs when no
//! benchmark of the new matrix exists.

use crate::overhead::{amortized_best, AmortizedChoice};
use serde::{Deserialize, Serialize};
use spsel_features::{FeatureVector, Preprocessor};
use spsel_gpusim::cost::ConversionCostModel;
use spsel_gpusim::{BenchResult, SpmvTimes};
use spsel_matrix::Format;
use spsel_ml::ridge::RidgeRegression;

/// A per-format kernel-time regressor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeRegressor {
    preprocessor: Preprocessor,
    /// One model per format (Format::ALL order), fitted on log-times.
    models: Vec<RidgeRegression>,
}

impl TimeRegressor {
    /// Fit on benchmarked training matrices. Infeasible (infinite) format
    /// times are skipped for that format's regressor.
    pub fn fit(features: &[FeatureVector], results: &[BenchResult], lambda: f64) -> Self {
        assert_eq!(features.len(), results.len(), "one result per matrix");
        assert!(!features.is_empty(), "cannot fit on empty data");
        let rows: Vec<Vec<f64>> = features.iter().map(|f| f.as_slice().to_vec()).collect();
        let preprocessor = Preprocessor::fit_rows(&rows, Some(8));
        let embedded: Vec<Vec<f64>> = rows.iter().map(|r| preprocessor.embed_row(r)).collect();

        let models = Format::ALL
            .into_iter()
            .map(|f| {
                let mut x = Vec::new();
                let mut y = Vec::new();
                for (z, r) in embedded.iter().zip(results) {
                    let t = r.times.get(f);
                    if t.is_finite() {
                        x.push(z.clone());
                        y.push(t.ln());
                    }
                }
                let mut m = RidgeRegression::new(lambda);
                assert!(!x.is_empty(), "format {f} has no feasible training matrix");
                m.fit(&x, &y);
                m
            })
            .collect();
        TimeRegressor {
            preprocessor,
            models,
        }
    }

    /// Predicted kernel times (microseconds) for one matrix.
    pub fn predict_times(&self, features: &FeatureVector) -> SpmvTimes {
        let z = self.preprocessor.embed(features);
        let mut us = [0.0; 4];
        for f in Format::ALL {
            us[f.index()] = self.models[f.index()].predict_one(&z).exp();
        }
        SpmvTimes { us }
    }

    /// Qualitative selection: the format with the smallest predicted time.
    pub fn predict(&self, features: &FeatureVector) -> Format {
        self.predict_times(features)
            .best()
            .expect("predicted times are finite")
    }

    /// Batch qualitative selection.
    pub fn predict_batch(&self, features: &[FeatureVector]) -> Vec<Format> {
        features.iter().map(|f| self.predict(f)).collect()
    }

    /// Quantitative, overhead-conscious selection for a workload that will
    /// run `iterations` SpMV calls (combines the predicted times with the
    /// conversion-cost model).
    pub fn predict_amortized(
        &self,
        features: &FeatureVector,
        conv: &ConversionCostModel,
        iterations: usize,
    ) -> AmortizedChoice {
        let times = self.predict_times(features);
        amortized_best(&times, conv, iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusConfig};
    use spsel_gpusim::Gpu;

    fn setup() -> (Vec<FeatureVector>, Vec<BenchResult>) {
        let corpus = Corpus::build(CorpusConfig::small(70, 55));
        let bench = corpus.benchmark(Gpu::Volta);
        let usable: Vec<usize> = (0..corpus.len()).filter(|&i| bench[i].is_some()).collect();
        (
            usable
                .iter()
                .map(|&i| corpus.records[i].features.clone())
                .collect(),
            usable.iter().map(|&i| bench[i].unwrap()).collect(),
        )
    }

    #[test]
    fn predicted_times_are_positive_and_ordered_sensibly() {
        let (features, results) = setup();
        let reg = TimeRegressor::fit(&features, &results, 1e-3);
        let mut log_err = 0.0;
        let mut count = 0;
        for (f, r) in features.iter().zip(&results) {
            let pred = reg.predict_times(f);
            for fmt in Format::ALL {
                assert!(pred.get(fmt) > 0.0);
                let truth = r.times.get(fmt);
                if truth.is_finite() {
                    log_err += (pred.get(fmt).ln() - truth.ln()).abs();
                    count += 1;
                }
            }
        }
        // Mean absolute log-error under ln(3): the regressor genuinely
        // tracks kernel times rather than guessing a constant.
        let mean = log_err / count as f64;
        assert!(mean < 1.1, "mean |log error| {mean}");
    }

    #[test]
    fn argmin_selection_beats_chance() {
        let (features, results) = setup();
        let reg = TimeRegressor::fit(&features, &results, 1e-3);
        let preds = reg.predict_batch(&features);
        let correct = preds
            .iter()
            .zip(&results)
            .filter(|(p, r)| **p == r.best)
            .count();
        let acc = correct as f64 / results.len() as f64;
        assert!(acc > 0.5, "regression selector train accuracy {acc}");
    }

    #[test]
    fn amortized_prediction_defaults_to_csr_for_one_shot() {
        let (features, results) = setup();
        let reg = TimeRegressor::fit(&features, &results, 1e-3);
        let conv = ConversionCostModel::default();
        // With a single iteration the conversion can never pay off unless
        // the predicted non-CSR advantage is over 100x.
        let mut csr_choices = 0;
        for f in features.iter().take(20) {
            if reg.predict_amortized(f, &conv, 1).format == Format::Csr {
                csr_choices += 1;
            }
        }
        assert!(
            csr_choices >= 18,
            "only {csr_choices}/20 one-shot choices stayed CSR"
        );
    }
}
