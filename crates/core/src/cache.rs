//! Persistent on-disk cache for corpus construction, GPU benchmarking,
//! and per-table experiment results.
//!
//! Artifacts live under a cache directory (default `results/cache/`), one
//! JSON file per artifact, named by a stable FNV-1a hash of everything
//! that determines the artifact's content:
//!
//! * corpus files — `(CORPUS_VERSION, CorpusConfig)`;
//! * benchmark files — `(CORPUS_VERSION, CorpusConfig, Gpu)`, with every
//!   entry additionally tagged by its record index and record id, which
//!   are re-validated on load;
//! * experiment files — `(EXPERIMENT_VERSION, table name, context digest,
//!   experiment params)`, so a warm rerun of a table binary skips model
//!   training entirely;
//! * model files — trained serving artifacts (see the `spsel-serve`
//!   crate) keyed by the caller's `(artifact version, context digest,
//!   training config)` hash, so a warm `spsel train` rerun is instant.
//!
//! Keys are built by feeding explicit primitive bit patterns through
//! [`KeyWriter`] — integers little-endian, floats via `f64::to_bits` — so
//! key stability never depends on a serializer's float formatting.
//!
//! Any change to the corpus generator or benchmark model must bump
//! [`CORPUS_VERSION`], which invalidates every cached artifact at once;
//! any change to experiment semantics (protocols, models, metrics) must
//! bump [`EXPERIMENT_VERSION`], which invalidates the experiment layer
//! while keeping the more expensive corpus/benchmark artifacts.
//!
//! The cache is strictly best-effort and corruption-tolerant: a missing,
//! truncated, stale, or otherwise unreadable file is a cache miss and the
//! artifact is recomputed; a failed write only warns. Nothing in this
//! module panics on I/O or parse errors. Writes are atomic
//! (write-to-temp, then rename) so a crashed or concurrent run can never
//! leave a half-written artifact that a later run would half-read.
//!
//! Setting `SPSEL_NO_CACHE=1` disables the cache entirely (see
//! [`Cache::from_env`]).

use crate::corpus::{Corpus, CorpusConfig, MatrixRecord};
use crate::telemetry::CacheReport;
use serde::{Deserialize, Serialize};
use spsel_gpusim::{BenchResult, FaultConfig, Gpu};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime};

/// Version of the corpus generator + benchmark model semantics. Bump on
/// any change that alters generated records or benchmark results, so
/// stale cache entries can never be mistaken for current ones.
pub const CORPUS_VERSION: u32 = 1;

/// Version of the experiment semantics (CV protocols, models, metrics).
/// Bump on any change that alters a table's numbers for the same context,
/// so stale experiment results can never be mistaken for current ones.
pub const EXPERIMENT_VERSION: u32 = 1;

/// Environment variable that disables the cache when set to a non-empty
/// value other than `0`.
pub const NO_CACHE_ENV: &str = "SPSEL_NO_CACHE";

/// Default cache directory, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = "results/cache";

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Incremental FNV-1a hasher for cache keys. Callers feed explicit
/// primitive patterns — integers little-endian, strings as length-prefixed
/// UTF-8, floats via [`f64::to_bits`] — so equal inputs always hash to
/// equal keys regardless of how any serializer would format them.
#[derive(Debug, Clone)]
pub struct KeyWriter {
    h: u64,
}

impl Default for KeyWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl KeyWriter {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        KeyWriter {
            h: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Feed raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= b as u64;
            self.h = self.h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Feed a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Feed a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    /// Feed a `usize` (widened to `u64` so keys match across platforms).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Feed a boolean as one byte.
    pub fn bool(&mut self, v: bool) {
        self.bytes(&[v as u8]);
    }

    /// Feed an `f64` as its exact IEEE-754 bit pattern: key stability is
    /// independent of float formatting, and distinct values (including
    /// `-0.0` vs `0.0`) hash distinctly.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Feed a string, length-prefixed so `("ab", "c")` ≠ `("a", "bc")`.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes(s.as_bytes());
    }

    /// Feed every field of a corpus config (`size_scale` via `to_bits`).
    pub fn corpus_config(&mut self, cfg: &CorpusConfig) {
        self.usize(cfg.n_base);
        self.usize(cfg.augment_copies);
        self.u64(cfg.seed);
        self.bool(cfg.with_images);
        self.usize(cfg.image_resolution);
        self.f64(cfg.size_scale);
    }

    /// Final hash value.
    pub fn finish(&self) -> u64 {
        self.h
    }

    /// Final hash, formatted as the 16-hex-digit artifact-name key.
    pub fn finish_hex(&self) -> String {
        format!("{:016x}", self.h)
    }
}

#[derive(Serialize, Deserialize)]
struct CorpusFile {
    version: u32,
    config: CorpusConfig,
    records: Vec<MatrixRecord>,
}

#[derive(Serialize, Deserialize)]
struct BenchEntry {
    index: usize,
    id: u64,
    result: Option<BenchResult>,
}

#[derive(Serialize, Deserialize)]
struct BenchFile {
    version: u32,
    config: CorpusConfig,
    gpu: String,
    entries: Vec<BenchEntry>,
}

/// One cached experiment result. The payload is the table's result struct
/// re-encoded as a JSON string so this envelope stays non-generic; the
/// envelope fields are re-validated on load (hashes can collide and files
/// can be renamed by hand).
#[derive(Serialize, Deserialize)]
struct ExperimentFile {
    experiment_version: u32,
    table: String,
    /// Hex digest of the experiment context (corpus + benches).
    context: String,
    /// Canonical JSON of the experiment params.
    params: String,
    /// JSON of the result value.
    payload: String,
}

/// One cached trained model artifact. The payload is the artifact's own
/// JSON (already versioned and self-describing); the envelope pins the
/// artifact version and full key so a renamed or colliding file can never
/// satisfy the wrong training request.
#[derive(Serialize, Deserialize)]
struct ModelFile {
    artifact_version: u32,
    /// Hex of the caller's full model key.
    key: String,
    /// JSON of the model artifact.
    payload: String,
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    corrupt: AtomicU64,
    corruption_injected: AtomicU64,
    experiment_hits: AtomicU64,
    experiment_misses: AtomicU64,
    experiment_stores: AtomicU64,
    model_hits: AtomicU64,
    model_misses: AtomicU64,
    model_stores: AtomicU64,
}

/// Handle to the on-disk cache. Cheap to clone; clones share counters.
#[derive(Clone)]
pub struct Cache {
    root: Option<PathBuf>,
    counters: Arc<Counters>,
    faults: FaultConfig,
}

impl Cache {
    /// Cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Cache {
            root: Some(dir.into()),
            counters: Arc::new(Counters::default()),
            faults: FaultConfig::off(),
        }
    }

    /// A disabled cache: every load misses, every store is a no-op.
    pub fn disabled() -> Self {
        Cache {
            root: None,
            counters: Arc::new(Counters::default()),
            faults: FaultConfig::off(),
        }
    }

    /// Enable fault injection on artifact writes: stores roll a
    /// cache-corruption fault and may be deterministically truncated,
    /// exercising the corruption-tolerant read path.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Cache-artifact corruptions injected on write so far.
    pub fn corruption_injected(&self) -> u64 {
        self.counters.corruption_injected.load(Ordering::Relaxed)
    }

    /// Default cache honoring [`NO_CACHE_ENV`]: disabled when the
    /// variable is set to a non-empty value other than `0`, otherwise
    /// rooted at `dir`.
    pub fn from_env(dir: impl Into<PathBuf>) -> Self {
        match std::env::var(NO_CACHE_ENV) {
            Ok(v) if !v.is_empty() && v != "0" => Cache::disabled(),
            _ => Cache::new(dir),
        }
    }

    /// Touch an artifact's mtime so GC sees it as recently used.
    fn touch(path: &Path) {
        if let Ok(f) = std::fs::File::options().append(true).open(path) {
            let _ = f.set_modified(SystemTime::now());
        }
    }

    /// Whether loads and stores touch the disk at all.
    pub fn enabled(&self) -> bool {
        self.root.is_some()
    }

    /// The cache directory, when enabled.
    pub fn dir(&self) -> Option<&Path> {
        self.root.as_deref()
    }

    /// Snapshot of the hit/miss/store counters for the run report.
    pub fn report(&self) -> CacheReport {
        CacheReport {
            enabled: self.enabled(),
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            stores: self.counters.stores.load(Ordering::Relaxed),
            corrupt: self.counters.corrupt.load(Ordering::Relaxed),
            experiment_hits: self.counters.experiment_hits.load(Ordering::Relaxed),
            experiment_misses: self.counters.experiment_misses.load(Ordering::Relaxed),
            experiment_stores: self.counters.experiment_stores.load(Ordering::Relaxed),
            model_hits: self.counters.model_hits.load(Ordering::Relaxed),
            model_misses: self.counters.model_misses.load(Ordering::Relaxed),
            model_stores: self.counters.model_stores.load(Ordering::Relaxed),
        }
    }

    /// Path of the corpus artifact for `cfg`.
    pub fn corpus_path(&self, cfg: &CorpusConfig) -> Option<PathBuf> {
        let mut w = KeyWriter::new();
        w.u32(CORPUS_VERSION);
        w.corpus_config(cfg);
        let key = w.finish_hex();
        self.root
            .as_ref()
            .map(|r| r.join(format!("corpus-{key}.json")))
    }

    /// Path of the benchmark artifact for `(cfg, gpu)`.
    pub fn bench_path(&self, cfg: &CorpusConfig, gpu: Gpu) -> Option<PathBuf> {
        let mut w = KeyWriter::new();
        w.u32(CORPUS_VERSION);
        w.corpus_config(cfg);
        w.str(gpu.name());
        let key = w.finish_hex();
        self.root
            .as_ref()
            .map(|r| r.join(format!("bench-{key}.json")))
    }

    /// Path of the experiment artifact for `(table, context digest,
    /// params)`. `params` is hashed via its canonical JSON encoding.
    pub fn experiment_path<P: Serialize>(
        &self,
        table: &str,
        context_digest: u64,
        params: &P,
    ) -> Option<PathBuf> {
        let params_json = serde_json::to_string(params).expect("experiment params serialize");
        let mut w = KeyWriter::new();
        w.u32(EXPERIMENT_VERSION);
        w.str(table);
        w.u64(context_digest);
        w.str(&params_json);
        let key = w.finish_hex();
        self.root
            .as_ref()
            .map(|r| r.join(format!("experiment-{key}.json")))
    }

    fn hit(&self) {
        self.counters.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn miss(&self) {
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Count an unreadable artifact: a miss, plus the corruption tally
    /// the degradation report surfaces.
    fn corrupt_miss(&self, path: &Path) {
        self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
        self.miss();
        eprintln!("cache: corrupt artifact {} (recomputing)", path.display());
    }

    /// Load a cached corpus for `cfg`, if a valid artifact exists.
    pub fn load_corpus(&self, cfg: &CorpusConfig) -> Option<Corpus> {
        let path = self.corpus_path(cfg)?;
        let loaded = match read_json::<CorpusFile>(&path) {
            ReadOutcome::Corrupt => {
                self.corrupt_miss(&path);
                return None;
            }
            ReadOutcome::Missing => None,
            // The hash already encodes version + config, but re-validate:
            // hashes can collide and files can be renamed by hand.
            ReadOutcome::Ok(file) => {
                if file.version == CORPUS_VERSION && &file.config == cfg {
                    Some(Corpus::from_parts(file.records, file.config))
                } else {
                    None
                }
            }
        };
        match loaded {
            Some(c) => {
                self.hit();
                Self::touch(&path);
                Some(c)
            }
            None => {
                self.miss();
                None
            }
        }
    }

    /// Persist a corpus (best-effort).
    pub fn store_corpus(&self, corpus: &Corpus) {
        let Some(path) = self.corpus_path(corpus.config()) else {
            return;
        };
        let file = CorpusFile {
            version: CORPUS_VERSION,
            config: corpus.config().clone(),
            records: corpus.records.clone(),
        };
        if write_json_atomic(&path, &file, self.store_corruption(&path)) {
            self.counters.stores.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Roll the cache-corruption fault for one artifact write. Returns the
    /// truncation fraction when the write should be damaged.
    fn store_corruption(&self, path: &Path) -> Option<f64> {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let frac = self.faults.corrupt_artifact(fnv1a(name.as_bytes()))?;
        self.counters
            .corruption_injected
            .fetch_add(1, Ordering::Relaxed);
        Some(frac)
    }

    /// Load cached benchmark results for `(cfg, gpu)`, validating every
    /// entry against the records it claims to describe.
    pub fn load_bench(
        &self,
        cfg: &CorpusConfig,
        gpu: Gpu,
        records: &[MatrixRecord],
    ) -> Option<Vec<Option<BenchResult>>> {
        let path = self.bench_path(cfg, gpu)?;
        let loaded = match read_json::<BenchFile>(&path) {
            ReadOutcome::Corrupt => {
                self.corrupt_miss(&path);
                return None;
            }
            ReadOutcome::Missing => None,
            ReadOutcome::Ok(file) => {
                let valid = file.version == CORPUS_VERSION
                    && &file.config == cfg
                    && file.gpu == gpu.name()
                    && file.entries.len() == records.len()
                    && file
                        .entries
                        .iter()
                        .enumerate()
                        .all(|(i, e)| e.index == i && e.id == records[i].id);
                if valid {
                    Some(file.entries.into_iter().map(|e| e.result).collect())
                } else {
                    None
                }
            }
        };
        match loaded {
            Some(r) => {
                self.hit();
                Self::touch(&path);
                Some(r)
            }
            None => {
                self.miss();
                None
            }
        }
    }

    /// Persist benchmark results (best-effort).
    pub fn store_bench(
        &self,
        cfg: &CorpusConfig,
        gpu: Gpu,
        records: &[MatrixRecord],
        results: &[Option<BenchResult>],
    ) {
        let Some(path) = self.bench_path(cfg, gpu) else {
            return;
        };
        debug_assert_eq!(records.len(), results.len());
        let file = BenchFile {
            version: CORPUS_VERSION,
            config: cfg.clone(),
            gpu: gpu.name().to_string(),
            entries: records
                .iter()
                .zip(results)
                .enumerate()
                .map(|(index, (r, result))| BenchEntry {
                    index,
                    id: r.id,
                    result: *result,
                })
                .collect(),
        };
        if write_json_atomic(&path, &file, self.store_corruption(&path)) {
            self.counters.stores.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Load a cached experiment result for `(table, context digest,
    /// params)`, if a valid artifact exists. A hit means the warm rerun
    /// skips the experiment's training/CV phase entirely.
    pub fn load_experiment<T: Deserialize, P: Serialize>(
        &self,
        table: &str,
        context_digest: u64,
        params: &P,
    ) -> Option<T> {
        let path = self.experiment_path(table, context_digest, params)?;
        let params_json = serde_json::to_string(params).expect("experiment params serialize");
        let context = format!("{context_digest:016x}");
        let loaded = match read_json::<ExperimentFile>(&path) {
            ReadOutcome::Corrupt => {
                self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
                self.experiment_miss();
                eprintln!("cache: corrupt artifact {} (recomputing)", path.display());
                return None;
            }
            ReadOutcome::Missing => None,
            ReadOutcome::Ok(file) => {
                let valid = file.experiment_version == EXPERIMENT_VERSION
                    && file.table == table
                    && file.context == context
                    && file.params == params_json;
                if valid {
                    serde_json::from_str::<T>(&file.payload).ok()
                } else {
                    None
                }
            }
        };
        match loaded {
            Some(v) => {
                self.counters
                    .experiment_hits
                    .fetch_add(1, Ordering::Relaxed);
                Self::touch(&path);
                Some(v)
            }
            None => {
                self.experiment_miss();
                None
            }
        }
    }

    fn experiment_miss(&self) {
        self.counters
            .experiment_misses
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Persist an experiment result (best-effort).
    pub fn store_experiment<T: Serialize, P: Serialize>(
        &self,
        table: &str,
        context_digest: u64,
        params: &P,
        value: &T,
    ) {
        let Some(path) = self.experiment_path(table, context_digest, params) else {
            return;
        };
        let file = ExperimentFile {
            experiment_version: EXPERIMENT_VERSION,
            table: table.to_string(),
            context: format!("{context_digest:016x}"),
            params: serde_json::to_string(params).expect("experiment params serialize"),
            payload: serde_json::to_string(value).expect("experiment result serializes"),
        };
        if write_json_atomic(&path, &file, self.store_corruption(&path)) {
            self.counters
                .experiment_stores
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Path of the model artifact for `(artifact_version, key)`. The key
    /// is built by the caller (via [`KeyWriter`]) over everything that
    /// determines the trained model: corpus/context digest and training
    /// configuration.
    pub fn model_path(&self, artifact_version: u32, key: u64) -> Option<PathBuf> {
        let mut w = KeyWriter::new();
        w.u32(artifact_version);
        w.u64(key);
        let name = w.finish_hex();
        self.root
            .as_ref()
            .map(|r| r.join(format!("model-{name}.json")))
    }

    /// Load cached trained-model bytes for `(artifact_version, key)`, if a
    /// valid entry exists. A hit means a warm `spsel train` rerun skips
    /// training entirely.
    pub fn load_model(&self, artifact_version: u32, key: u64) -> Option<String> {
        let path = self.model_path(artifact_version, key)?;
        let key_hex = format!("{key:016x}");
        let loaded = match read_json::<ModelFile>(&path) {
            ReadOutcome::Corrupt => {
                self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
                self.model_miss();
                eprintln!("cache: corrupt artifact {} (recomputing)", path.display());
                return None;
            }
            ReadOutcome::Missing => None,
            ReadOutcome::Ok(file) => {
                if file.artifact_version == artifact_version && file.key == key_hex {
                    Some(file.payload)
                } else {
                    None
                }
            }
        };
        match loaded {
            Some(payload) => {
                self.counters.model_hits.fetch_add(1, Ordering::Relaxed);
                Self::touch(&path);
                Some(payload)
            }
            None => {
                self.model_miss();
                None
            }
        }
    }

    fn model_miss(&self) {
        self.counters.model_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Persist trained-model bytes (best-effort). `payload` is the model
    /// artifact's own JSON encoding.
    pub fn store_model(&self, artifact_version: u32, key: u64, payload: &str) {
        let Some(path) = self.model_path(artifact_version, key) else {
            return;
        };
        let file = ModelFile {
            artifact_version,
            key: format!("{key:016x}"),
            payload: payload.to_string(),
        };
        if write_json_atomic(&path, &file, self.store_corruption(&path)) {
            self.counters.model_stores.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Garbage-collect the cache directory: evict artifacts older than
    /// `max_age`, then evict oldest-first until the directory fits in
    /// `max_bytes`. A disabled cache GC is a no-op. Artifacts touched on
    /// every hit, so live entries stay young.
    pub fn gc(&self, cfg: &GcConfig) -> GcReport {
        let mut report = GcReport::default();
        let Some(root) = self.root.as_deref() else {
            return report;
        };
        let Ok(entries) = std::fs::read_dir(root) else {
            return report;
        };
        let now = SystemTime::now();
        // (mtime, size, path) for every artifact, oldest first.
        let mut files: Vec<(SystemTime, u64, PathBuf)> = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            // Only artifacts; leave stray temp files and foreign files.
            if !name.ends_with(".json") || name.starts_with('.') {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            let mtime = meta.modified().unwrap_or(now);
            files.push((mtime, meta.len(), path));
        }
        files.sort_by_key(|(mtime, _, _)| *mtime);
        report.scanned = files.len();
        let mut kept_bytes: u64 = files.iter().map(|(_, len, _)| len).sum();
        for (i, (mtime, len, path)) in files.iter().enumerate() {
            let expired = now
                .duration_since(*mtime)
                .map(|age| age > cfg.max_age)
                .unwrap_or(false);
            // Oldest-first: everything after this entry is younger, so
            // once the directory fits, the rest survives.
            let oversized = kept_bytes > cfg.max_bytes;
            if !expired && !oversized {
                report.bytes_kept = kept_bytes;
                report.kept = files.len() - i;
                return report;
            }
            if std::fs::remove_file(path).is_ok() {
                report.evicted += 1;
                report.bytes_evicted += len;
                kept_bytes -= len;
            }
        }
        report.bytes_kept = kept_bytes;
        report
    }
}

/// Limits for [`Cache::gc`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcConfig {
    /// Evict oldest artifacts until the directory is at most this large.
    pub max_bytes: u64,
    /// Evict artifacts not read or written for longer than this.
    pub max_age: Duration,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            max_bytes: 256 * 1024 * 1024,
            max_age: Duration::from_secs(7 * 24 * 3600),
        }
    }
}

/// What one GC pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Artifacts examined.
    pub scanned: usize,
    /// Artifacts kept.
    pub kept: usize,
    /// Artifacts deleted.
    pub evicted: usize,
    /// Bytes reclaimed.
    pub bytes_evicted: u64,
    /// Bytes remaining in the directory.
    pub bytes_kept: u64,
}

enum ReadOutcome<T> {
    /// No file (or unreadable directory entry): a plain miss.
    Missing,
    /// The file exists but does not parse: a damaged artifact.
    Corrupt,
    /// Parsed successfully (may still fail semantic validation).
    Ok(T),
}

/// Read + parse, distinguishing an absent artifact from a damaged one.
fn read_json<T: Deserialize>(path: &Path) -> ReadOutcome<T> {
    let Ok(bytes) = std::fs::read(path) else {
        return ReadOutcome::Missing;
    };
    match serde_json::from_slice(&bytes) {
        Ok(v) => ReadOutcome::Ok(v),
        Err(_) => ReadOutcome::Corrupt,
    }
}

/// Atomic best-effort write: serialize, write to a unique temp file in
/// the same directory, rename over the destination. Returns success.
/// `corrupt_frac` simulates a torn write for fault injection: the payload
/// is truncated to that fraction of its bytes before hitting disk.
fn write_json_atomic<T: Serialize>(path: &Path, value: &T, corrupt_frac: Option<f64>) -> bool {
    let mut json = serde_json::to_vec(value).expect("cache artifact serializes");
    if let Some(frac) = corrupt_frac {
        let keep = ((json.len() as f64) * frac) as usize;
        json.truncate(keep.max(1));
    }
    let Some(parent) = path.parent() else {
        return false;
    };
    if std::fs::create_dir_all(parent).is_err() {
        eprintln!("cache: cannot create {}", parent.display());
        return false;
    }
    let tmp = parent.join(format!(
        ".{}.tmp.{}",
        path.file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("artifact"),
        std::process::id()
    ));
    if let Err(e) = std::fs::write(&tmp, &json) {
        eprintln!("cache: write {} failed: {e}", tmp.display());
        return false;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        eprintln!("cache: rename to {} failed: {e}", path.display());
        let _ = std::fs::remove_file(&tmp);
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_and_distinguish_inputs() {
        let a = CorpusConfig::small(10, 1);
        let b = CorpusConfig::small(10, 2);
        let cache = Cache::new("/tmp/unused");
        assert_eq!(cache.corpus_path(&a), cache.corpus_path(&a));
        assert_ne!(cache.corpus_path(&a), cache.corpus_path(&b));
        assert_ne!(
            cache.bench_path(&a, Gpu::Pascal),
            cache.bench_path(&a, Gpu::Volta)
        );
    }

    #[test]
    fn disabled_cache_never_touches_disk() {
        let cache = Cache::disabled();
        let cfg = CorpusConfig::small(4, 1);
        assert!(!cache.enabled());
        assert!(cache.corpus_path(&cfg).is_none());
        assert!(cache.load_corpus(&cfg).is_none());
        let report = cache.report();
        assert!(!report.enabled);
        // A disabled load is not a miss: the cache was never consulted.
        assert_eq!((report.hits, report.misses, report.stores), (0, 0, 0));
        assert!(cache.experiment_path("t", 1, &0u32).is_none());
        assert!(cache.load_experiment::<u32, _>("t", 1, &0u32).is_none());
        assert_eq!(cache.report().experiment_misses, 0);
    }

    #[test]
    fn key_writer_hashes_float_bit_patterns() {
        // Keys must separate values that print identically under some
        // formatters and must be exactly reproducible.
        let mut a = KeyWriter::new();
        a.f64(0.0);
        let mut b = KeyWriter::new();
        b.f64(-0.0);
        assert_ne!(a.finish(), b.finish());

        let mut c = KeyWriter::new();
        c.f64(0.1 + 0.2);
        let mut d = KeyWriter::new();
        d.f64(0.3);
        assert_ne!(c.finish(), d.finish(), "ulp-distinct floats must differ");

        // Length-prefixed strings: no concatenation ambiguity.
        let mut e = KeyWriter::new();
        e.str("ab");
        e.str("c");
        let mut f = KeyWriter::new();
        f.str("a");
        f.str("bc");
        assert_ne!(e.finish(), f.finish());

        // size_scale reaches the corpus key as a bit pattern.
        let mut base = CorpusConfig::small(10, 1);
        let cache = Cache::new("/tmp/unused");
        let p1 = cache.corpus_path(&base);
        base.size_scale = f64::from_bits(base.size_scale.to_bits() + 1);
        assert_ne!(p1, cache.corpus_path(&base));
    }

    #[test]
    fn experiment_cache_round_trips_and_validates() {
        let dir = std::env::temp_dir().join(format!("spsel-expcache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Cache::new(&dir);

        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Params {
            folds: usize,
            seed: u64,
        }
        let params = Params { folds: 5, seed: 17 };
        let value: Vec<f64> = vec![0.25, -0.0, 1.5e-300];

        // Cold: miss, then store.
        assert!(cache
            .load_experiment::<Vec<f64>, _>("table4", 0xAB, &params)
            .is_none());
        cache.store_experiment("table4", 0xAB, &params, &value);
        let r = cache.report();
        assert_eq!(
            (r.experiment_hits, r.experiment_misses, r.experiment_stores),
            (0, 1, 1)
        );

        // Warm: exact payload back, counted as an experiment hit.
        let back: Vec<f64> = cache
            .load_experiment("table4", 0xAB, &params)
            .expect("warm hit");
        assert_eq!(back.len(), value.len());
        for (a, b) in back.iter().zip(&value) {
            assert_eq!(a.to_bits(), b.to_bits(), "payload must round-trip bitwise");
        }
        assert_eq!(cache.report().experiment_hits, 1);

        // Different table, digest, or params: separate entries, misses.
        assert!(cache
            .load_experiment::<Vec<f64>, _>("table6", 0xAB, &params)
            .is_none());
        assert!(cache
            .load_experiment::<Vec<f64>, _>("table4", 0xAC, &params)
            .is_none());
        assert!(cache
            .load_experiment::<Vec<f64>, _>("table4", 0xAB, &Params { folds: 3, seed: 17 })
            .is_none());

        // Experiment artifacts ride the standard GC.
        let gc = cache.gc(&GcConfig {
            max_bytes: 0,
            max_age: Duration::from_secs(0),
        });
        assert_eq!(gc.scanned, 1);
        assert_eq!(gc.evicted, 1);
        assert!(cache
            .load_experiment::<Vec<f64>, _>("table4", 0xAB, &params)
            .is_none());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn model_cache_round_trips_and_validates() {
        let dir = std::env::temp_dir().join(format!("spsel-modelcache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Cache::new(&dir);
        let payload = r#"{"artifact_version":1,"gpus":[]}"#;

        // Cold: miss, then store.
        assert!(cache.load_model(1, 0xBEEF).is_none());
        cache.store_model(1, 0xBEEF, payload);
        let r = cache.report();
        assert_eq!((r.model_hits, r.model_misses, r.model_stores), (0, 1, 1));

        // Warm: exact bytes back, counted as a model hit.
        assert_eq!(cache.load_model(1, 0xBEEF).as_deref(), Some(payload));
        assert_eq!(cache.report().model_hits, 1);

        // A different key or artifact version is a separate entry.
        assert!(cache.load_model(1, 0xBEF0).is_none());
        assert!(cache.load_model(2, 0xBEEF).is_none());

        // Model artifacts ride the standard GC.
        let gc = cache.gc(&GcConfig {
            max_bytes: 0,
            max_age: Duration::from_secs(0),
        });
        assert_eq!(gc.scanned, 1);
        assert_eq!(gc.evicted, 1);
        assert!(cache.load_model(1, 0xBEEF).is_none());

        // Disabled cache: never consulted, never counted.
        let off = Cache::disabled();
        assert!(off.model_path(1, 1).is_none());
        assert!(off.load_model(1, 1).is_none());
        assert_eq!(off.report().model_misses, 0);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
