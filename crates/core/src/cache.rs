//! Persistent on-disk cache for corpus construction, GPU benchmarking,
//! and per-table experiment results.
//!
//! Artifacts live under a cache directory (default `results/cache/`), one
//! JSON file per artifact, named by a stable FNV-1a hash of everything
//! that determines the artifact's content:
//!
//! * record shards (`rshard-<family>-<shard>.json`) — a fixed-size run of
//!   [`SHARD_RECORDS`] generator candidates (matrix stats, features,
//!   images), keyed by `(CORPUS_VERSION, RECORD_VERSION, generator
//!   params)`. The family key deliberately excludes `n_base`: two corpus
//!   configs that differ only in size share every shard they overlap on,
//!   so `--base 1929` reuses the records of a `--base 2000` run
//!   record-for-record instead of regenerating the world;
//! * benchmark shards (`bshard-<family>-<shard>-<axes>.json`) — the
//!   benchmark cell of every record in one record shard on one GPU, the
//!   axes hash covering `(gpu, fault config, workload set)`. Cell ids are
//!   re-validated against the record shard on load;
//! * growth shards (`gshard-<family>-<shard>.json`) — serve-time matrices
//!   promoted into the corpus by `spsel corpus ingest`: each entry is a
//!   full record plus its benchmark cells on every GPU, appended without
//!   ever rewriting an existing shard (see [`Cache::append_growth`]);
//! * experiment files — `(EXPERIMENT_VERSION, table name, context digest,
//!   experiment params)`, so a warm rerun of a table binary skips model
//!   training entirely;
//! * model files — trained serving artifacts (see the `spsel-serve`
//!   crate) keyed by the caller's `(artifact version, context digest,
//!   training config)` hash, so a warm `spsel train` rerun is instant.
//!
//! Keys are built by feeding explicit primitive bit patterns through
//! [`KeyWriter`] — integers little-endian, floats via `f64::to_bits` — so
//! key stability never depends on a serializer's float formatting.
//!
//! Any change to the corpus generator or benchmark model must bump
//! [`CORPUS_VERSION`], which invalidates every cached artifact at once;
//! a change to the record/shard encoding alone bumps [`RECORD_VERSION`];
//! any change to experiment semantics (protocols, models, metrics) must
//! bump [`EXPERIMENT_VERSION`], which invalidates the experiment layer
//! while keeping the more expensive corpus/benchmark artifacts.
//!
//! Monolithic v1 artifacts (`corpus-<hash>.json` / `bench-<hash>.json`)
//! are not converted: the sharded layout ignores them and [`Cache::gc`]
//! evicts them unconditionally.
//!
//! The cache is strictly best-effort and corruption-tolerant: a missing,
//! truncated, stale, or otherwise unreadable file is a cache miss and the
//! artifact is recomputed; a failed write only warns. Nothing in this
//! module panics on I/O or parse errors. Writes are atomic
//! (write-to-temp, then rename) so a crashed or concurrent run can never
//! leave a half-written artifact that a later run would half-read.
//!
//! Setting `SPSEL_NO_CACHE=1` disables the cache entirely (see
//! [`Cache::from_env`]).

use crate::corpus::{CorpusConfig, MatrixRecord};
use crate::telemetry::CacheReport;
use serde::{Deserialize, Serialize};
use spsel_gpusim::{BenchResult, FaultConfig, Gpu};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime};

/// Version of the corpus generator + benchmark model semantics. Bump on
/// any change that alters generated records or benchmark results, so
/// stale cache entries can never be mistaken for current ones.
///
/// v2: record ids became `n_base`-independent (`(copy << 32) | base`)
/// so benchmark cells are shareable across corpus sizes.
pub const CORPUS_VERSION: u32 = 2;

/// Version of the per-record shard encoding. Bump on any change to the
/// shard file layout or record key schema that leaves generator and
/// benchmark semantics untouched.
pub const RECORD_VERSION: u32 = 1;

/// Generator candidates per record shard. Shards are generated and
/// benchmarked whole — cheap overgeneration past `n_base` buys maximal
/// sharing between overlapping corpus sizes — and the fixed size keeps
/// file counts sane (a paper-scale corpus is ~32 shards, not ~2000
/// per-record files).
pub const SHARD_RECORDS: usize = 64;

/// Fault axis of cached benchmark cells. Fault-injected runs bypass the
/// cache in both directions, so only the fault-free axis is ever stored.
pub const BENCH_FAULT_AXIS: &str = "off";

/// Workload set the cached benchmark cells cover (the label tables
/// benchmarked per record; see `spsel_gpusim::benchmark_corpus`).
pub const BENCH_WORKLOAD_AXIS: &str = "spmv";

/// Version of the experiment semantics (CV protocols, models, metrics).
/// Bump on any change that alters a table's numbers for the same context,
/// so stale experiment results can never be mistaken for current ones.
pub const EXPERIMENT_VERSION: u32 = 1;

/// Environment variable that disables the cache when set to a non-empty
/// value other than `0`.
pub const NO_CACHE_ENV: &str = "SPSEL_NO_CACHE";

/// Default cache directory, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = "results/cache";

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Incremental FNV-1a hasher for cache keys. Callers feed explicit
/// primitive patterns — integers little-endian, strings as length-prefixed
/// UTF-8, floats via [`f64::to_bits`] — so equal inputs always hash to
/// equal keys regardless of how any serializer would format them.
#[derive(Debug, Clone)]
pub struct KeyWriter {
    h: u64,
}

impl Default for KeyWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl KeyWriter {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        KeyWriter {
            h: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Feed raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= b as u64;
            self.h = self.h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Feed a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Feed a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    /// Feed a `usize` (widened to `u64` so keys match across platforms).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Feed a boolean as one byte.
    pub fn bool(&mut self, v: bool) {
        self.bytes(&[v as u8]);
    }

    /// Feed an `f64` as its exact IEEE-754 bit pattern: key stability is
    /// independent of float formatting, and distinct values (including
    /// `-0.0` vs `0.0`) hash distinctly.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Feed a string, length-prefixed so `("ab", "c")` ≠ `("a", "bc")`.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes(s.as_bytes());
    }

    /// Feed every field of a corpus config (`size_scale` via `to_bits`).
    pub fn corpus_config(&mut self, cfg: &CorpusConfig) {
        self.usize(cfg.n_base);
        self.usize(cfg.augment_copies);
        self.u64(cfg.seed);
        self.bool(cfg.with_images);
        self.usize(cfg.image_resolution);
        self.f64(cfg.size_scale);
    }

    /// Final hash value.
    pub fn finish(&self) -> u64 {
        self.h
    }

    /// Final hash, formatted as the 16-hex-digit artifact-name key.
    pub fn finish_hex(&self) -> String {
        format!("{:016x}", self.h)
    }
}

/// Generator parameters a shard belongs to: everything in a
/// [`CorpusConfig`] *except* `n_base`, so configs that differ only in
/// corpus size hash to the same shard family. Stored in every shard file
/// and re-validated on load (hashes can collide and files can be renamed
/// by hand).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ShardFamily {
    augment_copies: usize,
    seed: u64,
    with_images: bool,
    image_resolution: usize,
    size_scale: f64,
}

impl ShardFamily {
    fn of(cfg: &CorpusConfig) -> Self {
        ShardFamily {
            augment_copies: cfg.augment_copies,
            seed: cfg.seed,
            with_images: cfg.with_images,
            image_resolution: cfg.image_resolution,
            size_scale: cfg.size_scale,
        }
    }

    fn key_hex(&self) -> String {
        let mut w = KeyWriter::new();
        w.u32(CORPUS_VERSION);
        w.u32(RECORD_VERSION);
        w.usize(self.augment_copies);
        w.u64(self.seed);
        w.bool(self.with_images);
        w.usize(self.image_resolution);
        w.f64(self.size_scale);
        w.finish_hex()
    }
}

/// One shard of generator candidates: `groups[k]` holds the records
/// (base + augmented copies) of candidate `shard * SHARD_RECORDS + k`,
/// or `None` when the candidate failed the CUSP ELL filter.
#[derive(Serialize, Deserialize)]
struct RecordShardFile {
    version: u32,
    record_version: u32,
    family: ShardFamily,
    shard: usize,
    groups: Vec<Option<Vec<MatrixRecord>>>,
}

#[derive(Serialize, Deserialize)]
struct BenchCell {
    id: u64,
    result: Option<BenchResult>,
}

/// Benchmark cells of one record shard on one `(gpu, faults, workloads)`
/// axis, in the record shard's id order.
#[derive(Serialize, Deserialize)]
struct BenchShardFile {
    version: u32,
    record_version: u32,
    family: ShardFamily,
    shard: usize,
    gpu: String,
    faults: String,
    workloads: String,
    cells: Vec<BenchCell>,
}

/// One serve-time matrix promoted into the training corpus: the record
/// (reconstructed from journaled features) plus its benchmark cells in
/// `Gpu::ALL` order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrownRecord {
    /// Journal sequence number of the `Observe` this record came from.
    pub source_seq: u64,
    /// The promoted record (`family: Observed`, id from the decision
    /// engine's feature hash so re-ingesting the same matrix dedups).
    pub record: MatrixRecord,
    /// `benches[g]` is the benchmark cell on `Gpu::ALL[g]`.
    pub benches: Vec<Option<BenchResult>>,
}

/// Append-only shard of grown records for one family.
#[derive(Serialize, Deserialize)]
struct GrowthShardFile {
    version: u32,
    record_version: u32,
    family: ShardFamily,
    shard: usize,
    records: Vec<GrownRecord>,
}

/// One cached experiment result. The payload is the table's result struct
/// re-encoded as a JSON string so this envelope stays non-generic; the
/// envelope fields are re-validated on load (hashes can collide and files
/// can be renamed by hand).
#[derive(Serialize, Deserialize)]
struct ExperimentFile {
    experiment_version: u32,
    table: String,
    /// Hex digest of the experiment context (corpus + benches).
    context: String,
    /// Canonical JSON of the experiment params.
    params: String,
    /// JSON of the result value.
    payload: String,
}

/// One cached trained model artifact. The payload is the artifact's own
/// JSON (already versioned and self-describing); the envelope pins the
/// artifact version and full key so a renamed or colliding file can never
/// satisfy the wrong training request.
#[derive(Serialize, Deserialize)]
struct ModelFile {
    artifact_version: u32,
    /// Hex of the caller's full model key.
    key: String,
    /// JSON of the model artifact.
    payload: String,
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    corrupt: AtomicU64,
    record_hits: AtomicU64,
    record_misses: AtomicU64,
    records_ingested: AtomicU64,
    corruption_injected: AtomicU64,
    experiment_hits: AtomicU64,
    experiment_misses: AtomicU64,
    experiment_stores: AtomicU64,
    model_hits: AtomicU64,
    model_misses: AtomicU64,
    model_stores: AtomicU64,
}

/// Handle to the on-disk cache. Cheap to clone; clones share counters.
#[derive(Clone)]
pub struct Cache {
    root: Option<PathBuf>,
    counters: Arc<Counters>,
    faults: FaultConfig,
}

impl Cache {
    /// Cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Cache {
            root: Some(dir.into()),
            counters: Arc::new(Counters::default()),
            faults: FaultConfig::off(),
        }
    }

    /// A disabled cache: every load misses, every store is a no-op.
    pub fn disabled() -> Self {
        Cache {
            root: None,
            counters: Arc::new(Counters::default()),
            faults: FaultConfig::off(),
        }
    }

    /// Enable fault injection on artifact writes: stores roll a
    /// cache-corruption fault and may be deterministically truncated,
    /// exercising the corruption-tolerant read path.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Cache-artifact corruptions injected on write so far.
    pub fn corruption_injected(&self) -> u64 {
        self.counters.corruption_injected.load(Ordering::Relaxed)
    }

    /// Default cache honoring [`NO_CACHE_ENV`]: disabled when the
    /// variable is set to a non-empty value other than `0`, otherwise
    /// rooted at `dir`.
    pub fn from_env(dir: impl Into<PathBuf>) -> Self {
        match std::env::var(NO_CACHE_ENV) {
            Ok(v) if !v.is_empty() && v != "0" => Cache::disabled(),
            _ => Cache::new(dir),
        }
    }

    /// Touch an artifact's mtime so GC sees it as recently used.
    fn touch(path: &Path) {
        if let Ok(f) = std::fs::File::options().append(true).open(path) {
            let _ = f.set_modified(SystemTime::now());
        }
    }

    /// Whether loads and stores touch the disk at all.
    pub fn enabled(&self) -> bool {
        self.root.is_some()
    }

    /// The cache directory, when enabled.
    pub fn dir(&self) -> Option<&Path> {
        self.root.as_deref()
    }

    /// Snapshot of the hit/miss/store counters for the run report.
    pub fn report(&self) -> CacheReport {
        CacheReport {
            enabled: self.enabled(),
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            stores: self.counters.stores.load(Ordering::Relaxed),
            corrupt: self.counters.corrupt.load(Ordering::Relaxed),
            record_hits: self.counters.record_hits.load(Ordering::Relaxed),
            record_misses: self.counters.record_misses.load(Ordering::Relaxed),
            records_ingested: self.counters.records_ingested.load(Ordering::Relaxed),
            experiment_hits: self.counters.experiment_hits.load(Ordering::Relaxed),
            experiment_misses: self.counters.experiment_misses.load(Ordering::Relaxed),
            experiment_stores: self.counters.experiment_stores.load(Ordering::Relaxed),
            model_hits: self.counters.model_hits.load(Ordering::Relaxed),
            model_misses: self.counters.model_misses.load(Ordering::Relaxed),
            model_stores: self.counters.model_stores.load(Ordering::Relaxed),
        }
    }

    /// Path of record shard `shard` for `cfg`'s family. Independent of
    /// `cfg.n_base`, so overlapping corpus sizes share shards.
    pub fn record_shard_path(&self, cfg: &CorpusConfig, shard: usize) -> Option<PathBuf> {
        let fam = ShardFamily::of(cfg).key_hex();
        self.root
            .as_ref()
            .map(|r| r.join(format!("rshard-{fam}-{shard:04}.json")))
    }

    /// Hash of the benchmark axes: GPU, fault config, workload set.
    fn bench_axes_hex(gpu: Gpu) -> String {
        let mut w = KeyWriter::new();
        w.str(gpu.name());
        w.str(BENCH_FAULT_AXIS);
        w.str(BENCH_WORKLOAD_AXIS);
        w.finish_hex()
    }

    /// Path of the benchmark shard for `(cfg family, shard, gpu)`.
    pub fn bench_shard_path(&self, cfg: &CorpusConfig, shard: usize, gpu: Gpu) -> Option<PathBuf> {
        let fam = ShardFamily::of(cfg).key_hex();
        let axes = Self::bench_axes_hex(gpu);
        self.root
            .as_ref()
            .map(|r| r.join(format!("bshard-{fam}-{shard:04}-{axes}.json")))
    }

    /// Path of growth shard `shard` for `cfg`'s family.
    pub fn growth_shard_path(&self, cfg: &CorpusConfig, shard: usize) -> Option<PathBuf> {
        let fam = ShardFamily::of(cfg).key_hex();
        self.root
            .as_ref()
            .map(|r| r.join(format!("gshard-{fam}-{shard:04}.json")))
    }

    /// Path of the experiment artifact for `(table, context digest,
    /// params)`. `params` is hashed via its canonical JSON encoding.
    pub fn experiment_path<P: Serialize>(
        &self,
        table: &str,
        context_digest: u64,
        params: &P,
    ) -> Option<PathBuf> {
        let params_json = serde_json::to_string(params).expect("experiment params serialize");
        let mut w = KeyWriter::new();
        w.u32(EXPERIMENT_VERSION);
        w.str(table);
        w.u64(context_digest);
        w.str(&params_json);
        let key = w.finish_hex();
        self.root
            .as_ref()
            .map(|r| r.join(format!("experiment-{key}.json")))
    }

    fn hit(&self) {
        self.counters.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn miss(&self) {
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Count an unreadable artifact: a miss, plus the corruption tally
    /// the degradation report surfaces.
    fn corrupt_miss(&self, path: &Path) {
        self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
        self.miss();
        eprintln!("cache: corrupt artifact {} (recomputing)", path.display());
    }

    /// Load record shard `shard` of `cfg`'s family, if a valid artifact
    /// exists. `base_offset` is the number of filter-passing candidates
    /// in all earlier shards; the shard's base indices and record ids are
    /// re-validated against it (and against the family's augment count),
    /// so a corrupt-but-parsable or renamed shard can never smuggle wrong
    /// records into a corpus. A hit counts every contained record as a
    /// record-level hit.
    pub fn load_record_shard(
        &self,
        cfg: &CorpusConfig,
        shard: usize,
        base_offset: usize,
    ) -> Option<Vec<Option<Vec<MatrixRecord>>>> {
        let path = self.record_shard_path(cfg, shard)?;
        let loaded = match read_json::<RecordShardFile>(&path) {
            ReadOutcome::Corrupt => {
                self.corrupt_miss(&path);
                return None;
            }
            ReadOutcome::Missing => None,
            ReadOutcome::Ok(file) => {
                let envelope_ok = file.version == CORPUS_VERSION
                    && file.record_version == RECORD_VERSION
                    && file.family == ShardFamily::of(cfg)
                    && file.shard == shard
                    && file.groups.len() == SHARD_RECORDS;
                if envelope_ok && record_groups_valid(&file.groups, base_offset, cfg.augment_copies)
                {
                    Some(file.groups)
                } else {
                    None
                }
            }
        };
        match loaded {
            Some(groups) => {
                self.hit();
                let n: usize = groups.iter().flatten().map(|g| g.len()).sum();
                self.counters
                    .record_hits
                    .fetch_add(n as u64, Ordering::Relaxed);
                Self::touch(&path);
                Some(groups)
            }
            None => {
                self.miss();
                None
            }
        }
    }

    /// Persist a freshly generated record shard (best-effort). Every
    /// contained record counts as a record-level miss: a store happens
    /// exactly when a shard had to be regenerated.
    pub fn store_record_shard(
        &self,
        cfg: &CorpusConfig,
        shard: usize,
        groups: &[Option<Vec<MatrixRecord>>],
    ) {
        let Some(path) = self.record_shard_path(cfg, shard) else {
            return;
        };
        let file = RecordShardFile {
            version: CORPUS_VERSION,
            record_version: RECORD_VERSION,
            family: ShardFamily::of(cfg),
            shard,
            groups: groups.to_vec(),
        };
        if write_json_atomic(&path, &file, self.store_corruption(&path)) {
            self.counters.stores.fetch_add(1, Ordering::Relaxed);
            let n: usize = groups.iter().flatten().map(|g| g.len()).sum();
            self.counters
                .record_misses
                .fetch_add(n as u64, Ordering::Relaxed);
        }
    }

    /// Roll the cache-corruption fault for one artifact write. Returns the
    /// truncation fraction when the write should be damaged.
    fn store_corruption(&self, path: &Path) -> Option<f64> {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let frac = self.faults.corrupt_artifact(fnv1a(name.as_bytes()))?;
        self.counters
            .corruption_injected
            .fetch_add(1, Ordering::Relaxed);
        Some(frac)
    }

    /// Load the benchmark cells of record shard `shard` on `gpu`,
    /// validating every cell against the record ids it claims to
    /// describe. A hit counts every cell as a record-level hit.
    pub fn load_bench_shard(
        &self,
        cfg: &CorpusConfig,
        shard: usize,
        gpu: Gpu,
        ids: &[u64],
    ) -> Option<Vec<Option<BenchResult>>> {
        let path = self.bench_shard_path(cfg, shard, gpu)?;
        let loaded = match read_json::<BenchShardFile>(&path) {
            ReadOutcome::Corrupt => {
                self.corrupt_miss(&path);
                return None;
            }
            ReadOutcome::Missing => None,
            ReadOutcome::Ok(file) => {
                let valid = file.version == CORPUS_VERSION
                    && file.record_version == RECORD_VERSION
                    && file.family == ShardFamily::of(cfg)
                    && file.shard == shard
                    && file.gpu == gpu.name()
                    && file.faults == BENCH_FAULT_AXIS
                    && file.workloads == BENCH_WORKLOAD_AXIS
                    && file.cells.len() == ids.len()
                    && file.cells.iter().zip(ids).all(|(c, &id)| c.id == id);
                if valid {
                    Some(file.cells.into_iter().map(|c| c.result).collect::<Vec<_>>())
                } else {
                    None
                }
            }
        };
        match loaded {
            Some(r) => {
                self.hit();
                self.counters
                    .record_hits
                    .fetch_add(r.len() as u64, Ordering::Relaxed);
                Self::touch(&path);
                Some(r)
            }
            None => {
                self.miss();
                None
            }
        }
    }

    /// Persist freshly benchmarked cells for one record shard on one GPU
    /// (best-effort). Every cell counts as a record-level miss.
    pub fn store_bench_shard(
        &self,
        cfg: &CorpusConfig,
        shard: usize,
        gpu: Gpu,
        ids: &[u64],
        results: &[Option<BenchResult>],
    ) {
        let Some(path) = self.bench_shard_path(cfg, shard, gpu) else {
            return;
        };
        debug_assert_eq!(ids.len(), results.len());
        let file = BenchShardFile {
            version: CORPUS_VERSION,
            record_version: RECORD_VERSION,
            family: ShardFamily::of(cfg),
            shard,
            gpu: gpu.name().to_string(),
            faults: BENCH_FAULT_AXIS.to_string(),
            workloads: BENCH_WORKLOAD_AXIS.to_string(),
            cells: ids
                .iter()
                .zip(results)
                .map(|(&id, result)| BenchCell {
                    id,
                    result: *result,
                })
                .collect(),
        };
        if write_json_atomic(&path, &file, self.store_corruption(&path)) {
            self.counters.stores.fetch_add(1, Ordering::Relaxed);
            self.counters
                .record_misses
                .fetch_add(ids.len() as u64, Ordering::Relaxed);
        }
    }

    /// Growth shard paths for `cfg`'s family, sorted by shard index.
    fn growth_paths(&self, cfg: &CorpusConfig) -> Vec<(usize, PathBuf)> {
        let Some(root) = self.root.as_deref() else {
            return Vec::new();
        };
        let fam = ShardFamily::of(cfg).key_hex();
        let prefix = format!("gshard-{fam}-");
        let Ok(entries) = std::fs::read_dir(root) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(idx) = name
                .strip_prefix(&prefix)
                .and_then(|rest| rest.strip_suffix(".json"))
                .and_then(|idx| idx.parse::<usize>().ok())
            else {
                continue;
            };
            out.push((idx, entry.path()));
        }
        out.sort();
        out
    }

    /// Read all grown records for `cfg`'s family, deduplicated by record
    /// id (first occurrence wins). Corrupt shards are skipped — growth
    /// degrades to whatever subset still reads.
    fn read_growth(&self, cfg: &CorpusConfig, count: bool) -> Vec<GrownRecord> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for (shard, path) in self.growth_paths(cfg) {
            match read_json::<GrowthShardFile>(&path) {
                ReadOutcome::Corrupt => self.corrupt_miss(&path),
                ReadOutcome::Missing => {}
                ReadOutcome::Ok(file) => {
                    let valid = file.version == CORPUS_VERSION
                        && file.record_version == RECORD_VERSION
                        && file.family == ShardFamily::of(cfg)
                        && file.shard == shard;
                    if !valid {
                        continue;
                    }
                    if count {
                        self.hit();
                        Self::touch(&path);
                    }
                    for r in file.records {
                        if seen.insert(r.record.id) {
                            out.push(r);
                        }
                    }
                }
            }
        }
        if count {
            self.counters
                .record_hits
                .fetch_add(out.len() as u64, Ordering::Relaxed);
        }
        out
    }

    /// Load every grown record for `cfg`'s family (deduplicated by id).
    /// Each record counts as a record-level hit: a grown record served
    /// from the cache is one the trainer did not have to benchmark.
    pub fn load_growth(&self, cfg: &CorpusConfig) -> Vec<GrownRecord> {
        self.read_growth(cfg, true)
    }

    /// Append grown records to `cfg`'s family, skipping ids already
    /// present in existing growth shards (or duplicated within `batch`).
    /// New records land in fresh shard files — existing shards are never
    /// rewritten — and each appended record counts toward
    /// `records_ingested`. Returns how many records were appended.
    pub fn append_growth(&self, cfg: &CorpusConfig, batch: &[GrownRecord]) -> usize {
        if self.root.is_none() {
            return 0;
        }
        let mut seen: std::collections::HashSet<u64> = self
            .read_growth(cfg, false)
            .iter()
            .map(|g| g.record.id)
            .collect();
        let fresh: Vec<GrownRecord> = batch
            .iter()
            .filter(|g| seen.insert(g.record.id))
            .cloned()
            .collect();
        if fresh.is_empty() {
            return 0;
        }
        let next = self.growth_paths(cfg).last().map_or(0, |(i, _)| i + 1);
        let mut appended = 0;
        for (k, chunk) in fresh.chunks(SHARD_RECORDS).enumerate() {
            let shard = next + k;
            let Some(path) = self.growth_shard_path(cfg, shard) else {
                continue;
            };
            let file = GrowthShardFile {
                version: CORPUS_VERSION,
                record_version: RECORD_VERSION,
                family: ShardFamily::of(cfg),
                shard,
                records: chunk.to_vec(),
            };
            if write_json_atomic(&path, &file, self.store_corruption(&path)) {
                self.counters.stores.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .records_ingested
                    .fetch_add(chunk.len() as u64, Ordering::Relaxed);
                appended += chunk.len();
            }
        }
        appended
    }

    /// Load a cached experiment result for `(table, context digest,
    /// params)`, if a valid artifact exists. A hit means the warm rerun
    /// skips the experiment's training/CV phase entirely.
    pub fn load_experiment<T: Deserialize, P: Serialize>(
        &self,
        table: &str,
        context_digest: u64,
        params: &P,
    ) -> Option<T> {
        let path = self.experiment_path(table, context_digest, params)?;
        let params_json = serde_json::to_string(params).expect("experiment params serialize");
        let context = format!("{context_digest:016x}");
        let loaded = match read_json::<ExperimentFile>(&path) {
            ReadOutcome::Corrupt => {
                self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
                self.experiment_miss();
                eprintln!("cache: corrupt artifact {} (recomputing)", path.display());
                return None;
            }
            ReadOutcome::Missing => None,
            ReadOutcome::Ok(file) => {
                let valid = file.experiment_version == EXPERIMENT_VERSION
                    && file.table == table
                    && file.context == context
                    && file.params == params_json;
                if valid {
                    serde_json::from_str::<T>(&file.payload).ok()
                } else {
                    None
                }
            }
        };
        match loaded {
            Some(v) => {
                self.counters
                    .experiment_hits
                    .fetch_add(1, Ordering::Relaxed);
                Self::touch(&path);
                Some(v)
            }
            None => {
                self.experiment_miss();
                None
            }
        }
    }

    fn experiment_miss(&self) {
        self.counters
            .experiment_misses
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Persist an experiment result (best-effort).
    pub fn store_experiment<T: Serialize, P: Serialize>(
        &self,
        table: &str,
        context_digest: u64,
        params: &P,
        value: &T,
    ) {
        let Some(path) = self.experiment_path(table, context_digest, params) else {
            return;
        };
        let file = ExperimentFile {
            experiment_version: EXPERIMENT_VERSION,
            table: table.to_string(),
            context: format!("{context_digest:016x}"),
            params: serde_json::to_string(params).expect("experiment params serialize"),
            payload: serde_json::to_string(value).expect("experiment result serializes"),
        };
        if write_json_atomic(&path, &file, self.store_corruption(&path)) {
            self.counters
                .experiment_stores
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Path of the model artifact for `(artifact_version, key)`. The key
    /// is built by the caller (via [`KeyWriter`]) over everything that
    /// determines the trained model: corpus/context digest and training
    /// configuration.
    pub fn model_path(&self, artifact_version: u32, key: u64) -> Option<PathBuf> {
        let mut w = KeyWriter::new();
        w.u32(artifact_version);
        w.u64(key);
        let name = w.finish_hex();
        self.root
            .as_ref()
            .map(|r| r.join(format!("model-{name}.json")))
    }

    /// Load cached trained-model bytes for `(artifact_version, key)`, if a
    /// valid entry exists. A hit means a warm `spsel train` rerun skips
    /// training entirely.
    pub fn load_model(&self, artifact_version: u32, key: u64) -> Option<String> {
        let path = self.model_path(artifact_version, key)?;
        let key_hex = format!("{key:016x}");
        let loaded = match read_json::<ModelFile>(&path) {
            ReadOutcome::Corrupt => {
                self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
                self.model_miss();
                eprintln!("cache: corrupt artifact {} (recomputing)", path.display());
                return None;
            }
            ReadOutcome::Missing => None,
            ReadOutcome::Ok(file) => {
                if file.artifact_version == artifact_version && file.key == key_hex {
                    Some(file.payload)
                } else {
                    None
                }
            }
        };
        match loaded {
            Some(payload) => {
                self.counters.model_hits.fetch_add(1, Ordering::Relaxed);
                Self::touch(&path);
                Some(payload)
            }
            None => {
                self.model_miss();
                None
            }
        }
    }

    fn model_miss(&self) {
        self.counters.model_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Persist trained-model bytes (best-effort). `payload` is the model
    /// artifact's own JSON encoding.
    pub fn store_model(&self, artifact_version: u32, key: u64, payload: &str) {
        let Some(path) = self.model_path(artifact_version, key) else {
            return;
        };
        let file = ModelFile {
            artifact_version,
            key: format!("{key:016x}"),
            payload: payload.to_string(),
        };
        if write_json_atomic(&path, &file, self.store_corruption(&path)) {
            self.counters.model_stores.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Garbage-collect the cache directory: evict artifacts older than
    /// `max_age`, then evict oldest-first until the directory fits in
    /// `max_bytes`. A disabled cache GC is a no-op. Artifacts are touched
    /// on every hit, so live entries stay young.
    ///
    /// Eviction operates on *shard families*, not bare files: a record
    /// shard and the benchmark shards derived from it form one unit whose
    /// age is its youngest member's, and the unit lives or dies together
    /// — GC can never evict a record shard that a recently-used benchmark
    /// shard still references (or strand benchmark cells whose records
    /// are gone). Experiment, model, and growth artifacts are singleton
    /// units. Monolithic v1 `corpus-*`/`bench-*` artifacts are unreadable
    /// by the sharded layout and are evicted unconditionally.
    pub fn gc(&self, cfg: &GcConfig) -> GcReport {
        let mut report = GcReport::default();
        let Some(root) = self.root.as_deref() else {
            return report;
        };
        let Ok(entries) = std::fs::read_dir(root) else {
            return report;
        };
        let now = SystemTime::now();
        struct Unit {
            mtime: SystemTime,
            bytes: u64,
            files: Vec<(PathBuf, u64)>,
        }
        let mut units: std::collections::HashMap<String, Unit> = std::collections::HashMap::new();
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            // Only artifacts; leave stray temp files and foreign files.
            if !name.ends_with(".json") || name.starts_with('.') {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            report.scanned += 1;
            if name.starts_with("corpus-") || name.starts_with("bench-") {
                if std::fs::remove_file(&path).is_ok() {
                    report.evicted += 1;
                    report.bytes_evicted += meta.len();
                }
                continue;
            }
            let mtime = meta.modified().unwrap_or(now);
            let unit = units.entry(gc_unit_key(&name)).or_insert(Unit {
                mtime,
                bytes: 0,
                files: Vec::new(),
            });
            if mtime > unit.mtime {
                unit.mtime = mtime;
            }
            unit.bytes += meta.len();
            unit.files.push((path, meta.len()));
        }
        let mut units: Vec<(String, Unit)> = units.into_iter().collect();
        units.sort_by(|(ka, a), (kb, b)| a.mtime.cmp(&b.mtime).then_with(|| ka.cmp(kb)));
        let mut kept_bytes: u64 = units.iter().map(|(_, u)| u.bytes).sum();
        let mut kept_files: usize = units.iter().map(|(_, u)| u.files.len()).sum();
        for (_, unit) in units.iter() {
            let expired = now
                .duration_since(unit.mtime)
                .map(|age| age > cfg.max_age)
                .unwrap_or(false);
            // Oldest-first: every unit after this one is younger, so once
            // the directory fits, the rest survives.
            let oversized = kept_bytes > cfg.max_bytes;
            if !expired && !oversized {
                break;
            }
            for (path, len) in &unit.files {
                if std::fs::remove_file(path).is_ok() {
                    report.evicted += 1;
                    report.bytes_evicted += len;
                    kept_bytes -= len;
                    kept_files -= 1;
                }
            }
        }
        report.kept = kept_files;
        report.bytes_kept = kept_bytes;
        report
    }
}

/// Eviction-unit key for one artifact file name: `rshard-F-S.json` and
/// `bshard-F-S-<axes>.json` share the unit `shard-F-S`; everything else
/// is a singleton unit.
fn gc_unit_key(name: &str) -> String {
    let stem = name.strip_suffix(".json").unwrap_or(name);
    let parts: Vec<&str> = stem.split('-').collect();
    match parts.as_slice() {
        ["rshard", fam, idx] | ["bshard", fam, idx, _] => format!("shard-{fam}-{idx}"),
        _ => format!("file-{stem}"),
    }
}

/// Structural validation of a record shard's groups against the position
/// it must occupy: base indices consecutive from `base_offset`, ids
/// following the stable `record_id` scheme, exactly `1 + augment_copies`
/// records per passing candidate with the base record first.
fn record_groups_valid(
    groups: &[Option<Vec<MatrixRecord>>],
    base_offset: usize,
    augment_copies: usize,
) -> bool {
    for (base, group) in (base_offset..).zip(groups.iter().flatten()) {
        if group.len() != 1 + augment_copies {
            return false;
        }
        for (copy, r) in group.iter().enumerate() {
            if r.base_index != base
                || r.id != crate::corpus::record_id(base, copy)
                || r.augmented != (copy > 0)
            {
                return false;
            }
        }
    }
    true
}

/// Limits for [`Cache::gc`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcConfig {
    /// Evict oldest artifacts until the directory is at most this large.
    pub max_bytes: u64,
    /// Evict artifacts not read or written for longer than this.
    pub max_age: Duration,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            max_bytes: 256 * 1024 * 1024,
            max_age: Duration::from_secs(7 * 24 * 3600),
        }
    }
}

/// What one GC pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Artifacts examined.
    pub scanned: usize,
    /// Artifacts kept.
    pub kept: usize,
    /// Artifacts deleted.
    pub evicted: usize,
    /// Bytes reclaimed.
    pub bytes_evicted: u64,
    /// Bytes remaining in the directory.
    pub bytes_kept: u64,
}

enum ReadOutcome<T> {
    /// No file (or unreadable directory entry): a plain miss.
    Missing,
    /// The file exists but does not parse: a damaged artifact.
    Corrupt,
    /// Parsed successfully (may still fail semantic validation).
    Ok(T),
}

/// Read + parse, distinguishing an absent artifact from a damaged one.
fn read_json<T: Deserialize>(path: &Path) -> ReadOutcome<T> {
    let Ok(bytes) = std::fs::read(path) else {
        return ReadOutcome::Missing;
    };
    match serde_json::from_slice(&bytes) {
        Ok(v) => ReadOutcome::Ok(v),
        Err(_) => ReadOutcome::Corrupt,
    }
}

/// Atomic best-effort write: serialize, write to a unique temp file in
/// the same directory, rename over the destination. Returns success.
/// `corrupt_frac` simulates a torn write for fault injection: the payload
/// is truncated to that fraction of its bytes before hitting disk.
fn write_json_atomic<T: Serialize>(path: &Path, value: &T, corrupt_frac: Option<f64>) -> bool {
    let mut json = serde_json::to_vec(value).expect("cache artifact serializes");
    if let Some(frac) = corrupt_frac {
        let keep = ((json.len() as f64) * frac) as usize;
        json.truncate(keep.max(1));
    }
    let Some(parent) = path.parent() else {
        return false;
    };
    if std::fs::create_dir_all(parent).is_err() {
        eprintln!("cache: cannot create {}", parent.display());
        return false;
    }
    let tmp = parent.join(format!(
        ".{}.tmp.{}",
        path.file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("artifact"),
        std::process::id()
    ));
    if let Err(e) = std::fs::write(&tmp, &json) {
        eprintln!("cache: write {} failed: {e}", tmp.display());
        return false;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        eprintln!("cache: rename to {} failed: {e}", path.display());
        let _ = std::fs::remove_file(&tmp);
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_and_distinguish_inputs() {
        let a = CorpusConfig::small(10, 1);
        let b = CorpusConfig::small(10, 2);
        let cache = Cache::new("/tmp/unused");
        assert_eq!(
            cache.record_shard_path(&a, 0),
            cache.record_shard_path(&a, 0)
        );
        assert_ne!(
            cache.record_shard_path(&a, 0),
            cache.record_shard_path(&b, 0)
        );
        assert_ne!(
            cache.record_shard_path(&a, 0),
            cache.record_shard_path(&a, 1)
        );
        assert_ne!(
            cache.bench_shard_path(&a, 0, Gpu::Pascal),
            cache.bench_shard_path(&a, 0, Gpu::Volta)
        );
    }

    #[test]
    fn shard_keys_are_independent_of_corpus_size() {
        // The whole point of the sharded layout: configs differing only
        // in n_base address the same shard files.
        let a = CorpusConfig::small(10, 1);
        let mut b = a.clone();
        b.n_base = 2000;
        let cache = Cache::new("/tmp/unused");
        assert_eq!(
            cache.record_shard_path(&a, 3),
            cache.record_shard_path(&b, 3)
        );
        assert_eq!(
            cache.bench_shard_path(&a, 3, Gpu::Turing),
            cache.bench_shard_path(&b, 3, Gpu::Turing)
        );
        assert_eq!(
            cache.growth_shard_path(&a, 0),
            cache.growth_shard_path(&b, 0)
        );
        // But any generator parameter separates families.
        let mut c = a.clone();
        c.size_scale = f64::from_bits(c.size_scale.to_bits() + 1);
        assert_ne!(
            cache.record_shard_path(&a, 3),
            cache.record_shard_path(&c, 3)
        );
    }

    #[test]
    fn gc_unit_keys_group_record_and_bench_shards() {
        assert_eq!(gc_unit_key("rshard-aa-0001.json"), "shard-aa-0001");
        assert_eq!(gc_unit_key("bshard-aa-0001-ff.json"), "shard-aa-0001");
        assert_ne!(
            gc_unit_key("rshard-aa-0001.json"),
            gc_unit_key("rshard-aa-0002.json")
        );
        assert_ne!(
            gc_unit_key("gshard-aa-0001.json"),
            gc_unit_key("rshard-aa-0001.json")
        );
        assert_ne!(
            gc_unit_key("experiment-ab.json"),
            gc_unit_key("model-ab.json")
        );
    }

    #[test]
    fn disabled_cache_never_touches_disk() {
        let cache = Cache::disabled();
        let cfg = CorpusConfig::small(4, 1);
        assert!(!cache.enabled());
        assert!(cache.record_shard_path(&cfg, 0).is_none());
        assert!(cache.load_record_shard(&cfg, 0, 0).is_none());
        assert!(cache.load_growth(&cfg).is_empty());
        assert_eq!(cache.append_growth(&cfg, &[]), 0);
        let report = cache.report();
        assert!(!report.enabled);
        // A disabled load is not a miss: the cache was never consulted.
        assert_eq!((report.hits, report.misses, report.stores), (0, 0, 0));
        assert_eq!((report.record_hits, report.record_misses), (0, 0));
        assert!(cache.experiment_path("t", 1, &0u32).is_none());
        assert!(cache.load_experiment::<u32, _>("t", 1, &0u32).is_none());
        assert_eq!(cache.report().experiment_misses, 0);
    }

    #[test]
    fn key_writer_hashes_float_bit_patterns() {
        // Keys must separate values that print identically under some
        // formatters and must be exactly reproducible.
        let mut a = KeyWriter::new();
        a.f64(0.0);
        let mut b = KeyWriter::new();
        b.f64(-0.0);
        assert_ne!(a.finish(), b.finish());

        let mut c = KeyWriter::new();
        c.f64(0.1 + 0.2);
        let mut d = KeyWriter::new();
        d.f64(0.3);
        assert_ne!(c.finish(), d.finish(), "ulp-distinct floats must differ");

        // Length-prefixed strings: no concatenation ambiguity.
        let mut e = KeyWriter::new();
        e.str("ab");
        e.str("c");
        let mut f = KeyWriter::new();
        f.str("a");
        f.str("bc");
        assert_ne!(e.finish(), f.finish());

        // size_scale reaches the shard family key as a bit pattern.
        let mut base = CorpusConfig::small(10, 1);
        let cache = Cache::new("/tmp/unused");
        let p1 = cache.record_shard_path(&base, 0);
        base.size_scale = f64::from_bits(base.size_scale.to_bits() + 1);
        assert_ne!(p1, cache.record_shard_path(&base, 0));
    }

    #[test]
    fn experiment_cache_round_trips_and_validates() {
        let dir = std::env::temp_dir().join(format!("spsel-expcache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Cache::new(&dir);

        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Params {
            folds: usize,
            seed: u64,
        }
        let params = Params { folds: 5, seed: 17 };
        let value: Vec<f64> = vec![0.25, -0.0, 1.5e-300];

        // Cold: miss, then store.
        assert!(cache
            .load_experiment::<Vec<f64>, _>("table4", 0xAB, &params)
            .is_none());
        cache.store_experiment("table4", 0xAB, &params, &value);
        let r = cache.report();
        assert_eq!(
            (r.experiment_hits, r.experiment_misses, r.experiment_stores),
            (0, 1, 1)
        );

        // Warm: exact payload back, counted as an experiment hit.
        let back: Vec<f64> = cache
            .load_experiment("table4", 0xAB, &params)
            .expect("warm hit");
        assert_eq!(back.len(), value.len());
        for (a, b) in back.iter().zip(&value) {
            assert_eq!(a.to_bits(), b.to_bits(), "payload must round-trip bitwise");
        }
        assert_eq!(cache.report().experiment_hits, 1);

        // Different table, digest, or params: separate entries, misses.
        assert!(cache
            .load_experiment::<Vec<f64>, _>("table6", 0xAB, &params)
            .is_none());
        assert!(cache
            .load_experiment::<Vec<f64>, _>("table4", 0xAC, &params)
            .is_none());
        assert!(cache
            .load_experiment::<Vec<f64>, _>("table4", 0xAB, &Params { folds: 3, seed: 17 })
            .is_none());

        // Experiment artifacts ride the standard GC.
        let gc = cache.gc(&GcConfig {
            max_bytes: 0,
            max_age: Duration::from_secs(0),
        });
        assert_eq!(gc.scanned, 1);
        assert_eq!(gc.evicted, 1);
        assert!(cache
            .load_experiment::<Vec<f64>, _>("table4", 0xAB, &params)
            .is_none());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn model_cache_round_trips_and_validates() {
        let dir = std::env::temp_dir().join(format!("spsel-modelcache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Cache::new(&dir);
        let payload = r#"{"artifact_version":1,"gpus":[]}"#;

        // Cold: miss, then store.
        assert!(cache.load_model(1, 0xBEEF).is_none());
        cache.store_model(1, 0xBEEF, payload);
        let r = cache.report();
        assert_eq!((r.model_hits, r.model_misses, r.model_stores), (0, 1, 1));

        // Warm: exact bytes back, counted as a model hit.
        assert_eq!(cache.load_model(1, 0xBEEF).as_deref(), Some(payload));
        assert_eq!(cache.report().model_hits, 1);

        // A different key or artifact version is a separate entry.
        assert!(cache.load_model(1, 0xBEF0).is_none());
        assert!(cache.load_model(2, 0xBEEF).is_none());

        // Model artifacts ride the standard GC.
        let gc = cache.gc(&GcConfig {
            max_bytes: 0,
            max_age: Duration::from_secs(0),
        });
        assert_eq!(gc.scanned, 1);
        assert_eq!(gc.evicted, 1);
        assert!(cache.load_model(1, 0xBEEF).is_none());

        // Disabled cache: never consulted, never counted.
        let off = Cache::disabled();
        assert!(off.model_path(1, 1).is_none());
        assert!(off.load_model(1, 1).is_none());
        assert_eq!(off.report().model_misses, 0);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
