//! Persistent on-disk cache for corpus construction and GPU benchmarking.
//!
//! Artifacts live under a cache directory (default `results/cache/`), one
//! JSON file per artifact, named by a stable FNV-1a hash of everything
//! that determines the artifact's content:
//!
//! * corpus files — `(CORPUS_VERSION, CorpusConfig)`;
//! * benchmark files — `(CORPUS_VERSION, CorpusConfig, Gpu)`, with every
//!   entry additionally tagged by its record index and record id, which
//!   are re-validated on load.
//!
//! Any change to the corpus generator or benchmark model must bump
//! [`CORPUS_VERSION`], which invalidates every cached artifact at once.
//!
//! The cache is strictly best-effort and corruption-tolerant: a missing,
//! truncated, stale, or otherwise unreadable file is a cache miss and the
//! artifact is recomputed; a failed write only warns. Nothing in this
//! module panics on I/O or parse errors. Writes are atomic
//! (write-to-temp, then rename) so a crashed or concurrent run can never
//! leave a half-written artifact that a later run would half-read.
//!
//! Setting `SPSEL_NO_CACHE=1` disables the cache entirely (see
//! [`Cache::from_env`]).

use crate::corpus::{Corpus, CorpusConfig, MatrixRecord};
use crate::telemetry::CacheReport;
use serde::{Deserialize, Serialize};
use spsel_gpusim::{BenchResult, Gpu};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Version of the corpus generator + benchmark model semantics. Bump on
/// any change that alters generated records or benchmark results, so
/// stale cache entries can never be mistaken for current ones.
pub const CORPUS_VERSION: u32 = 1;

/// Environment variable that disables the cache when set to a non-empty
/// value other than `0`.
pub const NO_CACHE_ENV: &str = "SPSEL_NO_CACHE";

/// Default cache directory, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = "results/cache";

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stable hex key of a serializable cache-key structure.
fn key_of<T: Serialize>(value: &T) -> String {
    // The serde shim encodes objects in insertion order with shortest
    // round-trip floats, so equal keys always produce equal bytes.
    let bytes = serde_json::to_vec(value).expect("cache key serializes");
    format!("{:016x}", fnv1a(&bytes))
}

#[derive(Serialize)]
struct CorpusKey {
    version: u32,
    config: CorpusConfig,
}

#[derive(Serialize)]
struct BenchKey {
    version: u32,
    config: CorpusConfig,
    gpu: String,
}

#[derive(Serialize, Deserialize)]
struct CorpusFile {
    version: u32,
    config: CorpusConfig,
    records: Vec<MatrixRecord>,
}

#[derive(Serialize, Deserialize)]
struct BenchEntry {
    index: usize,
    id: u64,
    result: Option<BenchResult>,
}

#[derive(Serialize, Deserialize)]
struct BenchFile {
    version: u32,
    config: CorpusConfig,
    gpu: String,
    entries: Vec<BenchEntry>,
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
}

/// Handle to the on-disk cache. Cheap to clone; clones share counters.
#[derive(Clone)]
pub struct Cache {
    root: Option<PathBuf>,
    counters: Arc<Counters>,
}

impl Cache {
    /// Cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Cache {
            root: Some(dir.into()),
            counters: Arc::new(Counters::default()),
        }
    }

    /// A disabled cache: every load misses, every store is a no-op.
    pub fn disabled() -> Self {
        Cache {
            root: None,
            counters: Arc::new(Counters::default()),
        }
    }

    /// Default cache honoring [`NO_CACHE_ENV`]: disabled when the
    /// variable is set to a non-empty value other than `0`, otherwise
    /// rooted at `dir`.
    pub fn from_env(dir: impl Into<PathBuf>) -> Self {
        match std::env::var(NO_CACHE_ENV) {
            Ok(v) if !v.is_empty() && v != "0" => Cache::disabled(),
            _ => Cache::new(dir),
        }
    }

    /// Whether loads and stores touch the disk at all.
    pub fn enabled(&self) -> bool {
        self.root.is_some()
    }

    /// The cache directory, when enabled.
    pub fn dir(&self) -> Option<&Path> {
        self.root.as_deref()
    }

    /// Snapshot of the hit/miss/store counters for the run report.
    pub fn report(&self) -> CacheReport {
        CacheReport {
            enabled: self.enabled(),
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            stores: self.counters.stores.load(Ordering::Relaxed),
        }
    }

    /// Path of the corpus artifact for `cfg`.
    pub fn corpus_path(&self, cfg: &CorpusConfig) -> Option<PathBuf> {
        let key = key_of(&CorpusKey {
            version: CORPUS_VERSION,
            config: cfg.clone(),
        });
        self.root
            .as_ref()
            .map(|r| r.join(format!("corpus-{key}.json")))
    }

    /// Path of the benchmark artifact for `(cfg, gpu)`.
    pub fn bench_path(&self, cfg: &CorpusConfig, gpu: Gpu) -> Option<PathBuf> {
        let key = key_of(&BenchKey {
            version: CORPUS_VERSION,
            config: cfg.clone(),
            gpu: gpu.name().to_string(),
        });
        self.root
            .as_ref()
            .map(|r| r.join(format!("bench-{key}.json")))
    }

    fn hit(&self) {
        self.counters.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn miss(&self) {
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Load a cached corpus for `cfg`, if a valid artifact exists.
    pub fn load_corpus(&self, cfg: &CorpusConfig) -> Option<Corpus> {
        let path = self.corpus_path(cfg)?;
        let loaded = read_json::<CorpusFile>(&path).and_then(|file| {
            // The hash already encodes version + config, but re-validate:
            // hashes can collide and files can be renamed by hand.
            if file.version == CORPUS_VERSION && &file.config == cfg {
                Some(Corpus::from_parts(file.records, file.config))
            } else {
                None
            }
        });
        match loaded {
            Some(c) => {
                self.hit();
                Some(c)
            }
            None => {
                self.miss();
                None
            }
        }
    }

    /// Persist a corpus (best-effort).
    pub fn store_corpus(&self, corpus: &Corpus) {
        let Some(path) = self.corpus_path(corpus.config()) else {
            return;
        };
        let file = CorpusFile {
            version: CORPUS_VERSION,
            config: corpus.config().clone(),
            records: corpus.records.clone(),
        };
        if write_json_atomic(&path, &file) {
            self.counters.stores.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Load cached benchmark results for `(cfg, gpu)`, validating every
    /// entry against the records it claims to describe.
    pub fn load_bench(
        &self,
        cfg: &CorpusConfig,
        gpu: Gpu,
        records: &[MatrixRecord],
    ) -> Option<Vec<Option<BenchResult>>> {
        let path = self.bench_path(cfg, gpu)?;
        let loaded = read_json::<BenchFile>(&path).and_then(|file| {
            let valid = file.version == CORPUS_VERSION
                && &file.config == cfg
                && file.gpu == gpu.name()
                && file.entries.len() == records.len()
                && file
                    .entries
                    .iter()
                    .enumerate()
                    .all(|(i, e)| e.index == i && e.id == records[i].id);
            if valid {
                Some(file.entries.into_iter().map(|e| e.result).collect())
            } else {
                None
            }
        });
        match loaded {
            Some(r) => {
                self.hit();
                Some(r)
            }
            None => {
                self.miss();
                None
            }
        }
    }

    /// Persist benchmark results (best-effort).
    pub fn store_bench(
        &self,
        cfg: &CorpusConfig,
        gpu: Gpu,
        records: &[MatrixRecord],
        results: &[Option<BenchResult>],
    ) {
        let Some(path) = self.bench_path(cfg, gpu) else {
            return;
        };
        debug_assert_eq!(records.len(), results.len());
        let file = BenchFile {
            version: CORPUS_VERSION,
            config: cfg.clone(),
            gpu: gpu.name().to_string(),
            entries: records
                .iter()
                .zip(results)
                .enumerate()
                .map(|(index, (r, result))| BenchEntry {
                    index,
                    id: r.id,
                    result: *result,
                })
                .collect(),
        };
        if write_json_atomic(&path, &file) {
            self.counters.stores.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Read + parse, tolerating every failure mode by returning `None`.
fn read_json<T: Deserialize>(path: &Path) -> Option<T> {
    let bytes = std::fs::read(path).ok()?;
    serde_json::from_slice(&bytes).ok()
}

/// Atomic best-effort write: serialize, write to a unique temp file in
/// the same directory, rename over the destination. Returns success.
fn write_json_atomic<T: Serialize>(path: &Path, value: &T) -> bool {
    let json = serde_json::to_vec(value).expect("cache artifact serializes");
    let Some(parent) = path.parent() else {
        return false;
    };
    if std::fs::create_dir_all(parent).is_err() {
        eprintln!("cache: cannot create {}", parent.display());
        return false;
    }
    let tmp = parent.join(format!(
        ".{}.tmp.{}",
        path.file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("artifact"),
        std::process::id()
    ));
    if let Err(e) = std::fs::write(&tmp, &json) {
        eprintln!("cache: write {} failed: {e}", tmp.display());
        return false;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        eprintln!("cache: rename to {} failed: {e}", path.display());
        let _ = std::fs::remove_file(&tmp);
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_and_distinguish_inputs() {
        let a = CorpusConfig::small(10, 1);
        let b = CorpusConfig::small(10, 2);
        let cache = Cache::new("/tmp/unused");
        assert_eq!(cache.corpus_path(&a), cache.corpus_path(&a));
        assert_ne!(cache.corpus_path(&a), cache.corpus_path(&b));
        assert_ne!(
            cache.bench_path(&a, Gpu::Pascal),
            cache.bench_path(&a, Gpu::Volta)
        );
    }

    #[test]
    fn disabled_cache_never_touches_disk() {
        let cache = Cache::disabled();
        let cfg = CorpusConfig::small(4, 1);
        assert!(!cache.enabled());
        assert!(cache.corpus_path(&cfg).is_none());
        assert!(cache.load_corpus(&cfg).is_none());
        let report = cache.report();
        assert!(!report.enabled);
        // A disabled load is not a miss: the cache was never consulted.
        assert_eq!((report.hits, report.misses, report.stores), (0, 0, 0));
    }
}
