//! The synthetic matrix corpus standing in for the SuiteSparse collection.
//!
//! The paper benchmarks 1929 SuiteSparse matrices (after dropping matrices
//! that exceed GPU memory or that CUSP cannot convert to ELL) plus
//! row/column-permuted copies used to augment the CNN training set. This
//! module generates a corpus with the same roles: ten structural families
//! whose parameters are sampled from wide, seeded distributions, filtered
//! by the same CUSP ELL-conversion rule, with permuted augmentation copies.
//!
//! Matrices are materialized one at a time, reduced to [`MatrixStats`],
//! [`FeatureVector`] and (optionally) a [`DensityImage`], and then dropped,
//! so corpus construction is cheap in memory.

use crate::cache::{Cache, SHARD_RECORDS};
use crate::error::{CoreError, CoreResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use spsel_features::{DensityImage, FeatureVector, MatrixStats};
use spsel_gpusim::{
    benchmark_corpus, measure_corpus, BenchResult, CorpusBench, FaultConfig, Gpu, TrialPolicy,
};
use spsel_matrix::gen::{self, Family};
use spsel_matrix::{permute, CooMatrix, CsrMatrix, Format, SpMv};

/// Slack term of CUSP's ELL conversion rule (it tolerates a small absolute
/// slab overhead even when the relative blow-up is large).
pub const CUSP_ELL_SLACK: usize = 512 * 1024;

/// CUSP refuses to build an ELL structure whose padded slab exceeds
/// `3 * nnz + slack` cells; the paper drops such matrices, and so do we.
pub fn cusp_ell_feasible(stats: &MatrixStats) -> bool {
    stats.ell_size <= 3 * stats.nnz + CUSP_ELL_SLACK
}

/// Configuration of the synthetic corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Number of base (non-augmented) matrices to keep.
    pub n_base: usize,
    /// Permuted copies derived from each base matrix.
    pub augment_copies: usize,
    /// Master seed.
    pub seed: u64,
    /// Whether to rasterize density images (needed by the CNN baseline).
    pub with_images: bool,
    /// Density-image resolution.
    pub image_resolution: usize,
    /// Multiplier on matrix dimensions: 1.0 reproduces the paper-scale
    /// corpus; tests use small values.
    pub size_scale: f64,
}

impl CorpusConfig {
    /// Paper-scale corpus: 1929 base matrices, 4 permuted copies each.
    pub fn paper() -> Self {
        CorpusConfig {
            n_base: 1929,
            augment_copies: 4,
            seed: 0xC0FFEE,
            with_images: false,
            image_resolution: 32,
            size_scale: 1.0,
        }
    }

    /// Small corpus for tests and quick runs.
    pub fn small(n_base: usize, seed: u64) -> Self {
        CorpusConfig {
            n_base,
            augment_copies: 1,
            seed,
            with_images: false,
            image_resolution: 16,
            size_scale: 0.05,
        }
    }

    /// Enable density images.
    pub fn with_images(mut self, resolution: usize) -> Self {
        self.with_images = true;
        self.image_resolution = resolution;
        self
    }
}

/// Stable identifier of the `copy`-th record derived from base matrix
/// `base_index`. Base records keep their base index; augmentation copy
/// `c ≥ 1` is `(c << 32) | base_index`. Unlike the pre-v2 scheme
/// (`base + copy * n_base`), this never depends on the corpus size, so
/// the id — and the benchmark noise it seeds — is shared by every corpus
/// config in the same generator family.
pub fn record_id(base_index: usize, copy: usize) -> u64 {
    ((copy as u64) << 32) | base_index as u64
}

/// One corpus entry: everything the experiments need, matrix dropped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixRecord {
    /// Stable identifier (seeds the benchmark noise).
    pub id: u64,
    /// Structural family of the base matrix.
    pub family: Family,
    /// Index of the base matrix this record derives from (augmented copies
    /// share it; used to keep CV splits honest if needed).
    pub base_index: usize,
    /// Whether this record is a permuted augmentation copy.
    pub augmented: bool,
    /// Raw structural statistics.
    pub stats: MatrixStats,
    /// Table 1 features.
    pub features: FeatureVector,
    /// Density image (present iff the config asked for images).
    pub image: Option<DensityImage>,
}

/// The corpus: records plus per-GPU ground-truth benchmark results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Corpus {
    /// All records (base + augmented), in generation order.
    pub records: Vec<MatrixRecord>,
    config: CorpusConfig,
}

/// Log-uniform sample in `[lo, hi]`.
fn log_uniform<R: Rng>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    (rng.gen_range(lo.ln()..=hi.ln())).exp()
}

/// Generate the base matrix for index `i`.
fn generate_base(i: usize, cfg: &CorpusConfig) -> (Family, CooMatrix) {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (i as u64).wrapping_mul(0x9e37_79b9));
    let sc = cfg.size_scale;
    let szu = |rng: &mut StdRng, lo: f64, hi: f64| -> usize {
        (log_uniform(rng, lo * sc, hi * sc)).round().max(8.0) as usize
    };
    // Family mix: roughly one third regular (ELL-friendly), two thirds
    // irregular, mirroring the balance of SuiteSparse that produces the
    // paper's CSR-dominated label distribution.
    let roll: f64 = rng.gen();
    let family = match roll {
        r if r < 0.08 => Family::Stencil2D,
        r if r < 0.14 => Family::Stencil3D,
        r if r < 0.25 => Family::Banded,
        r if r < 0.30 => Family::MultiDiagonal,
        r if r < 0.42 => Family::RandomUniform,
        r if r < 0.58 => Family::PowerLaw,
        r if r < 0.68 => Family::Kronecker,
        r if r < 0.76 => Family::BlockDiagonal,
        r if r < 0.90 => Family::Bimodal,
        _ => Family::RowSkewed,
    };
    let seed: u64 = rng.gen();
    let m = match family {
        Family::Stencil2D => {
            let side = szu(&mut rng, 20.0, 300.0);
            gen::stencil2d(side, seed)
        }
        Family::Stencil3D => {
            let side = szu(&mut rng, 8.0, 45.0).max(4);
            gen::stencil3d(side, seed)
        }
        Family::Banded => {
            let n = szu(&mut rng, 400.0, 80_000.0);
            let bandwidth = rng.gen_range(1..=12);
            let fill = rng.gen_range(0.35..1.0);
            gen::banded(n, bandwidth, fill, seed)
        }
        Family::MultiDiagonal => {
            let n = szu(&mut rng, 500.0, 60_000.0);
            let ndiags = rng.gen_range(3..=25.min(n / 4).max(3));
            gen::multi_diagonal(n, ndiags, seed)
        }
        Family::RandomUniform => {
            let n = szu(&mut rng, 300.0, 60_000.0);
            let degree = log_uniform(&mut rng, 3.0, 80.0) as usize;
            gen::random_uniform(n, n, degree.max(2).min(n / 2).max(1), seed)
        }
        Family::PowerLaw => {
            let n = szu(&mut rng, 500.0, 60_000.0);
            let gamma = rng.gen_range(2.0..3.2);
            let min_deg = rng.gen_range(1..=4);
            let max_deg = (n / 8).clamp(8, 4000);
            gen::power_law(n, n, min_deg, gamma, max_deg, seed)
        }
        Family::Kronecker => {
            let scale = rng.gen_range(9..=16.min((16.0 * sc.max(0.4)) as u32).max(9));
            let n = 1usize << scale;
            let edge_factor = log_uniform(&mut rng, 4.0, 24.0);
            let nnz_target = ((n as f64 * edge_factor) as usize).min(1_500_000);
            gen::kronecker(scale, nnz_target, 0.57, 0.19, 0.19, seed)
        }
        Family::BlockDiagonal => {
            let block = rng.gen_range(4..=48);
            let nblocks = szu(&mut rng, 10.0, 2000.0).max(2);
            let fill = rng.gen_range(0.5..1.0);
            gen::block_diagonal(nblocks, block, fill, seed)
        }
        Family::Bimodal => {
            let n = szu(&mut rng, 500.0, 60_000.0);
            let a = rng.gen_range(2..=8);
            let b = rng.gen_range(20..=120.min(n / 4).max(21));
            let frac = rng.gen_range(0.05..0.45);
            gen::bimodal(n, n, a, b, frac, seed)
        }
        Family::RowSkewed => {
            let n = szu(&mut rng, 2_000.0, 120_000.0);
            let light = rng.gen_range(2..=6);
            let heavy = ((n as f64) * rng.gen_range(0.02..0.5)) as usize;
            let heavy_frac = rng.gen_range(0.0005..0.01);
            gen::row_skewed(n, n, light, heavy.max(light + 1), heavy_frac, seed)
        }
        // Observed records come from serve-time ingest, never from the
        // generator; the family roll above cannot produce this arm.
        Family::Observed => unreachable!("Observed is not a generator family"),
    };
    (family, m)
}

fn record_from(
    id: u64,
    family: Family,
    base_index: usize,
    augmented: bool,
    coo: &CooMatrix,
    cfg: &CorpusConfig,
) -> MatrixRecord {
    let csr = CsrMatrix::from(coo);
    let stats = MatrixStats::from_csr(&csr);
    let features = FeatureVector::from_stats(&stats);
    let image = cfg
        .with_images
        .then(|| DensityImage::from_csr(&csr, cfg.image_resolution));
    MatrixRecord {
        id,
        family,
        base_index,
        augmented,
        stats,
        features,
        image,
    }
}

/// Shard plan of a built corpus: for every record shard consumed, the
/// ids and stats of *all* its records (including those past `n_base`),
/// so benchmark caching operates on whole shards and overlapping corpus
/// sizes share benchmark cells record-for-record.
#[derive(Debug, Clone, Default)]
pub struct CorpusPlan {
    /// Per-shard record manifests, in shard order.
    pub shards: Vec<ShardRecords>,
}

/// Manifest of one record shard: everything benchmarking needs.
#[derive(Debug, Clone)]
pub struct ShardRecords {
    /// Shard index within the generator family.
    pub index: usize,
    /// Record ids, in generation order.
    pub ids: Vec<u64>,
    /// Matching structural stats.
    pub stats: Vec<MatrixStats>,
}

impl Corpus {
    /// Build the corpus without a cache; see [`Corpus::build_cached`].
    pub fn build(cfg: CorpusConfig) -> Corpus {
        Self::build_cached(cfg, &Cache::disabled()).0
    }

    /// Build the corpus: generate base matrices (skipping candidates that
    /// fail the CUSP ELL rule, as the paper does), then derive permuted
    /// augmentation copies.
    ///
    /// Generation walks fixed-size shards of candidates; each shard is
    /// loaded from `cache` when a valid artifact exists and generated in
    /// parallel (then stored back) otherwise. Candidates are
    /// deterministic functions of their generation index and shards are
    /// always materialized whole, so the records — ids, base indices,
    /// stats — are identical whichever mix of cached and fresh shards a
    /// build consumes, and identical across corpus sizes on the shared
    /// prefix. Each kept matrix is reduced to its records (stats,
    /// features, image) and dropped before the next shard, so peak
    /// memory stays at O(threads) matrices instead of the whole corpus
    /// (which would be tens of GB at paper scale).
    ///
    /// Returns the corpus plus the [`CorpusPlan`] listing every shard
    /// record (including overgenerated ones past `n_base`) for shard-
    /// granular benchmark caching.
    pub fn build_cached(cfg: CorpusConfig, cache: &Cache) -> (Corpus, CorpusPlan) {
        let mut records: Vec<MatrixRecord> =
            Vec::with_capacity(cfg.n_base * (1 + cfg.augment_copies));
        let mut plan = CorpusPlan::default();
        // Filter-passing candidates seen so far, across all shards: the
        // running count assigns base indices (and therefore ids) without
        // any reference to n_base.
        let mut passing = 0usize;
        let mut shard = 0usize;
        while passing < cfg.n_base {
            let groups = cache
                .load_record_shard(&cfg, shard, passing)
                .unwrap_or_else(|| {
                    let groups = Self::generate_shard(&cfg, shard, passing);
                    cache.store_record_shard(&cfg, shard, &groups);
                    groups
                });
            let mut ids = Vec::new();
            let mut stats = Vec::new();
            for group in groups.iter().flatten() {
                for r in group {
                    ids.push(r.id);
                    stats.push(r.stats.clone());
                }
                if passing < cfg.n_base {
                    records.extend(group.iter().cloned());
                }
                passing += 1;
            }
            plan.shards.push(ShardRecords {
                index: shard,
                ids,
                stats,
            });
            shard += 1;
        }

        // Base records first, copies after, mirroring the previous layout
        // (stable sort preserves generation order within the groups).
        records.sort_by_key(|r| (r.augmented, r.base_index));
        (
            Corpus {
                records,
                config: cfg,
            },
            plan,
        )
    }

    /// Generate one whole shard of candidates. `base_offset` is the
    /// filter-passing count of all earlier shards; it fixes the base
    /// indices and ids of this shard's records.
    fn generate_shard(
        cfg: &CorpusConfig,
        shard: usize,
        base_offset: usize,
    ) -> Vec<Option<Vec<MatrixRecord>>> {
        let start = shard * SHARD_RECORDS;
        let mut groups: Vec<Option<Vec<MatrixRecord>>> = (start..start + SHARD_RECORDS)
            .into_par_iter()
            .map(|gen_index| {
                let (family, m) = generate_base(gen_index, cfg);
                let stats = MatrixStats::from_row_counts(m.nrows(), m.ncols(), &m.row_counts());
                if !cusp_ell_feasible(&stats) || stats.nnz == 0 {
                    return None;
                }
                // Records receive their final base_index and id below
                // (they depend on how many earlier candidates passed).
                let mut out = Vec::with_capacity(1 + cfg.augment_copies);
                out.push(record_from(0, family, gen_index, false, &m, cfg));
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xA06 ^ (gen_index as u64) << 20);
                for _ in 0..cfg.augment_copies {
                    let pm = permute::random_permuted(&m, &mut rng);
                    out.push(record_from(0, family, gen_index, true, &pm, cfg));
                }
                Some(out)
            })
            .collect();
        for (base, group) in (base_offset..).zip(groups.iter_mut().flatten()) {
            for (copy, r) in group.iter_mut().enumerate() {
                r.base_index = base;
                r.id = record_id(base, copy);
            }
        }
        groups
    }

    /// Reassemble a corpus from records and the config that produced them
    /// (used when loading a cached corpus artifact).
    pub fn from_parts(records: Vec<MatrixRecord>, config: CorpusConfig) -> Corpus {
        Corpus { records, config }
    }

    /// Number of records (base + augmented).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The configuration used to build this corpus.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// Benchmark every record on one GPU. `None` entries are records that
    /// do not fit in that GPU's memory (dropped from its dataset).
    pub fn benchmark(&self, gpu: Gpu) -> Vec<Option<BenchResult>> {
        let stats: Vec<MatrixStats> = self.records.iter().map(|r| r.stats.clone()).collect();
        let ids: Vec<u64> = self.records.iter().map(|r| r.id).collect();
        benchmark_corpus(&gpu.spec(), &stats, &ids)
    }

    /// Benchmark every record on one GPU through the shard cache: each
    /// record shard's cells are loaded when a valid benchmark shard
    /// exists and computed (then stored back) otherwise. Whole shards
    /// are benchmarked — including records past `n_base` — so the cells
    /// are shared verbatim by every corpus size in the family. The
    /// benchmark model is per-record pure, so the outcome is
    /// bit-identical to [`Corpus::benchmark`].
    pub fn benchmark_cached(
        &self,
        plan: &CorpusPlan,
        gpu: Gpu,
        cache: &Cache,
    ) -> Vec<Option<BenchResult>> {
        let spec = gpu.spec();
        let mut by_id: std::collections::HashMap<u64, Option<BenchResult>> =
            std::collections::HashMap::new();
        for sh in &plan.shards {
            let cells = cache
                .load_bench_shard(&self.config, sh.index, gpu, &sh.ids)
                .unwrap_or_else(|| {
                    let results = benchmark_corpus(&spec, &sh.stats, &sh.ids);
                    cache.store_bench_shard(&self.config, sh.index, gpu, &sh.ids, &results);
                    results
                });
            for (&id, cell) in sh.ids.iter().zip(cells) {
                by_id.insert(id, cell);
            }
        }
        self.records.iter().map(|r| by_id[&r.id]).collect()
    }

    /// Resiliently benchmark every record on one GPU: trial-level
    /// measurement with retry, robust aggregation, and quarantine. With
    /// `faults` disabled the outcomes are bit-identical to
    /// [`Corpus::benchmark`].
    pub fn measure(&self, gpu: Gpu, faults: &FaultConfig, policy: &TrialPolicy) -> CorpusBench {
        let stats: Vec<MatrixStats> = self.records.iter().map(|r| r.stats.clone()).collect();
        let ids: Vec<u64> = self.records.iter().map(|r| r.id).collect();
        measure_corpus(&gpu.spec(), &stats, &ids, faults, policy)
    }

    /// Indices of records that fit (all-format-feasible) on *every* GPU —
    /// the paper's "Common Subset" used for transfer experiments.
    pub fn common_subset(&self, benches: &[Vec<Option<BenchResult>>]) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| benches.iter().all(|b| b[i].is_some()))
            .collect()
    }

    /// Ground-truth labels on one GPU for the given record indices.
    /// Errors (instead of panicking) when an index has no usable
    /// benchmark result — infeasible or quarantined records can reach
    /// here under fault injection.
    pub fn labels(results: &[Option<BenchResult>], indices: &[usize]) -> CoreResult<Vec<Format>> {
        indices
            .iter()
            .map(|&i| {
                results.get(i).copied().flatten().map(|r| r.best).ok_or(
                    CoreError::InfeasibleRecord {
                        gpu: String::new(),
                        index: i,
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_corpus() -> Corpus {
        Corpus::build(CorpusConfig::small(40, 7))
    }

    #[test]
    fn corpus_has_requested_size() {
        let c = small_corpus();
        // 40 base + 1 copy each.
        assert_eq!(c.len(), 80);
        assert_eq!(c.records.iter().filter(|r| !r.augmented).count(), 40);
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = Corpus::build(CorpusConfig::small(20, 3));
        let b = Corpus::build(CorpusConfig::small(20, 3));
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.stats, y.stats);
        }
    }

    #[test]
    fn all_records_pass_ell_rule_for_base() {
        let c = small_corpus();
        for r in c.records.iter().filter(|r| !r.augmented) {
            assert!(
                cusp_ell_feasible(&r.stats),
                "{:?} violates ELL rule",
                r.family
            );
        }
    }

    #[test]
    fn augmented_copies_preserve_row_count_multiset() {
        let c = small_corpus();
        for r in &c.records {
            if r.augmented {
                let base = c
                    .records
                    .iter()
                    .find(|b| !b.augmented && b.base_index == r.base_index)
                    .expect("base record exists");
                assert_eq!(base.stats.nnz, r.stats.nnz);
                assert_eq!(base.stats.nnz_max, r.stats.nnz_max);
                assert_eq!(base.stats.nnz_mean, r.stats.nnz_mean);
            }
        }
    }

    #[test]
    fn families_are_diverse() {
        let c = Corpus::build(CorpusConfig::small(60, 1));
        let fams: std::collections::HashSet<Family> = c.records.iter().map(|r| r.family).collect();
        assert!(fams.len() >= 5, "only {} families", fams.len());
    }

    #[test]
    fn benchmark_labels_cover_multiple_formats() {
        let c = Corpus::build(CorpusConfig::small(60, 2));
        let results = c.benchmark(Gpu::Turing);
        let mut seen = std::collections::HashSet::new();
        for r in results.iter().flatten() {
            seen.insert(r.best);
        }
        assert!(seen.len() >= 2, "labels degenerate: {seen:?}");
    }

    #[test]
    fn common_subset_is_subset_of_all() {
        let c = small_corpus();
        let benches: Vec<_> = Gpu::ALL.iter().map(|&g| c.benchmark(g)).collect();
        let common = c.common_subset(&benches);
        assert!(common.len() <= c.len());
        for &i in &common {
            for b in &benches {
                assert!(b[i].is_some());
            }
        }
    }
}
