//! The online classification system the paper's conclusion sketches:
//! "an online classification system that makes full use of the
//! clustering-based approach by being able to learn from SpMV operations
//! while they are being performed."
//!
//! [`OnlineSelector`] wraps the incremental K-Means extension with
//! per-cluster format labels and a benchmark queue: matrices stream in,
//! join or open clusters, and the selector tells the caller which
//! matrices are worth benchmarking (new or unlabeled clusters). Feeding
//! back one measured label per new cluster keeps the selector current
//! without ever refitting.
//!
//! [`ShardedOnlineSelector`] is the serving-grade concurrent variant
//! built on a snapshot/delta design: read-only decisions are answered
//! from an immutable, atomically-swappable [`OnlineSnapshot`] without
//! ever touching a write lock, while mutations (`observe` centroid
//! updates, `report_benchmark` labels) go through a small write side —
//! one centroid lock that serializes observations (their running-mean
//! updates are order-dependent) plus per-shard label locks so feedback
//! on one cluster region never blocks feedback (or new-cluster
//! bookkeeping) landing elsewhere. Every mutation publishes a fresh
//! snapshot before its reply is produced, which is what keeps a
//! single-client stream bit-identical to the serial [`OnlineSelector`].

use crate::semi::SemiSupervisedSelector;
use serde::{Deserialize, Serialize};
use spsel_features::{FeatureVector, Preprocessor};
use spsel_matrix::Format;
use spsel_ml::cluster::online::OnlineKMeans;
use spsel_ml::FlatCentroids;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::Instant;

/// A streaming format selector built on incremental clustering.
#[derive(Debug, Clone)]
pub struct OnlineSelector {
    preprocessor: Preprocessor,
    clusters: OnlineKMeans,
    /// Per-cluster format label (`None` until a benchmark arrives).
    labels: Vec<Option<Format>>,
    /// Fallback when a cluster has no label yet.
    default: Format,
    /// Observations since the last benchmark, per cluster (staleness).
    unlabeled_observations: Vec<usize>,
}

/// The selector's answer for one streamed matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineDecision {
    /// Cluster the matrix joined (possibly freshly created).
    pub cluster: usize,
    /// Whether the matrix opened a new cluster.
    pub new_cluster: bool,
    /// Recommended format (the cluster label, or the default).
    pub format: Format,
    /// Whether benchmarking this matrix would label an unlabeled cluster —
    /// the caller should measure it and call
    /// [`OnlineSelector::report_benchmark`].
    pub benchmark_requested: bool,
}

impl OnlineSelector {
    /// Start from a fitted batch selector: the batch clustering seeds the
    /// online centroids, its cluster labels carry over, and the batch
    /// preprocessing pipeline is reused (transforms are corpus statistics,
    /// stable enough to freeze).
    ///
    /// `distance_threshold` controls when a streamed matrix is novel
    /// enough to open a new cluster; `max_clusters` bounds growth.
    pub fn from_batch(
        batch: &SemiSupervisedSelector,
        distance_threshold: f64,
        max_clusters: usize,
    ) -> Self {
        let clusters =
            OnlineKMeans::from_clustering(batch.clustering(), distance_threshold, max_clusters);
        let labels: Vec<Option<Format>> = batch.cluster_labels().iter().map(|&f| Some(f)).collect();
        let n = labels.len();
        OnlineSelector {
            preprocessor: batch.preprocessor().clone(),
            clusters,
            labels,
            default: Format::Csr,
            unlabeled_observations: vec![0; n],
        }
    }

    /// Current number of clusters.
    pub fn n_clusters(&self) -> usize {
        self.clusters.n_clusters()
    }

    /// Clusters still waiting for a benchmark label.
    pub fn unlabeled_clusters(&self) -> usize {
        self.labels.iter().filter(|l| l.is_none()).count()
    }

    /// Stream one matrix: it joins (or opens) a cluster and receives that
    /// cluster's format recommendation. The decision says whether the
    /// caller should benchmark this matrix to label its cluster.
    pub fn observe(&mut self, features: &FeatureVector) -> OnlineDecision {
        let z = self.preprocessor.embed(features);
        let (cluster, new_cluster) = self.clusters.observe(&z);
        if new_cluster {
            self.labels.push(None);
            self.unlabeled_observations.push(0);
        }
        let benchmark_requested = self.labels[cluster].is_none();
        if benchmark_requested {
            self.unlabeled_observations[cluster] += 1;
        }
        OnlineDecision {
            cluster,
            new_cluster,
            format: self.labels[cluster].unwrap_or(self.default),
            benchmark_requested,
        }
    }

    /// Predict without updating the model.
    pub fn predict(&self, features: &FeatureVector) -> Format {
        let z = self.preprocessor.embed(features);
        let c = self.clusters.assign(&z);
        self.labels[c].unwrap_or(self.default)
    }

    /// The full decision [`observe`](Self::observe) would make, without
    /// updating the model: nearest cluster, its recommendation, and
    /// whether that cluster still wants a benchmark. `new_cluster` is
    /// always false — peeking never opens clusters.
    pub fn peek(&self, features: &FeatureVector) -> OnlineDecision {
        let z = self.preprocessor.embed(features);
        let cluster = self.clusters.assign(&z);
        OnlineDecision {
            cluster,
            new_cluster: false,
            format: self.labels[cluster].unwrap_or(self.default),
            benchmark_requested: self.labels[cluster].is_none(),
        }
    }

    /// Distance from a matrix to its nearest centroid in the embedded
    /// space — how novel the matrix looks to the current clustering.
    pub fn novelty(&self, features: &FeatureVector) -> f64 {
        self.clusters.novelty(&self.preprocessor.embed(features))
    }

    /// Observations absorbed by one cluster (seed mass plus streamed
    /// members), or 0 for an out-of-range index.
    pub fn cluster_count(&self, cluster: usize) -> usize {
        self.clusters.counts().get(cluster).copied().unwrap_or(0)
    }

    /// Whether a cluster currently carries a benchmark-derived label.
    pub fn is_labeled(&self, cluster: usize) -> bool {
        self.labels
            .get(cluster)
            .map(|l| l.is_some())
            .unwrap_or(false)
    }

    /// Feed back a measured best format for a matrix previously assigned
    /// to `cluster` (typically in response to `benchmark_requested`).
    /// Overwrites the cluster's label — the latest measurement wins, which
    /// is the right policy when the deployment platform changes over time.
    pub fn report_benchmark(&mut self, cluster: usize, best: Format) {
        assert!(cluster < self.labels.len(), "cluster out of range");
        self.labels[cluster] = Some(best);
        self.unlabeled_observations[cluster] = 0;
    }

    /// Matrices observed in unlabeled clusters since their last benchmark —
    /// a measure of how much prediction quality is degraded by missing
    /// labels.
    pub fn staleness(&self) -> usize {
        self.unlabeled_observations.iter().sum()
    }
}

/// One shard of the per-cluster label state. Cluster `c` lives in shard
/// `c % shards` at slot `c / shards`, so clusters created in increasing
/// index order always append at the end of their shard.
#[derive(Debug, Clone, Default)]
struct LabelShard {
    labels: Vec<Option<Format>>,
    unlabeled_observations: Vec<usize>,
}

/// An immutable view of the online state at one instant: the centroid
/// table plus the sharded label tables. Readers clone the `Arc` and then
/// work entirely off the snapshot — nothing they read can change under
/// them, and nothing they do can block a writer.
#[derive(Debug)]
pub struct OnlineSnapshot {
    version: u64,
    clusters: Arc<OnlineKMeans>,
    /// Flattened centroids with precomputed squared norms, derived from
    /// `clusters` when the snapshot is built. Read decisions answer
    /// nearest-centroid queries from this single contiguous buffer;
    /// publishes that leave the centroid table untouched (label edits)
    /// reuse the previous snapshot's buffer via the `Arc`.
    flat: Arc<FlatCentroids>,
    shards: Vec<Arc<LabelShard>>,
}

impl OnlineSnapshot {
    /// Monotonic publish counter (0 for the warm-start snapshot).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Current number of clusters.
    pub fn n_clusters(&self) -> usize {
        self.clusters.n_clusters()
    }

    /// Label carried by one cluster (`None` when unlabeled or out of
    /// range).
    pub fn label(&self, cluster: usize) -> Option<Format> {
        let shards = self.shards.len();
        self.shards[cluster % shards]
            .labels
            .get(cluster / shards)
            .copied()
            .flatten()
    }

    /// Whether a cluster currently carries a benchmark-derived label.
    pub fn is_labeled(&self, cluster: usize) -> bool {
        self.label(cluster).is_some()
    }

    /// Clusters still waiting for a benchmark label.
    pub fn unlabeled_clusters(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.labels.iter().filter(|l| l.is_none()).count())
            .sum()
    }

    /// Observations absorbed by unlabeled clusters since their last
    /// benchmark.
    pub fn staleness(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.unlabeled_observations.iter().sum::<usize>())
            .sum()
    }

    /// Observations absorbed by one cluster (seed mass plus streamed
    /// members), or 0 for an out-of-range index.
    pub fn cluster_count(&self, cluster: usize) -> usize {
        self.clusters.counts().get(cluster).copied().unwrap_or(0)
    }
}

/// Wall-clock nanoseconds one decision spent in each stage of the read
/// path (all zero for `learn: true` decisions, which are dominated by the
/// write side anyway). Returned by
/// [`ShardedOnlineSelector::decide_phased`] so the serving layer can
/// account its latency budget stage by stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionPhaseNs {
    /// Preprocessing: transforms, scaling, and PCA projection.
    pub embed_ns: u64,
    /// Nearest-centroid query over the flat centroid buffer.
    pub assign_ns: u64,
    /// Label and cluster-size lookup in the sharded tables.
    pub label_ns: u64,
}

thread_local! {
    /// Reusable embedding buffers for the read path: `(scratch, z)` where
    /// `scratch` carries the raw features through the in-place transform
    /// and scaling stages and `z` receives the final embedding. Sized on
    /// first use per thread, then allocation-free.
    static EMBED_SCRATCH: RefCell<(Vec<f64>, Vec<f64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Contention counters for one [`ShardedOnlineSelector`]: how many
/// decisions were served lock-free from a snapshot, how many took the
/// write side, how long writers waited, and how feedback spread over the
/// shards. All atomics — recording is wait-free and never perturbs the
/// hot path it measures.
#[derive(Debug)]
pub struct OnlineContention {
    read_decisions: AtomicU64,
    write_decisions: AtomicU64,
    write_lock_acquisitions: AtomicU64,
    write_lock_wait_us: AtomicU64,
    snapshot_swaps: AtomicU64,
    shard_feedbacks: Vec<AtomicU64>,
}

impl OnlineContention {
    fn new(shards: usize) -> Self {
        OnlineContention {
            read_decisions: AtomicU64::new(0),
            write_decisions: AtomicU64::new(0),
            write_lock_acquisitions: AtomicU64::new(0),
            write_lock_wait_us: AtomicU64::new(0),
            snapshot_swaps: AtomicU64::new(0),
            shard_feedbacks: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Plain-value snapshot of every counter.
    pub fn report(&self) -> ContentionReport {
        ContentionReport {
            read_decisions: self.read_decisions.load(Ordering::Relaxed),
            write_decisions: self.write_decisions.load(Ordering::Relaxed),
            write_lock_acquisitions: self.write_lock_acquisitions.load(Ordering::Relaxed),
            write_lock_wait_us: self.write_lock_wait_us.load(Ordering::Relaxed),
            snapshot_swaps: self.snapshot_swaps.load(Ordering::Relaxed),
            shard_feedbacks: self
                .shard_feedbacks
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Serializable-as-plain-values form of [`OnlineContention`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ContentionReport {
    /// Decisions answered from a snapshot without any write lock
    /// (`learn: false` selects).
    pub read_decisions: u64,
    /// Decisions that took the write side (`learn: true` observes).
    pub write_decisions: u64,
    /// Write-side lock acquisitions (centroid lock plus shard locks).
    pub write_lock_acquisitions: u64,
    /// Cumulative microseconds writers spent waiting for those locks.
    pub write_lock_wait_us: u64,
    /// Snapshots published (one per applied mutation).
    pub snapshot_swaps: u64,
    /// Feedback labels applied per shard, shard order.
    pub shard_feedbacks: Vec<u64>,
}

impl ContentionReport {
    /// Busiest-shard feedback count divided by the mean — 1.0 is a
    /// perfectly balanced write load, 0.0 when no feedback arrived.
    pub fn shard_imbalance(&self) -> f64 {
        let total: u64 = self.shard_feedbacks.iter().sum();
        if total == 0 || self.shard_feedbacks.is_empty() {
            return 0.0;
        }
        let max = *self.shard_feedbacks.iter().max().expect("non-empty") as f64;
        max / (total as f64 / self.shard_feedbacks.len() as f64)
    }
}

/// The full answer to one streamed decision, read or write path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineView {
    /// The decision itself (cluster, format, benchmark request).
    pub decision: OnlineDecision,
    /// Distance to the nearest centroid *before* this observation moved
    /// (or created) one — the novelty that was judged against the
    /// threshold.
    pub distance: f64,
    /// Occupancy of the decided cluster after the decision.
    pub cluster_size: usize,
    /// Version of the snapshot the decision was made against (the newly
    /// published one on the write path).
    pub snapshot_version: u64,
}

/// What a feedback label changed, for the caller's reply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineFeedbackView {
    /// Clusters still waiting for a benchmark label, post-update.
    pub unlabeled_clusters: usize,
    /// Staleness post-update (the labeled cluster's count was cleared).
    pub staleness: usize,
    /// Version of the snapshot the label landed in.
    pub snapshot_version: u64,
}

/// A serializable export of one selector's complete online state: the
/// centroid table plus the label tables flattened back into cluster
/// order. This is the unit a checkpoint persists and a replica installs —
/// [`ShardedOnlineSelector::export_state`] produces it and
/// [`ShardedOnlineSelector::install_state`] makes a selector serve it,
/// independent of how many write shards either side runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineStateData {
    /// The incremental clustering (centroids, counts, threshold, cap).
    pub clusters: OnlineKMeans,
    /// Per-cluster format label, cluster order (`None` when unlabeled).
    pub labels: Vec<Option<Format>>,
    /// Per-cluster observations since the last benchmark, cluster order.
    pub unlabeled_observations: Vec<usize>,
}

/// Concurrent streaming selector: lock-free read decisions from an
/// atomically-swapped snapshot, sharded write side for mutations. See
/// the module docs for the locking design; sequential use is
/// bit-identical to [`OnlineSelector`] (proved in
/// `crates/core/tests/online.rs`).
#[derive(Debug)]
pub struct ShardedOnlineSelector {
    preprocessor: Preprocessor,
    default: Format,
    snapshot: RwLock<Arc<OnlineSnapshot>>,
    /// Serializes centroid mutations: running-mean updates and cluster
    /// creation are order-dependent, so observes apply one at a time.
    centroid_lock: Mutex<()>,
    /// One lock per label shard; feedback takes only its cluster's
    /// shard lock, never the centroid lock.
    shard_locks: Vec<Mutex<()>>,
    contention: OnlineContention,
}

impl ShardedOnlineSelector {
    /// Warm-start from a fitted batch selector, exactly like
    /// [`OnlineSelector::from_batch`], with the label table split over
    /// `shards` write shards (clamped to at least 1).
    pub fn from_batch(
        batch: &SemiSupervisedSelector,
        distance_threshold: f64,
        max_clusters: usize,
        shards: usize,
    ) -> Self {
        let shards = shards.max(1);
        let clusters =
            OnlineKMeans::from_clustering(batch.clustering(), distance_threshold, max_clusters);
        let mut tables = vec![LabelShard::default(); shards];
        for (c, &label) in batch.cluster_labels().iter().enumerate() {
            tables[c % shards].labels.push(Some(label));
            tables[c % shards].unlabeled_observations.push(0);
        }
        let flat = Arc::new(clusters.flatten());
        ShardedOnlineSelector {
            preprocessor: batch.preprocessor().clone(),
            default: Format::Csr,
            snapshot: RwLock::new(Arc::new(OnlineSnapshot {
                version: 0,
                clusters: Arc::new(clusters),
                flat,
                shards: tables.into_iter().map(Arc::new).collect(),
            })),
            centroid_lock: Mutex::new(()),
            shard_locks: (0..shards).map(|_| Mutex::new(())).collect(),
            contention: OnlineContention::new(shards),
        }
    }

    /// Number of write shards the label table is split over.
    pub fn shards(&self) -> usize {
        self.shard_locks.len()
    }

    /// The selector's contention counters.
    pub fn contention(&self) -> &OnlineContention {
        &self.contention
    }

    /// The current snapshot. The internal read guard is held only long
    /// enough to clone the `Arc`; all reads off the returned snapshot are
    /// lock-free.
    pub fn snapshot(&self) -> Arc<OnlineSnapshot> {
        Arc::clone(&self.snapshot.read().expect("snapshot slot poisoned"))
    }

    /// Acquire a write-side lock, charging the wait to the counters.
    fn lock_timed<'a>(&self, lock: &'a Mutex<()>) -> MutexGuard<'a, ()> {
        let start = Instant::now();
        let guard = lock.lock().expect("online write lock poisoned");
        self.contention
            .write_lock_acquisitions
            .fetch_add(1, Ordering::Relaxed);
        let waited = start.elapsed().as_micros() as u64;
        if waited > 0 {
            self.contention
                .write_lock_wait_us
                .fetch_add(waited, Ordering::Relaxed);
        }
        guard
    }

    /// Atomically replace the snapshot with `f(current)`. The swap lock
    /// is exclusive but brief: `f` only splices prebuilt `Arc`s (or a
    /// one-entry label edit) into the current snapshot.
    fn publish<F>(&self, f: F) -> Arc<OnlineSnapshot>
    where
        F: FnOnce(&OnlineSnapshot) -> OnlineSnapshot,
    {
        let mut slot = self.snapshot.write().expect("snapshot slot poisoned");
        let next = Arc::new(f(&slot));
        *slot = Arc::clone(&next);
        self.contention
            .snapshot_swaps
            .fetch_add(1, Ordering::Relaxed);
        next
    }

    /// Answer one streamed matrix. `learn: false` is the read path: the
    /// decision [`OnlineSelector::peek`] would make, served entirely from
    /// the current snapshot without acquiring any write lock. `learn:
    /// true` is the write path: [`OnlineSelector::observe`] semantics,
    /// serialized with other observes and published as a fresh snapshot
    /// before this method returns.
    pub fn decide(&self, features: &FeatureVector, learn: bool) -> OnlineView {
        self.decide_phased(features, learn).0
    }

    /// [`Self::decide`] plus per-phase wall-clock nanoseconds, so the
    /// serving layer can account the decision budget stage by stage.
    pub fn decide_phased(
        &self,
        features: &FeatureVector,
        learn: bool,
    ) -> (OnlineView, DecisionPhaseNs) {
        let mut phases = DecisionPhaseNs::default();
        if !learn {
            // Steady-state read path: allocation-free. The embedding runs
            // through thread-local scratch, the nearest-centroid query
            // walks the snapshot's flat buffer, and the reply is built
            // from plain copies. (`resize` on the warm scratch is a no-op;
            // the only allocations ever are the first call on a thread or
            // a model hot-swap that widens the embedding.)
            let view = EMBED_SCRATCH.with(|cell| {
                let (scratch, z) = &mut *cell.borrow_mut();
                let t0 = Instant::now();
                scratch.resize(features.as_slice().len(), 0.0);
                z.resize(self.preprocessor.out_dim(), 0.0);
                self.preprocessor
                    .embed_into(features.as_slice(), scratch, z);
                let t1 = Instant::now();
                let snap = self.snapshot();
                self.contention
                    .read_decisions
                    .fetch_add(1, Ordering::Relaxed);
                let (cluster, distance) = snap.flat.nearest(z).expect("no observations yet");
                let t2 = Instant::now();
                let label = snap.label(cluster);
                let cluster_size = snap.cluster_count(cluster);
                let t3 = Instant::now();
                phases.embed_ns = (t1 - t0).as_nanos() as u64;
                phases.assign_ns = (t2 - t1).as_nanos() as u64;
                phases.label_ns = (t3 - t2).as_nanos() as u64;
                OnlineView {
                    decision: OnlineDecision {
                        cluster,
                        new_cluster: false,
                        format: label.unwrap_or(self.default),
                        benchmark_requested: label.is_none(),
                    },
                    distance,
                    cluster_size,
                    snapshot_version: snap.version,
                }
            });
            return (view, phases);
        }

        let z = self.preprocessor.embed(features);
        let _centroids = self.lock_timed(&self.centroid_lock);
        // The centroid lock makes this snapshot's centroid table
        // authoritative: only observes mutate it, and they all hold the
        // lock. The heavy work — cloning and updating the table — happens
        // here, outside the swap lock.
        let base = self.snapshot();
        let distance = base.clusters.novelty(&z);
        let mut clusters = (*base.clusters).clone();
        let (cluster, new_cluster) = clusters.observe(&z);
        let clusters = Arc::new(clusters);
        let flat = Arc::new(clusters.flatten());
        let n_shards = self.shard_locks.len();
        let shard = cluster % n_shards;

        let mut format = self.default;
        let mut benchmark_requested = true;
        let snap = if new_cluster {
            // Appending the new cluster's label slot touches shard state,
            // so take that shard's lock (excluding concurrent feedback to
            // the same region) before splicing in the update.
            let _labels = self.lock_timed(&self.shard_locks[shard]);
            self.publish(|cur| {
                let mut shards = cur.shards.clone();
                let mut data = (**shards.get(shard).expect("shard exists")).clone();
                data.labels.push(None);
                data.unlabeled_observations.push(1);
                shards[shard] = Arc::new(data);
                OnlineSnapshot {
                    version: cur.version + 1,
                    clusters: Arc::clone(&clusters),
                    flat: Arc::clone(&flat),
                    shards,
                }
            })
        } else {
            let _labels = self.lock_timed(&self.shard_locks[shard]);
            self.publish(|cur| {
                // Read the joined cluster's label at publish time so a
                // feedback that just landed is honored.
                let label = cur.label(cluster);
                format = label.unwrap_or(self.default);
                benchmark_requested = label.is_none();
                let shards = if benchmark_requested {
                    let mut shards = cur.shards.clone();
                    let mut data = (**shards.get(shard).expect("shard exists")).clone();
                    data.unlabeled_observations[cluster / n_shards] += 1;
                    shards[shard] = Arc::new(data);
                    shards
                } else {
                    cur.shards.clone()
                };
                OnlineSnapshot {
                    version: cur.version + 1,
                    clusters: Arc::clone(&clusters),
                    flat: Arc::clone(&flat),
                    shards,
                }
            })
        };
        self.contention
            .write_decisions
            .fetch_add(1, Ordering::Relaxed);
        (
            OnlineView {
                decision: OnlineDecision {
                    cluster,
                    new_cluster,
                    format,
                    benchmark_requested,
                },
                distance,
                cluster_size: snap.cluster_count(cluster),
                snapshot_version: snap.version,
            },
            phases,
        )
    }

    /// Feed back a measured best format for `cluster`, taking only that
    /// cluster's shard lock — feedback never blocks observations landing
    /// in other shards, and never blocks read decisions at all. Returns
    /// `None` (applying nothing) when the cluster does not exist.
    pub fn report_benchmark(&self, cluster: usize, best: Format) -> Option<OnlineFeedbackView> {
        // Cluster indices only ever grow, so a bounds check against the
        // current snapshot stays valid under the shard lock below.
        if cluster >= self.snapshot().n_clusters() {
            return None;
        }
        let n_shards = self.shard_locks.len();
        let shard = cluster % n_shards;
        let _labels = self.lock_timed(&self.shard_locks[shard]);
        self.contention.shard_feedbacks[shard].fetch_add(1, Ordering::Relaxed);
        let snap = self.publish(|cur| {
            let mut shards = cur.shards.clone();
            let mut data = (**shards.get(shard).expect("shard exists")).clone();
            data.labels[cluster / n_shards] = Some(best);
            data.unlabeled_observations[cluster / n_shards] = 0;
            shards[shard] = Arc::new(data);
            OnlineSnapshot {
                version: cur.version + 1,
                clusters: Arc::clone(&cur.clusters),
                flat: Arc::clone(&cur.flat),
                shards,
            }
        });
        Some(OnlineFeedbackView {
            unlabeled_clusters: snap.unlabeled_clusters(),
            staleness: snap.staleness(),
            snapshot_version: snap.version,
        })
    }

    /// Flatten the current snapshot into a serializable
    /// [`OnlineStateData`]: the centroid table plus the label tables in
    /// cluster order. Taken from one snapshot, so the export is an
    /// instant-consistent cut even under concurrent mutation.
    pub fn export_state(&self) -> OnlineStateData {
        let snap = self.snapshot();
        let n = snap.n_clusters();
        let n_shards = snap.shards.len();
        let mut labels = Vec::with_capacity(n);
        let mut unlabeled_observations = Vec::with_capacity(n);
        for c in 0..n {
            let shard = &snap.shards[c % n_shards];
            labels.push(shard.labels.get(c / n_shards).copied().flatten());
            unlabeled_observations.push(
                shard
                    .unlabeled_observations
                    .get(c / n_shards)
                    .copied()
                    .unwrap_or(0),
            );
        }
        OnlineStateData {
            clusters: (*snap.clusters).clone(),
            labels,
            unlabeled_observations,
        }
    }

    /// Replace the selector's entire online state with an exported one
    /// (a checkpoint being restored, or a leader state a replica is
    /// installing), re-sharded for this selector's shard count. A
    /// lifecycle operation, not a serving mutation: it takes the whole
    /// write side exclusively but does not count toward the contention
    /// or snapshot-swap counters.
    pub fn install_state(&self, state: &OnlineStateData) {
        let _centroids = self.centroid_lock.lock().expect("centroid lock poisoned");
        let _shards: Vec<MutexGuard<'_, ()>> = self
            .shard_locks
            .iter()
            .map(|l| l.lock().expect("shard lock poisoned"))
            .collect();
        let n_shards = self.shard_locks.len();
        let mut tables = vec![LabelShard::default(); n_shards];
        for (c, label) in state.labels.iter().enumerate() {
            tables[c % n_shards].labels.push(*label);
            tables[c % n_shards]
                .unlabeled_observations
                .push(state.unlabeled_observations.get(c).copied().unwrap_or(0));
        }
        let mut slot = self.snapshot.write().expect("snapshot slot poisoned");
        *slot = Arc::new(OnlineSnapshot {
            version: slot.version + 1,
            clusters: Arc::new(state.clusters.clone()),
            flat: Arc::new(state.clusters.flatten()),
            shards: tables.into_iter().map(Arc::new).collect(),
        });
    }

    /// Nearest-cluster prediction from the current snapshot (read path).
    pub fn predict(&self, features: &FeatureVector) -> Format {
        self.decide(features, false).decision.format
    }

    /// Current number of clusters.
    pub fn n_clusters(&self) -> usize {
        self.snapshot().n_clusters()
    }

    /// Clusters still waiting for a benchmark label.
    pub fn unlabeled_clusters(&self) -> usize {
        self.snapshot().unlabeled_clusters()
    }

    /// Observations absorbed by unlabeled clusters since their last
    /// benchmark.
    pub fn staleness(&self) -> usize {
        self.snapshot().staleness()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semi::{ClusterMethod, Labeler, SemiConfig};
    use spsel_matrix::{gen, CsrMatrix};

    fn batch_selector() -> (SemiSupervisedSelector, Vec<FeatureVector>) {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for s in 0..15u64 {
            features.push(FeatureVector::from_csr(&CsrMatrix::from(&gen::stencil2d(
                10 + s as usize % 5,
                s,
            ))));
            labels.push(Format::Ell);
            features.push(FeatureVector::from_csr(&CsrMatrix::from(&gen::power_law(
                300, 300, 2, 2.4, 120, s,
            ))));
            labels.push(Format::Csr);
        }
        let sel = SemiSupervisedSelector::fit(
            &features,
            &labels,
            SemiConfig::new(ClusterMethod::KMeans { nc: 6 }, Labeler::Vote, 3),
        );
        (sel, features)
    }

    #[test]
    fn warm_start_preserves_batch_predictions() {
        let (batch, features) = batch_selector();
        let online = OnlineSelector::from_batch(&batch, 0.5, 32);
        for f in &features {
            assert_eq!(online.predict(f), batch.predict(f));
        }
        assert_eq!(online.unlabeled_clusters(), 0);
    }

    #[test]
    fn novel_family_requests_benchmark_then_uses_it() {
        let (batch, _) = batch_selector();
        let mut online = OnlineSelector::from_batch(&batch, 0.3, 32);
        // A family the batch never saw: huge row-skewed matrices.
        let novel =
            FeatureVector::from_csr(&CsrMatrix::from(&gen::bimodal(2000, 2000, 3, 40, 0.3, 8)));
        let d = online.observe(&novel);
        if d.new_cluster {
            assert!(
                d.benchmark_requested,
                "new cluster must ask for a benchmark"
            );
            assert_eq!(d.format, Format::Csr, "default before any benchmark");
            online.report_benchmark(d.cluster, Format::Hyb);
            assert_eq!(online.predict(&novel), Format::Hyb);
            assert_eq!(online.unlabeled_clusters(), 0);
        } else {
            // Absorbed into an existing (labeled) cluster: no benchmark.
            assert!(!d.benchmark_requested);
        }
    }

    #[test]
    fn exported_state_installs_identically_across_shard_counts() {
        let (batch, features) = batch_selector();
        let donor = ShardedOnlineSelector::from_batch(&batch, 0.3, 64, 4);
        // Mutate: open clusters and label one of them.
        let novel =
            FeatureVector::from_csr(&CsrMatrix::from(&gen::bimodal(2000, 2000, 3, 40, 0.3, 8)));
        let d = donor.decide(&novel, true);
        donor.report_benchmark(d.decision.cluster, Format::Hyb);
        let state = donor.export_state();
        assert_eq!(state.labels.len(), donor.n_clusters());
        assert_eq!(state.unlabeled_observations.len(), donor.n_clusters());

        // Install into selectors with different shard counts: decisions
        // and bookkeeping must match the donor exactly.
        for shards in [1usize, 3, 8] {
            let clone = ShardedOnlineSelector::from_batch(&batch, 0.3, 64, shards);
            clone.install_state(&state);
            assert_eq!(clone.n_clusters(), donor.n_clusters());
            assert_eq!(clone.unlabeled_clusters(), donor.unlabeled_clusters());
            assert_eq!(clone.staleness(), donor.staleness());
            assert_eq!(clone.predict(&novel), donor.predict(&novel));
            for f in &features {
                assert_eq!(clone.predict(f), donor.predict(f));
            }
        }

        // And the export itself round-trips through JSON bit-exactly.
        let json = serde_json::to_string(&state).unwrap();
        let back: OnlineStateData = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn staleness_counts_unlabeled_observations() {
        let (batch, _) = batch_selector();
        let mut online = OnlineSelector::from_batch(&batch, 0.05, 64);
        let mut requested = 0;
        for s in 0..10u64 {
            let f = FeatureVector::from_csr(&CsrMatrix::from(&gen::multi_diagonal(
                700 + s as usize * 13,
                7,
                s,
            )));
            let d = online.observe(&f);
            requested += d.benchmark_requested as usize;
        }
        assert_eq!(online.staleness(), requested);
        // Labeling every unlabeled cluster clears the staleness.
        let unlabeled: Vec<usize> = (0..online.n_clusters())
            .filter(|&c| online.labels[c].is_none())
            .collect();
        for c in unlabeled {
            online.report_benchmark(c, Format::Ell);
        }
        assert_eq!(online.staleness(), 0);
        assert_eq!(online.unlabeled_clusters(), 0);
    }
}
