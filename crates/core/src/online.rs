//! The online classification system the paper's conclusion sketches:
//! "an online classification system that makes full use of the
//! clustering-based approach by being able to learn from SpMV operations
//! while they are being performed."
//!
//! [`OnlineSelector`] wraps the incremental K-Means extension with
//! per-cluster format labels and a benchmark queue: matrices stream in,
//! join or open clusters, and the selector tells the caller which
//! matrices are worth benchmarking (new or unlabeled clusters). Feeding
//! back one measured label per new cluster keeps the selector current
//! without ever refitting.

use crate::semi::SemiSupervisedSelector;
use spsel_features::{FeatureVector, Preprocessor};
use spsel_matrix::Format;
use spsel_ml::cluster::online::OnlineKMeans;

/// A streaming format selector built on incremental clustering.
#[derive(Debug, Clone)]
pub struct OnlineSelector {
    preprocessor: Preprocessor,
    clusters: OnlineKMeans,
    /// Per-cluster format label (`None` until a benchmark arrives).
    labels: Vec<Option<Format>>,
    /// Fallback when a cluster has no label yet.
    default: Format,
    /// Observations since the last benchmark, per cluster (staleness).
    unlabeled_observations: Vec<usize>,
}

/// The selector's answer for one streamed matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineDecision {
    /// Cluster the matrix joined (possibly freshly created).
    pub cluster: usize,
    /// Whether the matrix opened a new cluster.
    pub new_cluster: bool,
    /// Recommended format (the cluster label, or the default).
    pub format: Format,
    /// Whether benchmarking this matrix would label an unlabeled cluster —
    /// the caller should measure it and call
    /// [`OnlineSelector::report_benchmark`].
    pub benchmark_requested: bool,
}

impl OnlineSelector {
    /// Start from a fitted batch selector: the batch clustering seeds the
    /// online centroids, its cluster labels carry over, and the batch
    /// preprocessing pipeline is reused (transforms are corpus statistics,
    /// stable enough to freeze).
    ///
    /// `distance_threshold` controls when a streamed matrix is novel
    /// enough to open a new cluster; `max_clusters` bounds growth.
    pub fn from_batch(
        batch: &SemiSupervisedSelector,
        distance_threshold: f64,
        max_clusters: usize,
    ) -> Self {
        let clusters =
            OnlineKMeans::from_clustering(batch.clustering(), distance_threshold, max_clusters);
        let labels: Vec<Option<Format>> = batch.cluster_labels().iter().map(|&f| Some(f)).collect();
        let n = labels.len();
        OnlineSelector {
            preprocessor: batch.preprocessor().clone(),
            clusters,
            labels,
            default: Format::Csr,
            unlabeled_observations: vec![0; n],
        }
    }

    /// Current number of clusters.
    pub fn n_clusters(&self) -> usize {
        self.clusters.n_clusters()
    }

    /// Clusters still waiting for a benchmark label.
    pub fn unlabeled_clusters(&self) -> usize {
        self.labels.iter().filter(|l| l.is_none()).count()
    }

    /// Stream one matrix: it joins (or opens) a cluster and receives that
    /// cluster's format recommendation. The decision says whether the
    /// caller should benchmark this matrix to label its cluster.
    pub fn observe(&mut self, features: &FeatureVector) -> OnlineDecision {
        let z = self.preprocessor.embed(features);
        let (cluster, new_cluster) = self.clusters.observe(&z);
        if new_cluster {
            self.labels.push(None);
            self.unlabeled_observations.push(0);
        }
        let benchmark_requested = self.labels[cluster].is_none();
        if benchmark_requested {
            self.unlabeled_observations[cluster] += 1;
        }
        OnlineDecision {
            cluster,
            new_cluster,
            format: self.labels[cluster].unwrap_or(self.default),
            benchmark_requested,
        }
    }

    /// Predict without updating the model.
    pub fn predict(&self, features: &FeatureVector) -> Format {
        let z = self.preprocessor.embed(features);
        let c = self.clusters.assign(&z);
        self.labels[c].unwrap_or(self.default)
    }

    /// The full decision [`observe`](Self::observe) would make, without
    /// updating the model: nearest cluster, its recommendation, and
    /// whether that cluster still wants a benchmark. `new_cluster` is
    /// always false — peeking never opens clusters.
    pub fn peek(&self, features: &FeatureVector) -> OnlineDecision {
        let z = self.preprocessor.embed(features);
        let cluster = self.clusters.assign(&z);
        OnlineDecision {
            cluster,
            new_cluster: false,
            format: self.labels[cluster].unwrap_or(self.default),
            benchmark_requested: self.labels[cluster].is_none(),
        }
    }

    /// Distance from a matrix to its nearest centroid in the embedded
    /// space — how novel the matrix looks to the current clustering.
    pub fn novelty(&self, features: &FeatureVector) -> f64 {
        self.clusters.novelty(&self.preprocessor.embed(features))
    }

    /// Observations absorbed by one cluster (seed mass plus streamed
    /// members), or 0 for an out-of-range index.
    pub fn cluster_count(&self, cluster: usize) -> usize {
        self.clusters.counts().get(cluster).copied().unwrap_or(0)
    }

    /// Whether a cluster currently carries a benchmark-derived label.
    pub fn is_labeled(&self, cluster: usize) -> bool {
        self.labels
            .get(cluster)
            .map(|l| l.is_some())
            .unwrap_or(false)
    }

    /// Feed back a measured best format for a matrix previously assigned
    /// to `cluster` (typically in response to `benchmark_requested`).
    /// Overwrites the cluster's label — the latest measurement wins, which
    /// is the right policy when the deployment platform changes over time.
    pub fn report_benchmark(&mut self, cluster: usize, best: Format) {
        assert!(cluster < self.labels.len(), "cluster out of range");
        self.labels[cluster] = Some(best);
        self.unlabeled_observations[cluster] = 0;
    }

    /// Matrices observed in unlabeled clusters since their last benchmark —
    /// a measure of how much prediction quality is degraded by missing
    /// labels.
    pub fn staleness(&self) -> usize {
        self.unlabeled_observations.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semi::{ClusterMethod, Labeler, SemiConfig};
    use spsel_matrix::{gen, CsrMatrix};

    fn batch_selector() -> (SemiSupervisedSelector, Vec<FeatureVector>) {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for s in 0..15u64 {
            features.push(FeatureVector::from_csr(&CsrMatrix::from(&gen::stencil2d(
                10 + s as usize % 5,
                s,
            ))));
            labels.push(Format::Ell);
            features.push(FeatureVector::from_csr(&CsrMatrix::from(&gen::power_law(
                300, 300, 2, 2.4, 120, s,
            ))));
            labels.push(Format::Csr);
        }
        let sel = SemiSupervisedSelector::fit(
            &features,
            &labels,
            SemiConfig::new(ClusterMethod::KMeans { nc: 6 }, Labeler::Vote, 3),
        );
        (sel, features)
    }

    #[test]
    fn warm_start_preserves_batch_predictions() {
        let (batch, features) = batch_selector();
        let online = OnlineSelector::from_batch(&batch, 0.5, 32);
        for f in &features {
            assert_eq!(online.predict(f), batch.predict(f));
        }
        assert_eq!(online.unlabeled_clusters(), 0);
    }

    #[test]
    fn novel_family_requests_benchmark_then_uses_it() {
        let (batch, _) = batch_selector();
        let mut online = OnlineSelector::from_batch(&batch, 0.3, 32);
        // A family the batch never saw: huge row-skewed matrices.
        let novel =
            FeatureVector::from_csr(&CsrMatrix::from(&gen::bimodal(2000, 2000, 3, 40, 0.3, 8)));
        let d = online.observe(&novel);
        if d.new_cluster {
            assert!(
                d.benchmark_requested,
                "new cluster must ask for a benchmark"
            );
            assert_eq!(d.format, Format::Csr, "default before any benchmark");
            online.report_benchmark(d.cluster, Format::Hyb);
            assert_eq!(online.predict(&novel), Format::Hyb);
            assert_eq!(online.unlabeled_clusters(), 0);
        } else {
            // Absorbed into an existing (labeled) cluster: no benchmark.
            assert!(!d.benchmark_requested);
        }
    }

    #[test]
    fn staleness_counts_unlabeled_observations() {
        let (batch, _) = batch_selector();
        let mut online = OnlineSelector::from_batch(&batch, 0.05, 64);
        let mut requested = 0;
        for s in 0..10u64 {
            let f = FeatureVector::from_csr(&CsrMatrix::from(&gen::multi_diagonal(
                700 + s as usize * 13,
                7,
                s,
            )));
            let d = online.observe(&f);
            requested += d.benchmark_requested as usize;
        }
        assert_eq!(online.staleness(), requested);
        // Labeling every unlabeled cluster clears the staleness.
        let unlabeled: Vec<usize> = (0..online.n_clusters())
            .filter(|&c| online.labels[c].is_none())
            .collect();
        for c in unlabeled {
            online.report_benchmark(c, Format::Ell);
        }
        assert_eq!(online.staleness(), 0);
        assert_eq!(online.unlabeled_clusters(), 0);
    }
}
