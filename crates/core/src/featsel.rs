//! Per-model feature-subset selection.
//!
//! The paper (Section 5.1): "Each supervised algorithm uses an optimized
//! subset of the features from Table 1. The input features are selected
//! based on the best performance for that method." This module implements
//! that optimization as greedy forward selection under cross-validated
//! accuracy.

use serde::{Deserialize, Serialize};
use spsel_features::{FeatureId, FeatureVector};
use spsel_matrix::Format;
use spsel_ml::cv::stratified_kfold;
use spsel_ml::forest::{RandomForest, RandomForestParams};
use spsel_ml::knn::KnnClassifier;
use spsel_ml::tree::{DecisionTree, DecisionTreeParams};
use spsel_ml::{accuracy, Classifier, Dataset};

/// Model families supported by the feature-selection search (small,
/// fast-to-refit models — the search fits hundreds of them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchModel {
    /// Shallow decision tree.
    Dt,
    /// Small random forest.
    Rf,
    /// 5-nearest-neighbors.
    Knn,
}

fn fit_predict(model: SearchModel, train: &Dataset, test_x: &[Vec<f64>], seed: u64) -> Vec<usize> {
    match model {
        SearchModel::Dt => {
            let mut m = DecisionTree::new(DecisionTreeParams {
                max_depth: Some(8),
                seed,
                ..Default::default()
            });
            m.fit(train);
            m.predict(test_x)
        }
        SearchModel::Rf => {
            let mut m = RandomForest::new(RandomForestParams {
                n_estimators: 15,
                max_depth: Some(6),
                seed,
                ..Default::default()
            });
            m.fit(train);
            m.predict(test_x)
        }
        SearchModel::Knn => {
            let mut m = KnnClassifier::new(5);
            m.fit(train);
            m.predict(test_x)
        }
    }
}

/// Cross-validated accuracy of `model` on the given feature subset.
pub fn subset_cv_accuracy(
    features: &[FeatureVector],
    labels: &[Format],
    subset: &[FeatureId],
    model: SearchModel,
    folds: usize,
    seed: u64,
) -> f64 {
    assert!(!subset.is_empty(), "need at least one feature");
    let x: Vec<Vec<f64>> = features.iter().map(|f| f.select(subset)).collect();
    let y: Vec<usize> = labels.iter().map(|l| l.index()).collect();
    let mut accs = Vec::new();
    for (train, test) in stratified_kfold(&y, Format::COUNT, folds, seed) {
        let train_data = Dataset::new(
            train.iter().map(|&i| x[i].clone()).collect(),
            train.iter().map(|&i| y[i]).collect(),
            Format::COUNT,
        );
        let test_x: Vec<Vec<f64>> = test.iter().map(|&i| x[i].clone()).collect();
        let test_y: Vec<usize> = test.iter().map(|&i| y[i]).collect();
        let preds = fit_predict(model, &train_data, &test_x, seed);
        accs.push(accuracy(&test_y, &preds, Format::COUNT));
    }
    accs.iter().sum::<f64>() / accs.len() as f64
}

/// Result of the greedy search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureSelection {
    /// Selected features in the order they were added.
    pub features: Vec<FeatureId>,
    /// Cross-validated accuracy after each addition.
    pub accuracy_trace: Vec<f64>,
}

/// Greedy forward selection: start empty, repeatedly add the feature that
/// improves cross-validated accuracy the most, stop at `max_features` or
/// when no candidate improves the score by more than `min_gain`.
pub fn greedy_forward_selection(
    features: &[FeatureVector],
    labels: &[Format],
    model: SearchModel,
    max_features: usize,
    min_gain: f64,
    folds: usize,
    seed: u64,
) -> FeatureSelection {
    assert_eq!(features.len(), labels.len());
    assert!(max_features >= 1);
    let mut selected: Vec<FeatureId> = Vec::new();
    let mut remaining: Vec<FeatureId> = FeatureId::ALL.to_vec();
    let mut trace = Vec::new();
    let mut best_so_far = 0.0f64;

    while selected.len() < max_features && !remaining.is_empty() {
        let mut best: Option<(usize, f64)> = None;
        for (pos, &cand) in remaining.iter().enumerate() {
            let mut subset = selected.clone();
            subset.push(cand);
            let acc = subset_cv_accuracy(features, labels, &subset, model, folds, seed);
            if best.as_ref().is_none_or(|&(_, b)| acc > b) {
                best = Some((pos, acc));
            }
        }
        let (pos, acc) = best.expect("remaining is non-empty");
        if !selected.is_empty() && acc < best_so_far + min_gain {
            break;
        }
        best_so_far = acc;
        selected.push(remaining.remove(pos));
        trace.push(acc);
    }
    FeatureSelection {
        features: selected,
        accuracy_trace: trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spsel_matrix::{gen, CsrMatrix};

    /// A problem where one feature (nnz_max, separating uniform stencils
    /// from heavy-tailed graphs) carries most of the signal.
    fn problem() -> (Vec<FeatureVector>, Vec<Format>) {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for s in 0..12u64 {
            features.push(FeatureVector::from_csr(&CsrMatrix::from(&gen::stencil2d(
                9 + s as usize % 5,
                s,
            ))));
            labels.push(Format::Ell);
            features.push(FeatureVector::from_csr(&CsrMatrix::from(&gen::power_law(
                250, 250, 2, 2.2, 120, s,
            ))));
            labels.push(Format::Csr);
        }
        (features, labels)
    }

    #[test]
    fn greedy_selection_finds_a_small_accurate_subset() {
        let (features, labels) = problem();
        let sel = greedy_forward_selection(&features, &labels, SearchModel::Dt, 4, 1e-6, 3, 7);
        assert!(!sel.features.is_empty());
        assert!(sel.features.len() <= 4);
        assert_eq!(sel.features.len(), sel.accuracy_trace.len());
        // A single well-chosen feature already separates this problem.
        assert!(
            sel.accuracy_trace[0] > 0.9,
            "first feature accuracy {}",
            sel.accuracy_trace[0]
        );
    }

    #[test]
    fn trace_is_monotone_under_min_gain() {
        let (features, labels) = problem();
        let sel = greedy_forward_selection(&features, &labels, SearchModel::Knn, 5, 0.0, 3, 3);
        for w in sel.accuracy_trace.windows(2) {
            assert!(w[1] + 1e-9 >= w[0], "greedy step decreased accuracy: {w:?}");
        }
    }

    #[test]
    fn subset_accuracy_bounded() {
        let (features, labels) = problem();
        let acc = subset_cv_accuracy(
            &features,
            &labels,
            &[FeatureId::NRows, FeatureId::NnzMax],
            SearchModel::Rf,
            3,
            1,
        );
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    #[should_panic]
    fn empty_subset_rejected() {
        let (features, labels) = problem();
        subset_cv_accuracy(&features, &labels, &[], SearchModel::Dt, 3, 1);
    }
}
