//! Run instrumentation: phase wall-clock timers and cache counters,
//! serialized as the JSON run report written next to each table's output.
//!
//! The report answers, for any regenerated table: how long each pipeline
//! phase took, whether the on-disk cache was used, and how effective it
//! was — which is what makes the "cold run is parallel" and "warm run is
//! cached" claims auditable instead of anecdotal.

use serde::{Deserialize, Serialize};
use spsel_gpusim::{FaultCounters, FaultRates};
use std::time::Instant;

/// Wall-clock duration of one pipeline phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSample {
    /// Phase name (`corpus_build`, `benchmark`, `experiment`, ...).
    pub name: String,
    /// Elapsed wall-clock seconds.
    pub seconds: f64,
}

/// Snapshot of the cache counters at report time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheReport {
    /// Whether the cache was consulted at all (false under
    /// `SPSEL_NO_CACHE=1` or when running without a cache directory).
    pub enabled: bool,
    /// Artifacts served from disk.
    pub hits: u64,
    /// Artifacts that had to be recomputed (absent, stale, or corrupt).
    pub misses: u64,
    /// Artifacts written back to disk this run.
    pub stores: u64,
    /// Misses caused specifically by an unreadable (truncated or
    /// garbage) artifact, as opposed to an absent or stale one.
    pub corrupt: u64,
    /// Individual records (and benchmark cells) served from shard
    /// artifacts instead of being regenerated or re-benchmarked.
    pub record_hits: u64,
    /// Individual records (and benchmark cells) that had to be computed
    /// fresh and were written back into shard artifacts.
    pub record_misses: u64,
    /// Serve-time records appended to the corpus by `spsel corpus
    /// ingest` this run.
    pub records_ingested: u64,
    /// Experiment-phase results served from disk (each one skips a whole
    /// table's training/CV work).
    pub experiment_hits: u64,
    /// Experiment-phase results that had to be recomputed.
    pub experiment_misses: u64,
    /// Experiment-phase results written back to disk this run.
    pub experiment_stores: u64,
    /// Trained model artifacts served from disk (each one makes a warm
    /// `spsel train` rerun instant).
    pub model_hits: u64,
    /// Trained model artifacts that had to be retrained.
    pub model_misses: u64,
    /// Trained model artifacts written back to disk this run.
    pub model_stores: u64,
}

/// Snapshot of a serving process's counters (the `spsel-serve` daemon or
/// an in-process engine driven by `loadgen`): request mix, latency
/// quantiles from a monotonic clock, online-clustering activity, and how
/// much feedback the online loop absorbed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Requests received, all types (each batch counts once).
    pub requests: u64,
    /// `select` requests answered (batched selects count individually).
    pub select_requests: u64,
    /// `feedback` requests answered.
    pub feedback_requests: u64,
    /// `stats` requests answered.
    pub stats_requests: u64,
    /// `batch` envelopes received.
    pub batch_requests: u64,
    /// Largest number of selects carried by one batch envelope.
    pub max_batch_size: u64,
    /// Requests answered with an error envelope.
    pub errors: u64,
    /// Requests dropped because they exceeded their deadline.
    pub deadline_exceeded: u64,
    /// Selects answered from an already-labeled cluster (the serving
    /// analogue of a cache hit: no benchmark needed).
    pub cluster_hits: u64,
    /// Selects that opened a brand-new online cluster.
    pub new_clusters: u64,
    /// Selects that asked the client to benchmark (unlabeled cluster).
    pub benchmarks_requested: u64,
    /// Feedback labels applied to online clusters.
    pub feedback_applied: u64,
    /// Median request latency in microseconds (monotonic clock,
    /// log-bucketed histogram upper bound).
    pub p50_latency_us: f64,
    /// 99th-percentile request latency in microseconds.
    pub p99_latency_us: f64,
    /// Worst observed request latency in microseconds.
    pub max_latency_us: f64,
    /// `learn: false` selects with per-phase decision timing recorded
    /// (the denominator for the four `decision_*_ns` sums below).
    pub timed_decisions: u64,
    /// Cumulative nanoseconds those decisions spent extracting Table 1
    /// features from the matrix (single-pass extractor; zero for selects
    /// that supplied an inline feature vector).
    pub decision_extract_ns: u64,
    /// Cumulative nanoseconds spent embedding features (variance
    /// transforms, min-max scaling, PCA projection).
    pub decision_embed_ns: u64,
    /// Cumulative nanoseconds in the nearest-centroid query over the
    /// flat centroid buffer.
    pub decision_assign_ns: u64,
    /// Cumulative nanoseconds in cluster label and size lookups.
    pub decision_label_ns: u64,
    /// Median decision-path latency in microseconds (extract + embed +
    /// assign + label for one `learn: false` select, log-bucketed
    /// nanosecond histogram upper bound). Unlike `p50_latency_us` this
    /// excludes protocol parse/serialize and pipeline queue time, so it
    /// is the honest figure for the decision budget on a machine where
    /// clients and server share cores.
    pub decision_p50_us: f64,
    /// 99th-percentile decision-path latency in microseconds.
    pub decision_p99_us: f64,
    /// Decisions answered lock-free from an online snapshot
    /// (`learn: false` selects), summed over GPUs.
    pub read_decisions: u64,
    /// Decisions that took the online write path (`learn: true`).
    pub write_decisions: u64,
    /// Online write-side lock acquisitions (centroid + shard locks).
    pub write_lock_acquisitions: u64,
    /// Cumulative microseconds writers waited for online write locks.
    pub write_lock_wait_us: u64,
    /// Online snapshots published (one per applied mutation).
    pub snapshot_swaps: u64,
    /// Batch items skipped mid-compute by the cooperative deadline check.
    pub deadline_skipped: u64,
    /// Feedback records replayed from the journal at startup.
    pub journal_replayed: u64,
    /// Feedback records appended to the journal this run.
    pub journal_appended: u64,
    /// Journal lines skipped at replay (malformed or out-of-range).
    pub journal_skipped: u64,
    /// Requests answered with a `shed` envelope by admission control
    /// instead of being computed (slow reader, write buffer over the
    /// shed threshold).
    pub shed: u64,
    /// Connections accepted since startup.
    pub connections_accepted: u64,
    /// Connections refused at accept because the connection cap was
    /// reached.
    pub connections_rejected: u64,
    /// Most connections open at once.
    pub peak_connections: u64,
    /// Requests that arrived on binary-negotiated connections.
    pub binary_requests: u64,
    /// Cluster-opening observes (`learn: true` selects) appended to the
    /// journal this run.
    pub observes_journaled: u64,
    /// Observe records replayed from the journal at startup.
    pub observes_replayed: u64,
    /// Torn journal tails sealed (or unreadable checkpoints ignored)
    /// across startups of this process.
    pub torn_tails: u64,
    /// Journal compactions: online state checkpointed and the journal
    /// rotated down to a tail.
    pub compactions: u64,
    /// Model artifacts hot-swapped in without dropping a request.
    pub swaps: u64,
    /// `swap` requests received (success or failure).
    pub swap_requests: u64,
    /// `sync` (replica catch-up) requests received.
    pub sync_requests: u64,
    /// Journal records streamed to replicas by `sync` replies.
    pub sync_records_sent: u64,
    /// Bytes of checkpoint + journal records streamed to replicas.
    pub sync_bytes_sent: u64,
    /// Records this process applied from `sync` replies (follower side).
    pub sync_records_applied: u64,
}

/// One quarantined record: excluded from a GPU's dataset, with the reason.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantinedRecord {
    /// GPU whose dataset lost the record.
    pub gpu: String,
    /// Record index within the corpus.
    pub index: usize,
    /// Stable record id.
    pub id: u64,
    /// Error class (`transient_exhausted`, `insufficient_trials`).
    pub class: String,
    /// Human-readable reason.
    pub reason: String,
}

/// Count of one degradation class, for the per-class summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassCount {
    /// Class name.
    pub class: String,
    /// Occurrences.
    pub count: u64,
}

/// The `degradation` section of a run report: everything the fault
/// injector did and everything the pipeline absorbed or lost.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DegradationReport {
    /// Whether fault injection was active this run.
    pub faults_enabled: bool,
    /// Fault seed (meaningful only when enabled).
    pub fault_seed: u64,
    /// Per-class injection rates.
    pub fault_rates: FaultRates,
    /// Injection and recovery counters, merged across GPUs.
    pub injected: FaultCounters,
    /// Records excluded from a GPU's dataset, with reasons.
    pub quarantined: Vec<QuarantinedRecord>,
    /// Per-class counts over `quarantined` plus whole-GPU failures.
    pub per_class: Vec<ClassCount>,
    /// Records with no feasible format on some GPU (includes injected
    /// OOM-induced infeasibility).
    pub infeasible: u64,
    /// Cache artifact corruptions injected on write this run.
    pub cache_corruption_injected: u64,
    /// GPUs whose entire benchmark run failed and was skipped.
    pub failed_gpus: Vec<String>,
}

impl DegradationReport {
    /// Add one quarantined record and keep the per-class counts in sync.
    pub fn quarantine(&mut self, record: QuarantinedRecord) {
        self.bump_class(&record.class.clone());
        self.quarantined.push(record);
    }

    /// Record a whole-GPU outage.
    pub fn fail_gpu(&mut self, gpu: &str) {
        self.failed_gpus.push(gpu.to_string());
        self.bump_class("gpu_outage");
    }

    fn bump_class(&mut self, class: &str) {
        match self.per_class.iter_mut().find(|c| c.class == class) {
            Some(c) => c.count += 1,
            None => self.per_class.push(ClassCount {
                class: class.to_string(),
                count: 1,
            }),
        }
    }

    /// Whether anything degraded at all (worth printing).
    pub fn any(&self) -> bool {
        self.injected.any()
            || !self.quarantined.is_empty()
            || !self.failed_gpus.is_empty()
            || self.cache_corruption_injected > 0
    }

    /// One-line human summary for stderr.
    pub fn summary(&self) -> String {
        format!(
            "faults: {} transient ({} retries), {} spikes, {} dropped, {} oom, \
             {} outliers rejected; {} quarantined, {} gpu(s) lost, \
             {} cache corruption(s) injected",
            self.injected.transient,
            self.injected.retries,
            self.injected.spikes,
            self.injected.dropped,
            self.injected.oom_injected,
            self.injected.outliers_rejected,
            self.quarantined.len(),
            self.failed_gpus.len(),
            self.cache_corruption_injected,
        )
    }
}

/// Structured record of one harness invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Name of the run (usually the table binary's name).
    pub name: String,
    /// Per-phase wall-clock timings, in execution order.
    pub phases: Vec<PhaseSample>,
    /// Cache effectiveness for this run.
    pub cache: CacheReport,
    /// Worker threads the parallel runtime used (1 when forced serial).
    pub threads: usize,
    /// Whether `SPSEL_SERIAL=1` forced serial execution.
    pub serial: bool,
    /// Fault injection and graceful-degradation accounting.
    pub degradation: DegradationReport,
    /// Serving counters, present when the run hosted a request loop
    /// (`spsel-serve`, `loadgen`).
    pub serving: Option<ServingReport>,
}

impl RunReport {
    /// Fresh report; thread count and serial flag are sampled from the
    /// parallel runtime at construction.
    pub fn new(name: impl Into<String>) -> Self {
        let serial = rayon::serial_forced();
        RunReport {
            name: name.into(),
            phases: Vec::new(),
            cache: CacheReport::default(),
            threads: if serial {
                1
            } else {
                rayon::current_num_threads()
            },
            serial,
            degradation: DegradationReport::default(),
            serving: None,
        }
    }

    /// Time `f` as one named phase, appending its sample to the report.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.phases.push(PhaseSample {
            name: name.to_string(),
            seconds: start.elapsed().as_secs_f64(),
        });
        out
    }

    /// Record an externally measured phase.
    pub fn record(&mut self, name: &str, seconds: f64) {
        self.phases.push(PhaseSample {
            name: name.to_string(),
            seconds,
        });
    }

    /// Elapsed seconds of a named phase, if it was recorded.
    pub fn phase_seconds(&self, name: &str) -> Option<f64> {
        self.phases
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.seconds)
    }

    /// Total seconds across all recorded phases.
    pub fn total_seconds(&self) -> f64 {
        self.phases.iter().map(|p| p.seconds).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_in_order() {
        let mut r = RunReport::new("test");
        let x = r.time("a", || 2 + 2);
        assert_eq!(x, 4);
        r.record("b", 1.5);
        assert_eq!(r.phases.len(), 2);
        assert_eq!(r.phases[0].name, "a");
        assert_eq!(r.phase_seconds("b"), Some(1.5));
        assert!(r.total_seconds() >= 1.5);
        assert!(r.phase_seconds("missing").is_none());
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut r = RunReport::new("rt");
        r.record("phase", 0.25);
        r.cache.hits = 3;
        r.cache.enabled = true;
        r.serving = Some(ServingReport {
            requests: 100,
            select_requests: 90,
            feedback_applied: 4,
            p50_latency_us: 128.0,
            p99_latency_us: 4096.0,
            ..Default::default()
        });
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("p99_latency_us"));
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn degradation_tracks_quarantines_and_classes() {
        let mut d = DegradationReport {
            faults_enabled: true,
            fault_seed: 7,
            ..Default::default()
        };
        assert!(!d.any());
        d.quarantine(QuarantinedRecord {
            gpu: "Volta".into(),
            index: 3,
            id: 12,
            class: "insufficient_trials".into(),
            reason: "CSR: only 2 valid trials, need 3".into(),
        });
        d.quarantine(QuarantinedRecord {
            gpu: "Pascal".into(),
            index: 9,
            id: 40,
            class: "insufficient_trials".into(),
            reason: "ELL: only 1 valid trials, need 3".into(),
        });
        d.fail_gpu("Turing");
        assert!(d.any());
        assert_eq!(d.quarantined.len(), 2);
        assert_eq!(d.failed_gpus, vec!["Turing".to_string()]);
        let insufficient = d
            .per_class
            .iter()
            .find(|c| c.class == "insufficient_trials")
            .unwrap();
        assert_eq!(insufficient.count, 2);
        let outage = d
            .per_class
            .iter()
            .find(|c| c.class == "gpu_outage")
            .unwrap();
        assert_eq!(outage.count, 1);
        assert!(d.summary().contains("2 quarantined"));
        // The section serializes as part of the run report.
        let mut r = RunReport::new("deg");
        r.degradation = d;
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("degradation"));
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
