//! Run instrumentation: phase wall-clock timers and cache counters,
//! serialized as the JSON run report written next to each table's output.
//!
//! The report answers, for any regenerated table: how long each pipeline
//! phase took, whether the on-disk cache was used, and how effective it
//! was — which is what makes the "cold run is parallel" and "warm run is
//! cached" claims auditable instead of anecdotal.

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Wall-clock duration of one pipeline phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSample {
    /// Phase name (`corpus_build`, `benchmark`, `experiment`, ...).
    pub name: String,
    /// Elapsed wall-clock seconds.
    pub seconds: f64,
}

/// Snapshot of the cache counters at report time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheReport {
    /// Whether the cache was consulted at all (false under
    /// `SPSEL_NO_CACHE=1` or when running without a cache directory).
    pub enabled: bool,
    /// Artifacts served from disk.
    pub hits: u64,
    /// Artifacts that had to be recomputed (absent, stale, or corrupt).
    pub misses: u64,
    /// Artifacts written back to disk this run.
    pub stores: u64,
}

/// Structured record of one harness invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Name of the run (usually the table binary's name).
    pub name: String,
    /// Per-phase wall-clock timings, in execution order.
    pub phases: Vec<PhaseSample>,
    /// Cache effectiveness for this run.
    pub cache: CacheReport,
    /// Worker threads the parallel runtime used (1 when forced serial).
    pub threads: usize,
    /// Whether `SPSEL_SERIAL=1` forced serial execution.
    pub serial: bool,
}

impl RunReport {
    /// Fresh report; thread count and serial flag are sampled from the
    /// parallel runtime at construction.
    pub fn new(name: impl Into<String>) -> Self {
        let serial = rayon::serial_forced();
        RunReport {
            name: name.into(),
            phases: Vec::new(),
            cache: CacheReport::default(),
            threads: if serial {
                1
            } else {
                rayon::current_num_threads()
            },
            serial,
        }
    }

    /// Time `f` as one named phase, appending its sample to the report.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.phases.push(PhaseSample {
            name: name.to_string(),
            seconds: start.elapsed().as_secs_f64(),
        });
        out
    }

    /// Record an externally measured phase.
    pub fn record(&mut self, name: &str, seconds: f64) {
        self.phases.push(PhaseSample {
            name: name.to_string(),
            seconds,
        });
    }

    /// Elapsed seconds of a named phase, if it was recorded.
    pub fn phase_seconds(&self, name: &str) -> Option<f64> {
        self.phases
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.seconds)
    }

    /// Total seconds across all recorded phases.
    pub fn total_seconds(&self) -> f64 {
        self.phases.iter().map(|p| p.seconds).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_in_order() {
        let mut r = RunReport::new("test");
        let x = r.time("a", || 2 + 2);
        assert_eq!(x, 4);
        r.record("b", 1.5);
        assert_eq!(r.phases.len(), 2);
        assert_eq!(r.phases[0].name, "a");
        assert_eq!(r.phase_seconds("b"), Some(1.5));
        assert!(r.total_seconds() >= 1.5);
        assert!(r.phase_seconds("missing").is_none());
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut r = RunReport::new("rt");
        r.record("phase", 0.25);
        r.cache.hits = 3;
        r.cache.enabled = true;
        let json = serde_json::to_string(&r).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
