//! Overhead-conscious format selection.
//!
//! The paper's related work (Zhao et al., IPDPS'18 / TPDS'20) points out
//! that a *qualitative* "fastest kernel" answer is not what an application
//! needs: switching away from CSR costs a conversion (Table 8: up to 147
//! CSR-SpMV-equivalents for HYB), so the best format depends on how many
//! SpMV iterations will amortize it. This module extends the selector
//! with that quantitative decision rule.

use serde::{Deserialize, Serialize};
use spsel_gpusim::cost::ConversionCostModel;
use spsel_gpusim::{SpmvTimes, WorkloadTimes};
use spsel_matrix::Format;

/// Decision produced by the overhead-conscious rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AmortizedChoice {
    /// The format minimizing total cost at the given iteration count.
    pub format: Format,
    /// Total cost (conversion + iterations * kernel) in microseconds.
    pub total_us: f64,
    /// Total cost of staying with CSR.
    pub csr_total_us: f64,
}

/// Pick the format minimizing `conversion + iterations * kernel_time`,
/// starting from CSR (the storage format matrices arrive in).
///
/// Infeasible (out-of-memory) formats are never chosen.
///
/// ```
/// use spsel_core::overhead::amortized_best;
/// use spsel_gpusim::{cost::ConversionCostModel, SpmvTimes};
/// use spsel_matrix::Format;
/// // HYB is 2x faster per SpMV but costs 147 CSR-SpMVs to build.
/// let times = SpmvTimes { us: [30.0, 10.0, 25.0, 5.0] };
/// let conv = ConversionCostModel::default();
/// assert_eq!(amortized_best(&times, &conv, 1).format, Format::Csr);
/// assert_eq!(amortized_best(&times, &conv, 100_000).format, Format::Hyb);
/// ```
pub fn amortized_best(
    times: &SpmvTimes,
    conv: &ConversionCostModel,
    iterations: usize,
) -> AmortizedChoice {
    let csr_spmv = times.get(Format::Csr);
    let total = |f: Format| -> f64 {
        let t = times.get(f);
        if !t.is_finite() || !csr_spmv.is_finite() {
            return f64::INFINITY;
        }
        conv.relative(f) * csr_spmv + iterations as f64 * t
    };
    let csr_total = total(Format::Csr);
    let (format, total_us) = Format::ALL
        .into_iter()
        .map(|f| (f, total(f)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("four formats");
    AmortizedChoice {
        format,
        total_us,
        csr_total_us: csr_total,
    }
}

/// [`amortized_best`] generalized to any workload and format set: pick
/// the format in `formats` minimizing `conversion + iterations * kernel`,
/// where kernel times come from a [`WorkloadTimes`] table (SpMV or SpMM)
/// and conversion is still priced in CSR-SpMV-equivalents, with the CSR
/// entry of `times` standing in for one "unit" of work.
///
/// `formats` must contain [`Format::Csr`] (every registry does); entries
/// absent from `formats` are never chosen even if `times` has them.
pub fn amortized_best_workload(
    times: &WorkloadTimes,
    formats: &[Format],
    conv: &ConversionCostModel,
    iterations: usize,
) -> AmortizedChoice {
    let csr_unit = times.get(Format::Csr);
    let total = |f: Format| -> f64 {
        let t = times.get(f);
        if !t.is_finite() || !csr_unit.is_finite() {
            return f64::INFINITY;
        }
        conv.relative(f) * csr_unit + iterations as f64 * t
    };
    let csr_total = total(Format::Csr);
    let (format, total_us) = formats
        .iter()
        .map(|&f| (f, total(f)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap_or((Format::Csr, csr_total));
    AmortizedChoice {
        format,
        total_us,
        csr_total_us: csr_total,
    }
}

/// [`break_even_iterations`] over a [`WorkloadTimes`] table: the smallest
/// number of workload invocations after which converting from CSR pays
/// off, or `None` if `format` is never faster than CSR (or infeasible).
pub fn break_even_iterations_workload(
    times: &WorkloadTimes,
    conv: &ConversionCostModel,
    format: Format,
) -> Option<usize> {
    let csr = times.get(Format::Csr);
    if format == Format::Csr {
        return csr.is_finite().then_some(0);
    }
    let t = times.get(format);
    if !t.is_finite() || !csr.is_finite() || t >= csr {
        return None;
    }
    let n = (conv.relative(format) * csr / (csr - t)).ceil();
    Some(n as usize)
}

/// The break-even iteration count for `format`: the smallest number of
/// SpMV calls after which converting from CSR pays off, or `None` if the
/// format is never faster than CSR (or does not fit in memory).
pub fn break_even_iterations(
    times: &SpmvTimes,
    conv: &ConversionCostModel,
    format: Format,
) -> Option<usize> {
    let csr = times.get(Format::Csr);
    if format == Format::Csr {
        return csr.is_finite().then_some(0);
    }
    let t = times.get(format);
    if !t.is_finite() || !csr.is_finite() || t >= csr {
        return None;
    }
    // conversion * csr + n * t <= n * csr  =>  n >= conversion * csr / (csr - t)
    let n = (conv.relative(format) * csr / (csr - t)).ceil();
    Some(n as usize)
}

/// Sweep iteration counts and report where the amortized choice flips —
/// the crossover structure an overhead-conscious selector exposes.
pub fn choice_crossovers(
    times: &SpmvTimes,
    conv: &ConversionCostModel,
    max_iterations: usize,
) -> Vec<(usize, Format)> {
    let mut out = Vec::new();
    let mut last: Option<Format> = None;
    let mut n = 1usize;
    while n <= max_iterations {
        let choice = amortized_best(times, conv, n).format;
        if last != Some(choice) {
            out.push((n, choice));
            last = Some(choice);
        }
        // Exponential sweep with fill-in around decade boundaries keeps
        // this cheap while catching every flip of a monotone rule.
        n = (n + n / 4).max(n + 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(us: [f64; 4]) -> SpmvTimes {
        SpmvTimes { us }
    }

    fn conv() -> ConversionCostModel {
        ConversionCostModel::default()
    }

    #[test]
    fn single_iteration_stays_csr() {
        // HYB kernel is 2x faster but conversion costs 147 CSR-SpMVs.
        let t = times([30.0, 10.0, 25.0, 5.0]);
        let c = amortized_best(&t, &conv(), 1);
        assert_eq!(c.format, Format::Csr);
    }

    #[test]
    fn many_iterations_switch_to_fastest() {
        let t = times([30.0, 10.0, 25.0, 5.0]);
        let c = amortized_best(&t, &conv(), 10_000);
        assert_eq!(c.format, Format::Hyb);
        assert!(c.total_us < c.csr_total_us);
    }

    #[test]
    fn break_even_matches_definition() {
        let t = times([30.0, 10.0, 25.0, 5.0]);
        let n = break_even_iterations(&t, &conv(), Format::Hyb).unwrap();
        // conversion = 147 * 10 us = 1470 us; gain per iter = 5 us -> 294.
        assert_eq!(n, 294);
        // One iteration before the break-even CSR still wins; at the
        // break-even the switch is at least as good (ties stay CSR), and
        // one past it HYB strictly wins.
        let before = amortized_best(&t, &conv(), n - 1);
        assert_eq!(before.format, Format::Csr);
        let at = amortized_best(&t, &conv(), n);
        assert!(at.total_us <= at.csr_total_us + 1e-9);
        let past = amortized_best(&t, &conv(), n + 1);
        assert_eq!(past.format, Format::Hyb);
    }

    #[test]
    fn never_profitable_formats_have_no_break_even() {
        let t = times([30.0, 10.0, 25.0, 50.0]);
        assert_eq!(break_even_iterations(&t, &conv(), Format::Hyb), None);
        assert_eq!(break_even_iterations(&t, &conv(), Format::Ell), None);
        assert_eq!(break_even_iterations(&t, &conv(), Format::Csr), Some(0));
    }

    #[test]
    fn infeasible_formats_never_chosen() {
        let t = times([30.0, 10.0, f64::INFINITY, 5.0]);
        assert_eq!(break_even_iterations(&t, &conv(), Format::Ell), None);
        let c = amortized_best(&t, &conv(), 100_000);
        assert_ne!(c.format, Format::Ell);
    }

    #[test]
    fn crossovers_are_monotone_in_speed() {
        let t = times([8.0, 10.0, 25.0, 5.0]);
        let flips = choice_crossovers(&t, &conv(), 1_000_000);
        // Starts at CSR, eventually lands on the fastest format.
        assert_eq!(flips.first().unwrap().1, Format::Csr);
        assert_eq!(flips.last().unwrap().1, Format::Hyb);
        // Iteration counts strictly increase.
        assert!(flips.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn workload_amortized_matches_spmv_rule_on_default_formats() {
        // Same numbers routed through the workload-generic helper must
        // reproduce the SpMV-specific rule exactly.
        let t = times([30.0, 10.0, 25.0, 5.0]);
        let mut us = [f64::INFINITY; Format::UNIVERSE_COUNT];
        us[..4].copy_from_slice(&t.us);
        let wt = WorkloadTimes { us };
        for iters in [1usize, 100, 294, 10_000] {
            let a = amortized_best(&t, &conv(), iters);
            let b = amortized_best_workload(&wt, &Format::ALL, &conv(), iters);
            assert_eq!(a.format, b.format, "iters={iters}");
            assert_eq!(a.total_us, b.total_us);
            assert_eq!(a.csr_total_us, b.csr_total_us);
        }
        assert_eq!(
            break_even_iterations(&t, &conv(), Format::Hyb),
            break_even_iterations_workload(&wt, &conv(), Format::Hyb),
        );
    }

    #[test]
    fn workload_amortized_respects_the_format_set() {
        let mut us = [f64::INFINITY; Format::UNIVERSE_COUNT];
        us[Format::Csr.index()] = 10.0;
        us[Format::Hyb.index()] = 5.0;
        us[Format::Bsr.index()] = 1.0; // fastest, but not in the set below
        let wt = WorkloadTimes { us };
        let small = [Format::Csr, Format::Hyb];
        let c = amortized_best_workload(&wt, &small, &conv(), 1_000_000);
        assert_eq!(c.format, Format::Hyb);
        let wide = [Format::Csr, Format::Hyb, Format::Bsr];
        let c = amortized_best_workload(&wt, &wide, &conv(), 1_000_000);
        assert_eq!(c.format, Format::Bsr);
        assert!(break_even_iterations_workload(&wt, &conv(), Format::Bsr).is_some());
    }

    #[test]
    fn cheap_coo_conversion_flips_early() {
        // COO conversion costs only 9 CSR-SpMVs, so a modest kernel win
        // flips quickly.
        let t = times([8.0, 10.0, 25.0, 9.0]);
        let n = break_even_iterations(&t, &conv(), Format::Coo).unwrap();
        assert_eq!(n, 45); // 9 * 10 / (10 - 8) = 45
    }
}
