//! Cross-cell sharing of fitted models (the training hot path).
//!
//! Table cells are independent experiments, but many of them train on
//! the *same data*: Table 4's three labeler columns cluster the same
//! `(GPU, fold)` split with the same method before labeling it three
//! different ways, and Table 7's three retraining budgets often reduce
//! to identical label vectors on a fold. [`FitPool`] is a
//! content-addressed pool of fitted artifacts: callers key a fit by the
//! exact bit patterns of everything that determines it (feature values,
//! labels, method, seed), so two cells that would compute the same model
//! compute it once — and a cell that would not, never shares by
//! accident. Keys use the cache layer's [`KeyWriter`] FNV hashing.
//!
//! The pool is an in-memory, per-run structure shared across a table's
//! parallel cells; fits never run under the pool lock, so concurrent
//! cells that race on the same key at worst duplicate a deterministic
//! fit (first insert wins).

use crate::cache::KeyWriter;
use crate::error::CoreResult;
use crate::semi::{ClusterMethod, FittedClustering, SemiSupervisedSelector};
use crate::supervised::{SupervisedConfig, SupervisedSelector};
use spsel_features::FeatureVector;
use spsel_matrix::Format;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Content-addressed pool of fitted clusterings and supervised models.
#[derive(Default)]
pub struct FitPool {
    clusterings: Mutex<HashMap<u64, Arc<FittedClustering>>>,
    supervised: Mutex<HashMap<u64, Arc<SupervisedSelector>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

fn feed_features(w: &mut KeyWriter, features: &[FeatureVector]) {
    w.usize(features.len());
    for f in features {
        for &v in f.as_slice() {
            w.f64(v);
        }
    }
}

fn feed_method(w: &mut KeyWriter, method: ClusterMethod) {
    match method {
        ClusterMethod::KMeans { nc } => {
            w.str("kmeans");
            w.usize(nc);
        }
        ClusterMethod::MeanShift => w.str("meanshift"),
        ClusterMethod::Birch { nc } => {
            w.str("birch");
            w.usize(nc);
        }
    }
}

impl FitPool {
    /// Fresh, empty pool.
    pub fn new() -> Self {
        FitPool::default()
    }

    /// Fits served from the pool instead of recomputed.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Fits actually computed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The clustering of `(features, method, seed, pca_dim)` — fitted at
    /// most once per pool, whatever labeler (or table cell) asks for it.
    pub fn clustering(
        &self,
        features: &[FeatureVector],
        method: ClusterMethod,
        seed: u64,
        pca_dim: usize,
    ) -> Arc<FittedClustering> {
        let mut w = KeyWriter::new();
        w.str("clustering");
        feed_method(&mut w, method);
        w.u64(seed);
        w.usize(pca_dim);
        feed_features(&mut w, features);
        let key = w.finish();
        if let Some(fc) = self.clusterings.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return fc.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fc = Arc::new(SemiSupervisedSelector::fit_clustering(
            features, method, seed, pca_dim,
        ));
        self.clusterings
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(fc)
            .clone()
    }

    /// The supervised selector of `(features, labels, cfg)` — for models
    /// trained on features alone (CNN cells carry density images and fit
    /// outside the pool). Budgets or cells whose label vectors coincide
    /// on the same fold share one fit.
    pub fn supervised(
        &self,
        features: &[FeatureVector],
        labels: &[Format],
        cfg: SupervisedConfig,
    ) -> CoreResult<Arc<SupervisedSelector>> {
        let mut w = KeyWriter::new();
        w.str("supervised");
        w.str(&serde_json::to_string(&cfg).expect("supervised config serializes"));
        w.usize(labels.len());
        for l in labels {
            w.usize(l.index());
        }
        feed_features(&mut w, features);
        let key = w.finish();
        if let Some(sel) = self.supervised.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(sel.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let sel = Arc::new(SupervisedSelector::fit(features, None, labels, cfg)?);
        Ok(self
            .supervised
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(sel)
            .clone())
    }
}
