//! # spselect
//!
//! A from-scratch Rust reproduction of *"Explaining the Performance of
//! Supervised and Semi-Supervised Methods for Automated Sparse Matrix
//! Format Selection"* (Dhandhania et al., ICPP Workshops 2021).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`matrix`] — sparse storage formats (COO/CSR/ELL/HYB/DIA), SpMV
//!   kernels, Matrix Market IO, synthetic generators;
//! * [`features`] — the paper's Table 1 statistical features and the
//!   preprocessing pipeline (log/sqrt transforms, min-max scaling, PCA);
//! * [`ml`] — from-scratch classifiers, clustering algorithms, metrics,
//!   and cross-validation;
//! * [`gpusim`] — the analytic GPU SpMV performance model used as the
//!   benchmarking substrate (Pascal GTX 1080, Volta V100, Turing RTX 8000);
//! * [`core`] — the semi-supervised format selector, supervised baselines,
//!   the synthetic corpus, and the experiment runners for every table in
//!   the paper.
//!
//! See `examples/quickstart.rs` for an end-to-end walkthrough.

pub use spsel_core as core;
pub use spsel_features as features;
pub use spsel_gpusim as gpusim;
pub use spsel_matrix as matrix;
pub use spsel_ml as ml;
