#!/usr/bin/env bash
# Offline CI gate: formatting, lints, and the full test suite.
#
# Usage: scripts/ci.sh [--fix]
#   --fix   run `cargo fmt` in write mode instead of --check
#
# The build environment has no crates.io access; everything below runs
# with --offline against the vendored shims in shims/.

set -euo pipefail
cd "$(dirname "$0")/.."

FMT_ARGS=(--check)
if [[ "${1:-}" == "--fix" ]]; then
    FMT_ARGS=()
fi

echo "==> cargo fmt ${FMT_ARGS[*]:-}"
cargo fmt --all -- "${FMT_ARGS[@]}"

echo "==> cargo clippy (deny warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo test (tier-1: root package)"
cargo test -q --offline

echo "==> cargo test (full workspace)"
cargo test -q --offline --workspace

echo "==> fault-injection smoke (table binaries under 5% faults)"
cargo build -q --release --offline -p spsel-bench --bin table2 --bin table3
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT

# Start a daemon in the background, wait for its listening line, and
# export SERVE_PID / ADDR. Usage: spawn_daemon OUTFILE [daemon args...]
spawn_daemon() {
    local out=$1
    shift
    ./target/release/spsel-serve "$@" > "$out" 2>/dev/null &
    SERVE_PID=$!
    for _ in $(seq 1 100); do
        grep -q 'listening on' "$out" && break
        sleep 0.1
    done
    ADDR="$(awk '/listening on/ {print $3}' "$out")"
}
# table2 is static but must still accept and survive the fault flags.
./target/release/table2 --faults 0.05 >/dev/null
# table3 benchmarks a small corpus under faults: it must exit 0 and its
# run report must carry an enabled degradation section.
./target/release/table3 --quick --no-cache --faults 0.05 \
    --json "$SMOKE_DIR/table3.json" >/dev/null
REPORT="$SMOKE_DIR/table3.json.report.json"
grep -q '"degradation"' "$REPORT"
grep -q '"faults_enabled": *true' "$REPORT"

echo "==> experiment-cache smoke (warm table4 rerun must hit)"
cargo build -q --release --offline -p spsel-bench --bin table4
# First run populates the per-table experiment cache; the second must be
# served from it (report: one experiment hit, zero misses) and print the
# identical table.
./target/release/table4 --quick --cache "$SMOKE_DIR/cache" \
    --json "$SMOKE_DIR/table4-cold.json" > "$SMOKE_DIR/table4-cold.txt"
./target/release/table4 --quick --cache "$SMOKE_DIR/cache" \
    --json "$SMOKE_DIR/table4-warm.json" > "$SMOKE_DIR/table4-warm.txt"
grep -q '"experiment_hits": *1' "$SMOKE_DIR/table4-warm.json.report.json"
grep -q '"experiment_misses": *0' "$SMOKE_DIR/table4-warm.json.report.json"
cmp "$SMOKE_DIR/table4-cold.txt" "$SMOKE_DIR/table4-warm.txt"
cmp "$SMOKE_DIR/table4-cold.json" "$SMOKE_DIR/table4-warm.json"

echo "==> record-cache smoke (overlapping --base runs share every record)"
# Record keys are independent of the corpus size, so a run at a smaller
# --base must assemble its whole corpus from the shards a larger run left
# behind: record-level hits only, zero record misses, and tables byte-
# identical to an uncached run of the same size.
./target/release/table4 --quick --base 132 --cache "$SMOKE_DIR/rcache" \
    --json "$SMOKE_DIR/t4-large.json" > "$SMOKE_DIR/t4-large.txt"
./target/release/table4 --quick --base 120 --cache "$SMOKE_DIR/rcache" \
    --json "$SMOKE_DIR/t4-overlap.json" > "$SMOKE_DIR/t4-overlap.txt"
OVERLAP_REPORT="$SMOKE_DIR/t4-overlap.json.report.json"
grep -q '"record_misses": *0' "$OVERLAP_REPORT"
grep -Eq '"record_hits": *[1-9]' "$OVERLAP_REPORT"
# The acceptance bar is a >=90% record-level hit ratio on the warm run.
awk -F'"record_hits": *' '
    NF > 1 { split($2, a, /[,}\n]/); hits = a[1] + 0 }
    /"record_misses"/ { split($0, m, /"record_misses": */); split(m[2], b, /[,}\n]/); misses = b[1] + 0 }
    END { exit !(hits > 0 && hits / (hits + misses) >= 0.9) }
' "$OVERLAP_REPORT" || { echo "record hit ratio below 90% in $OVERLAP_REPORT" >&2; exit 1; }
./target/release/table4 --quick --base 120 --no-cache \
    --json "$SMOKE_DIR/t4-ref.json" > "$SMOKE_DIR/t4-ref.txt"
cmp "$SMOKE_DIR/t4-ref.txt" "$SMOKE_DIR/t4-overlap.txt"
cmp "$SMOKE_DIR/t4-ref.json" "$SMOKE_DIR/t4-overlap.json"

echo "==> serving smoke (artifact train/inspect, daemon round-trips, loadgen)"
cargo build -q --release --offline -p spsel-serve -p spsel-bench \
    --bin spsel --bin spsel-serve --bin select --bin loadgen
# Cold train writes the artifact and populates the artifact-bytes cache;
# the warm rerun must be served from it without retraining.
./target/release/spsel train --out "$SMOKE_DIR/model.spsel" --quick \
    --cache "$SMOKE_DIR/cache" > "$SMOKE_DIR/train-cold.txt"
./target/release/spsel train --out "$SMOKE_DIR/model.spsel" --quick \
    --cache "$SMOKE_DIR/cache" > "$SMOKE_DIR/train-warm.txt"
grep -q 'artifact-cache hit' "$SMOKE_DIR/train-warm.txt"
grep -q 'model hits' "$SMOKE_DIR/train-warm.txt"
./target/release/spsel inspect "$SMOKE_DIR/model.spsel" > "$SMOKE_DIR/inspect.txt"
grep -q 'artifact v1' "$SMOKE_DIR/inspect.txt"
# The select CLI must decide from the artifact, and fail typed (nonzero
# exit, error envelope on stderr) on a missing matrix.
printf '%%%%MatrixMarket matrix coordinate real general\n4 4 5\n1 1 1.0\n2 2 2.0\n3 3 3.0\n4 4 4.0\n4 1 0.5\n' \
    > "$SMOKE_DIR/smoke.mtx"
./target/release/select "$SMOKE_DIR/smoke.mtx" --model "$SMOKE_DIR/model.spsel" \
    > "$SMOKE_DIR/select.txt"
grep -q 'Pascal' "$SMOKE_DIR/select.txt"
if ./target/release/select "$SMOKE_DIR/missing.mtx" --model "$SMOKE_DIR/model.spsel" \
    2> "$SMOKE_DIR/select-err.txt"; then
    echo "select must fail on a missing matrix" >&2; exit 1
fi
grep -q '"code":"io"' "$SMOKE_DIR/select-err.txt"
# Daemon: ephemeral port, one request per type, clean shutdown, and a run
# report carrying the serving counters.
./target/release/spsel-serve --model "$SMOKE_DIR/model.spsel" \
    --json "$SMOKE_DIR/serve-report.json" > "$SMOKE_DIR/serve.out" 2>/dev/null &
SERVE_PID=$!
for _ in $(seq 1 100); do
    grep -q 'listening on' "$SMOKE_DIR/serve.out" && break
    sleep 0.1
done
ADDR="$(awk '/listening on/ {print $3}' "$SMOKE_DIR/serve.out")"
./target/release/spsel request "$ADDR" \
    '{"Select":{"matrix":null,"features":null,"gpu":"pascal","iterations":500,"deadline_ms":null,"learn":true}}' \
    > "$SMOKE_DIR/r-bad.json"
grep -q '"code":"bad_request"' "$SMOKE_DIR/r-bad.json"
./target/release/spsel request "$ADDR" \
    "{\"Select\":{\"matrix\":\"$SMOKE_DIR/smoke.mtx\",\"features\":null,\"gpu\":\"pascal\",\"iterations\":500,\"deadline_ms\":null,\"learn\":true}}" \
    > "$SMOKE_DIR/r-select.json"
grep -q '"ok":true' "$SMOKE_DIR/r-select.json"
./target/release/spsel request "$ADDR" \
    '{"Feedback":{"gpu":"pascal","cluster":0,"best":"csr"}}' > "$SMOKE_DIR/r-feedback.json"
grep -q '"ok":true' "$SMOKE_DIR/r-feedback.json"
./target/release/spsel request "$ADDR" '"Stats"' > "$SMOKE_DIR/r-stats.json"
grep -q '"select_requests":1' "$SMOKE_DIR/r-stats.json"
# Contention counters must be visible in the stats reply.
grep -q '"write_lock_acquisitions":' "$SMOKE_DIR/r-stats.json"
grep -q '"snapshot_swaps":' "$SMOKE_DIR/r-stats.json"
grep -q '"snapshot_version":' "$SMOKE_DIR/r-stats.json"
grep -q '"shard_feedbacks":' "$SMOKE_DIR/r-stats.json"
# ...as must the per-phase decision-path counters and the dedicated
# decision-latency histogram quantiles.
grep -q '"timed_decisions":' "$SMOKE_DIR/r-stats.json"
grep -q '"decision_extract_ns":' "$SMOKE_DIR/r-stats.json"
grep -q '"decision_embed_ns":' "$SMOKE_DIR/r-stats.json"
grep -q '"decision_assign_ns":' "$SMOKE_DIR/r-stats.json"
grep -q '"decision_label_ns":' "$SMOKE_DIR/r-stats.json"
grep -q '"decision_p50_us":' "$SMOKE_DIR/r-stats.json"
grep -q '"decision_p99_us":' "$SMOKE_DIR/r-stats.json"
./target/release/spsel request "$ADDR" '"Shutdown"' > "$SMOKE_DIR/r-shutdown.json"
grep -q '"stopping":true' "$SMOKE_DIR/r-shutdown.json"
wait "$SERVE_PID"
grep -q '"serving"' "$SMOKE_DIR/serve-report.json"
grep -q '"feedback_applied": *1' "$SMOKE_DIR/serve-report.json"
# The daemon journals feedback next to the artifact by default.
grep -q '"journal_appended": *1' "$SMOKE_DIR/serve-report.json"
test -s "$SMOKE_DIR/model.spsel.journal"
# Load test: 32 concurrent clients against an in-process daemon, zero
# failed requests (loadgen exits nonzero otherwise).
./target/release/loadgen --clients 32 --requests 5 --feedback \
    --model "$SMOKE_DIR/model.spsel" > "$SMOKE_DIR/loadgen.txt" 2>/dev/null
grep -q ' 0 failed' "$SMOKE_DIR/loadgen.txt"

echo "==> serving restart smoke (journal replay round-trip)"
# Second life: same artifact, same journal. The feedback recorded above
# must be replayed, and a read-only select must answer identically
# across two independent restarts.
./target/release/spsel-serve --model "$SMOKE_DIR/model.spsel" \
    > "$SMOKE_DIR/serve2.out" 2>/dev/null &
SERVE_PID=$!
for _ in $(seq 1 100); do
    grep -q 'listening on' "$SMOKE_DIR/serve2.out" && break
    sleep 0.1
done
ADDR="$(awk '/listening on/ {print $3}' "$SMOKE_DIR/serve2.out")"
./target/release/spsel request "$ADDR" \
    "{\"Select\":{\"matrix\":\"$SMOKE_DIR/smoke.mtx\",\"features\":null,\"gpu\":\"pascal\",\"iterations\":500,\"deadline_ms\":null,\"learn\":false}}" \
    > "$SMOKE_DIR/r2-select.json"
grep -q '"ok":true' "$SMOKE_DIR/r2-select.json"
./target/release/spsel request "$ADDR" '"Stats"' > "$SMOKE_DIR/r2-stats.json"
grep -q '"journal_replayed":1' "$SMOKE_DIR/r2-stats.json"
grep -q '"journal_skipped":0' "$SMOKE_DIR/r2-stats.json"
./target/release/spsel request "$ADDR" '"Shutdown"' >/dev/null
wait "$SERVE_PID"
# Third life: the replayed state must yield a byte-identical reply.
./target/release/spsel-serve --model "$SMOKE_DIR/model.spsel" \
    > "$SMOKE_DIR/serve3.out" 2>/dev/null &
SERVE_PID=$!
for _ in $(seq 1 100); do
    grep -q 'listening on' "$SMOKE_DIR/serve3.out" && break
    sleep 0.1
done
ADDR="$(awk '/listening on/ {print $3}' "$SMOKE_DIR/serve3.out")"
./target/release/spsel request "$ADDR" \
    "{\"Select\":{\"matrix\":\"$SMOKE_DIR/smoke.mtx\",\"features\":null,\"gpu\":\"pascal\",\"iterations\":500,\"deadline_ms\":null,\"learn\":false}}" \
    > "$SMOKE_DIR/r3-select.json"
cmp "$SMOKE_DIR/r2-select.json" "$SMOKE_DIR/r3-select.json"
./target/release/spsel request "$ADDR" '"Shutdown"' >/dev/null
wait "$SERVE_PID"

echo "==> read-only flood smoke (lock-free decisions, machine-readable bench)"
# A learn:false flood must never take the write path: the bench record
# proves zero write-lock acquisitions and zero snapshot swaps.
./target/release/loadgen --clients 8 --requests 10 --read-frac 1.0 \
    --model "$SMOKE_DIR/model.spsel" --bench-json "$SMOKE_DIR/BENCH_serve.json" \
    > "$SMOKE_DIR/loadgen-ro.txt" 2>/dev/null
grep -q ' 0 failed' "$SMOKE_DIR/loadgen-ro.txt"
grep -q '"write_lock_acquisitions": *0' "$SMOKE_DIR/BENCH_serve.json"
grep -q '"snapshot_swaps": *0' "$SMOKE_DIR/BENCH_serve.json"
grep -q '"write_decisions": *0' "$SMOKE_DIR/BENCH_serve.json"
grep -q '"throughput_rps"' "$SMOKE_DIR/BENCH_serve.json"

echo "==> decision-path budget (allocation-free hot path, p99 under the old p50)"
# The steady-state select path must stay bit-identical to the code it
# replaced and allocation-free: the proptest equivalence suites and the
# counting-allocator test are the gate.
cargo test -q --offline -p spsel-features --test properties
cargo test -q --offline -p spsel-matrix --test spmv_equivalence
cargo test -q --offline -p spsel-core --test zero_alloc
# Budget: the decision-path p99 (extract+embed+assign+label, measured by
# the daemon's nanosecond histogram and excluding pipeline queue time)
# must sit below 31 us — the *median* request latency of the pre-
# optimization read flood (see "The decision-path budget" in
# EXPERIMENTS.md). Enforced on both the committed BENCH_serve.json and
# the flood record regenerated above.
check_decision_budget() {
    local file=$1
    grep -q '"decision_p99_us":' "$file"
    awk -F'"decision_p99_us": *' '
        NF > 1 { split($2, a, /[,}\n]/); if (a[1] + 0 >= 31.0) bad = 1 }
        END { exit bad }
    ' "$file" || { echo "decision_p99_us >= 31.0 in $file" >&2; exit 1; }
}
check_decision_budget "$SMOKE_DIR/BENCH_serve.json"
check_decision_budget BENCH_serve.json
# At least one timed decision must back those quantiles up.
grep -q '"timed_decisions": *[1-9]' "$SMOKE_DIR/BENCH_serve.json"

echo "==> binary-protocol smoke (negotiated framing, replies bit-identical to JSON)"
# One daemon, two protocols. Every read-only request is issued over JSON
# and again over the binary framing; the CLI prints both through the same
# serializer, so the outputs must be byte-identical.
./target/release/spsel-serve --model "$SMOKE_DIR/model.spsel" \
    > "$SMOKE_DIR/serve4.out" 2>/dev/null &
SERVE_PID=$!
for _ in $(seq 1 100); do
    grep -q 'listening on' "$SMOKE_DIR/serve4.out" && break
    sleep 0.1
done
ADDR="$(awk '/listening on/ {print $3}' "$SMOKE_DIR/serve4.out")"
SELECT_REQ="{\"Select\":{\"matrix\":\"$SMOKE_DIR/smoke.mtx\",\"features\":null,\"gpu\":\"pascal\",\"iterations\":500,\"deadline_ms\":null,\"learn\":false}}"
BATCH_REQ="{\"Batch\":{\"requests\":[{\"matrix\":\"$SMOKE_DIR/smoke.mtx\",\"features\":null,\"gpu\":\"pascal\",\"iterations\":300,\"learn\":false},{\"matrix\":\"$SMOKE_DIR/smoke.mtx\",\"features\":null,\"gpu\":\"volta\",\"iterations\":300,\"learn\":false}],\"deadline_ms\":null}}"
./target/release/spsel request "$ADDR" "$SELECT_REQ" > "$SMOKE_DIR/b-select-json.json"
./target/release/spsel request --binary "$ADDR" "$SELECT_REQ" > "$SMOKE_DIR/b-select-bin.json"
cmp "$SMOKE_DIR/b-select-json.json" "$SMOKE_DIR/b-select-bin.json"
./target/release/spsel request "$ADDR" "$BATCH_REQ" > "$SMOKE_DIR/b-batch-json.json"
./target/release/spsel request --binary "$ADDR" "$BATCH_REQ" > "$SMOKE_DIR/b-batch-bin.json"
cmp "$SMOKE_DIR/b-batch-json.json" "$SMOKE_DIR/b-batch-bin.json"
./target/release/spsel request --binary "$ADDR" \
    '{"Feedback":{"gpu":"pascal","cluster":0,"best":"csr"}}' > "$SMOKE_DIR/b-feedback.json"
grep -q '"ok":true' "$SMOKE_DIR/b-feedback.json"
./target/release/spsel request --binary "$ADDR" '"Stats"' > "$SMOKE_DIR/b-stats.json"
# select + batch + feedback + stats over the binary framing so far.
grep -q '"binary_requests":4' "$SMOKE_DIR/b-stats.json"
grep -q '"shed":0' "$SMOKE_DIR/b-stats.json"

echo "==> torn-frame smoke (request split mid-line over live TCP)"
# A request line torn across two TCP writes with a pause in between must
# reassemble and answer normally. (Byte-level binary-frame splits are
# swept exhaustively by crates/serve/tests/robustness.rs in the
# workspace test step above.)
HOST="${ADDR%:*}"; PORT="${ADDR##*:}"
exec 3<>"/dev/tcp/$HOST/$PORT"
HALF=$(( ${#SELECT_REQ} / 2 ))
printf '%s' "${SELECT_REQ:0:HALF}" >&3
sleep 0.2
printf '%s\n' "${SELECT_REQ:HALF}" >&3
IFS= read -r TORN_REPLY <&3
exec 3<&- 3>&-
printf '%s\n' "$TORN_REPLY" | cmp - "$SMOKE_DIR/b-select-json.json"
./target/release/spsel request --binary "$ADDR" '"Shutdown"' > "$SMOKE_DIR/b-shutdown.json"
grep -q '"stopping":true' "$SMOKE_DIR/b-shutdown.json"
wait "$SERVE_PID"

echo "==> mini-soak (256 persistent pipelined binary connections, zero failures)"
./target/release/loadgen --clients 8 --connections 256 --pipeline 4 \
    --requests 4 --read-frac 1.0 --protocol binary \
    --model "$SMOKE_DIR/model.spsel" --bench-json "$SMOKE_DIR/BENCH_soak.json" \
    > "$SMOKE_DIR/loadgen-soak.txt" 2>/dev/null
grep -q ' 0 failed' "$SMOKE_DIR/loadgen-soak.txt"
grep -q '"connections": *256' "$SMOKE_DIR/BENCH_soak.json"
grep -q '"protocol": *"binary"' "$SMOKE_DIR/BENCH_soak.json"
grep -q '"shed": *0' "$SMOKE_DIR/BENCH_soak.json"

echo "==> crash-recovery smoke (kill -9 mid-soak, restart, probe vs uninterrupted control)"
# Two daemons get identical traffic: five learning selects (each opens or
# joins an online cluster and journals an Observe) and one feedback.
# --checkpoint-every 4 forces a compaction mid-traffic, so the restart
# exercises checkpoint load *plus* journal-tail replay. The first daemon
# is kill -9ed (no clean shutdown, no flush opportunity); its
# post-restart read-only probe must be byte-identical to the probe of
# the control daemon that was never interrupted.
LEARN_REQ="{\"Select\":{\"matrix\":\"$SMOKE_DIR/smoke.mtx\",\"features\":null,\"gpu\":\"pascal\",\"iterations\":500,\"deadline_ms\":null,\"learn\":true}}"
PROBE_REQ="{\"Select\":{\"matrix\":\"$SMOKE_DIR/smoke.mtx\",\"features\":null,\"gpu\":\"pascal\",\"iterations\":500,\"deadline_ms\":null,\"learn\":false}}"
FB_REQ='{"Feedback":{"gpu":"pascal","cluster":0,"best":"ell"}}'
spawn_daemon "$SMOKE_DIR/crash1.out" --model "$SMOKE_DIR/model.spsel" \
    --journal "$SMOKE_DIR/crash.journal" --checkpoint-every 4
for _ in 1 2 3 4 5; do
    ./target/release/spsel request "$ADDR" "$LEARN_REQ" >/dev/null
done
./target/release/spsel request "$ADDR" "$FB_REQ" >/dev/null
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
# The mid-traffic compaction must have left an atomic checkpoint behind.
test -s "$SMOKE_DIR/crash.journal.checkpoint"
spawn_daemon "$SMOKE_DIR/crash2.out" --model "$SMOKE_DIR/model.spsel" \
    --journal "$SMOKE_DIR/crash.journal" --checkpoint-every 4
./target/release/spsel request "$ADDR" "$PROBE_REQ" > "$SMOKE_DIR/crash-probe.json"
./target/release/spsel request "$ADDR" '"Stats"' > "$SMOKE_DIR/crash-stats.json"
# Lifecycle state must be visible in the stats reply: the checkpoint
# covers the first 4 records, the journal tail carries the other 2.
grep -q '"journal_attached":true' "$SMOKE_DIR/crash-stats.json"
grep -q '"checkpoint_seq":4' "$SMOKE_DIR/crash-stats.json"
grep -q '"last_seq":6' "$SMOKE_DIR/crash-stats.json"
./target/release/spsel request "$ADDR" '"Shutdown"' >/dev/null
wait "$SERVE_PID"
# Control: same flags, same traffic, never killed.
spawn_daemon "$SMOKE_DIR/control.out" --model "$SMOKE_DIR/model.spsel" \
    --journal "$SMOKE_DIR/control.journal" --checkpoint-every 4
for _ in 1 2 3 4 5; do
    ./target/release/spsel request "$ADDR" "$LEARN_REQ" >/dev/null
done
./target/release/spsel request "$ADDR" "$FB_REQ" >/dev/null
./target/release/spsel request "$ADDR" "$PROBE_REQ" > "$SMOKE_DIR/control-probe.json"
./target/release/spsel request "$ADDR" '"Shutdown"' >/dev/null
wait "$SERVE_PID"
cmp "$SMOKE_DIR/crash-probe.json" "$SMOKE_DIR/control-probe.json"

echo "==> replica catch-up smoke (two processes, follower converges via sync)"
# A leader accumulates online state; a --follow replica must catch up
# before it binds and answer read-only probes byte-identically.
spawn_daemon "$SMOKE_DIR/leader.out" --model "$SMOKE_DIR/model.spsel" \
    --journal "$SMOKE_DIR/leader.journal"
LEADER_PID=$SERVE_PID
LEADER_ADDR=$ADDR
for _ in 1 2 3; do
    ./target/release/spsel request "$LEADER_ADDR" "$LEARN_REQ" >/dev/null
done
./target/release/spsel request "$LEADER_ADDR" "$FB_REQ" >/dev/null
spawn_daemon "$SMOKE_DIR/follower.out" --model "$SMOKE_DIR/model.spsel" \
    --follow "$LEADER_ADDR"
./target/release/spsel request "$LEADER_ADDR" "$PROBE_REQ" > "$SMOKE_DIR/leader-probe.json"
./target/release/spsel request "$ADDR" "$PROBE_REQ" > "$SMOKE_DIR/follower-probe.json"
cmp "$SMOKE_DIR/leader-probe.json" "$SMOKE_DIR/follower-probe.json"
./target/release/spsel request "$ADDR" '"Stats"' > "$SMOKE_DIR/follower-stats.json"
grep -q '"sync_records_applied":[1-9]' "$SMOKE_DIR/follower-stats.json"
./target/release/spsel request "$LEADER_ADDR" '"Stats"' > "$SMOKE_DIR/leader-stats.json"
grep -q '"sync_requests":[1-9]' "$SMOKE_DIR/leader-stats.json"
./target/release/spsel request "$ADDR" '"Shutdown"' >/dev/null
wait "$SERVE_PID"
./target/release/spsel request "$LEADER_ADDR" '"Shutdown"' >/dev/null
wait "$LEADER_PID"

echo "==> table byte-identity gate (quick tables vs committed baselines)"
# The default 4-format registry must keep reproducing the paper tables
# bit-for-bit: regenerate table 4/6/7 with --quick --no-cache and compare
# text and JSON against the committed baselines. Any drift — a registry
# change leaking into the default label pipeline, a reordered format, a
# float formatting change — fails the build here.
cargo build -q --release --offline -p spsel-bench \
    --bin table6 --bin table7 --bin formatzoo
for t in table4 table6 table7; do
    ./target/release/"$t" --quick --no-cache --json "$SMOKE_DIR/$t.json" \
        > "$SMOKE_DIR/$t.txt" 2>/dev/null
    cmp "baselines/$t.txt" "$SMOKE_DIR/$t.txt"
    cmp "baselines/$t.json" "$SMOKE_DIR/$t.json"
done

echo "==> format-zoo smoke (extended registry, nonzero disagreement table)"
# The extended registry must label all three workloads and find real
# cross-workload disagreement — a zero total would mean the SpMM cost
# model collapsed onto SpMV.
./target/release/formatzoo --quick --no-cache \
    --json "$SMOKE_DIR/formatzoo.json" > "$SMOKE_DIR/formatzoo.txt" 2>/dev/null
grep -q 'total cross-workload disagreements: [1-9]' "$SMOKE_DIR/formatzoo.txt"
grep -q '"registry_digest"' "$SMOKE_DIR/formatzoo.json"

echo "==> workload serving smoke (explicit workload over both protocols)"
# A select with an explicit workload must round-trip over JSON and the
# binary framing with byte-identical replies; an unknown workload must be
# a typed error envelope, not a dropped connection.
spawn_daemon "$SMOKE_DIR/wl.out" --model "$SMOKE_DIR/model.spsel"
WL_REQ="{\"Select\":{\"matrix\":\"$SMOKE_DIR/smoke.mtx\",\"features\":null,\"gpu\":\"pascal\",\"iterations\":500,\"deadline_ms\":null,\"learn\":false,\"workload\":\"spmm4\"}}"
./target/release/spsel request "$ADDR" "$WL_REQ" > "$SMOKE_DIR/wl-json.json"
./target/release/spsel request --binary "$ADDR" "$WL_REQ" > "$SMOKE_DIR/wl-bin.json"
cmp "$SMOKE_DIR/wl-json.json" "$SMOKE_DIR/wl-bin.json"
grep -q '"workload":"spmm4"' "$SMOKE_DIR/wl-json.json"
BAD_WL_REQ="{\"Select\":{\"matrix\":\"$SMOKE_DIR/smoke.mtx\",\"features\":null,\"gpu\":\"pascal\",\"iterations\":500,\"deadline_ms\":null,\"learn\":false,\"workload\":\"gemm\"}}"
./target/release/spsel request "$ADDR" "$BAD_WL_REQ" > "$SMOKE_DIR/wl-bad.json"
grep -q '"code":"unknown_workload"' "$SMOKE_DIR/wl-bad.json"
# ...and the connection-level path: loadgen tags every select with the
# workload, drives both protocols, and records it in the bench JSON.
./target/release/loadgen --clients 4 --requests 5 --read-frac 1.0 \
    --protocol both --workload spmm4 --addr "$ADDR" \
    --bench-json "$SMOKE_DIR/BENCH_wl.json" > "$SMOKE_DIR/loadgen-wl.txt" 2>/dev/null
grep -q ' 0 failed' "$SMOKE_DIR/loadgen-wl.txt"
grep -q '"workload": *"spmm4"' "$SMOKE_DIR/BENCH_wl.json"
./target/release/spsel request "$ADDR" '"Shutdown"' >/dev/null
wait "$SERVE_PID"

echo "==> corpus growth smoke (journal ingest feeds the next training run)"
# The serving smokes above journaled learn:true observations next to the
# artifact. Ingest promotes the distinct ones into the cache's growth
# shards; a retrain against the same cache must fold them in (the grown
# context keys differently, so the artifact-bytes cache cannot hit) and
# a second ingest of the same journal must append nothing.
./target/release/spsel corpus ingest --journal "$SMOKE_DIR/model.spsel.journal" \
    --quick --cache "$SMOKE_DIR/cache" > "$SMOKE_DIR/ingest.txt"
grep -Eq '[1-9][0-9]* appended' "$SMOKE_DIR/ingest.txt"
./target/release/spsel corpus ingest --journal "$SMOKE_DIR/model.spsel.journal" \
    --quick --cache "$SMOKE_DIR/cache" > "$SMOKE_DIR/ingest2.txt"
grep -q ' 0 appended' "$SMOKE_DIR/ingest2.txt"
./target/release/spsel train --out "$SMOKE_DIR/model-grown.spsel" --quick \
    --cache "$SMOKE_DIR/cache" --json "$SMOKE_DIR/train-grown.json" \
    > "$SMOKE_DIR/train-grown.txt"
grep -q 'corpus growth:' "$SMOKE_DIR/train-grown.txt"
if grep -q 'artifact-cache hit' "$SMOKE_DIR/train-grown.txt"; then
    echo "grown corpus must not be served from the pre-growth artifact cache" >&2
    exit 1
fi

echo "CI green."
