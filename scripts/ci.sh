#!/usr/bin/env bash
# Offline CI gate: formatting, lints, and the full test suite.
#
# Usage: scripts/ci.sh [--fix]
#   --fix   run `cargo fmt` in write mode instead of --check
#
# The build environment has no crates.io access; everything below runs
# with --offline against the vendored shims in shims/.

set -euo pipefail
cd "$(dirname "$0")/.."

FMT_ARGS=(--check)
if [[ "${1:-}" == "--fix" ]]; then
    FMT_ARGS=()
fi

echo "==> cargo fmt ${FMT_ARGS[*]:-}"
cargo fmt --all -- "${FMT_ARGS[@]}"

echo "==> cargo clippy (deny warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo test (tier-1: root package)"
cargo test -q --offline

echo "==> cargo test (full workspace)"
cargo test -q --offline --workspace

echo "CI green."
