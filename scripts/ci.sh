#!/usr/bin/env bash
# Offline CI gate: formatting, lints, and the full test suite.
#
# Usage: scripts/ci.sh [--fix]
#   --fix   run `cargo fmt` in write mode instead of --check
#
# The build environment has no crates.io access; everything below runs
# with --offline against the vendored shims in shims/.

set -euo pipefail
cd "$(dirname "$0")/.."

FMT_ARGS=(--check)
if [[ "${1:-}" == "--fix" ]]; then
    FMT_ARGS=()
fi

echo "==> cargo fmt ${FMT_ARGS[*]:-}"
cargo fmt --all -- "${FMT_ARGS[@]}"

echo "==> cargo clippy (deny warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo test (tier-1: root package)"
cargo test -q --offline

echo "==> cargo test (full workspace)"
cargo test -q --offline --workspace

echo "==> fault-injection smoke (table binaries under 5% faults)"
cargo build -q --release --offline -p spsel-bench --bin table2 --bin table3
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
# table2 is static but must still accept and survive the fault flags.
./target/release/table2 --faults 0.05 >/dev/null
# table3 benchmarks a small corpus under faults: it must exit 0 and its
# run report must carry an enabled degradation section.
./target/release/table3 --quick --no-cache --faults 0.05 \
    --json "$SMOKE_DIR/table3.json" >/dev/null
REPORT="$SMOKE_DIR/table3.json.report.json"
grep -q '"degradation"' "$REPORT"
grep -q '"faults_enabled": *true' "$REPORT"

echo "==> experiment-cache smoke (warm table4 rerun must hit)"
cargo build -q --release --offline -p spsel-bench --bin table4
# First run populates the per-table experiment cache; the second must be
# served from it (report: one experiment hit, zero misses) and print the
# identical table.
./target/release/table4 --quick --cache "$SMOKE_DIR/cache" \
    --json "$SMOKE_DIR/table4-cold.json" > "$SMOKE_DIR/table4-cold.txt"
./target/release/table4 --quick --cache "$SMOKE_DIR/cache" \
    --json "$SMOKE_DIR/table4-warm.json" > "$SMOKE_DIR/table4-warm.txt"
grep -q '"experiment_hits": *1' "$SMOKE_DIR/table4-warm.json.report.json"
grep -q '"experiment_misses": *0' "$SMOKE_DIR/table4-warm.json.report.json"
cmp "$SMOKE_DIR/table4-cold.txt" "$SMOKE_DIR/table4-warm.txt"
cmp "$SMOKE_DIR/table4-cold.json" "$SMOKE_DIR/table4-warm.json"

echo "CI green."
