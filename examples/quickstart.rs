//! Quickstart: train a semi-supervised format selector on a synthetic
//! corpus, predict the best format for a new matrix, explain the decision,
//! and run the actual SpMV in the chosen format.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use spselect::core::corpus::{Corpus, CorpusConfig};
use spselect::core::semi::{ClusterMethod, Labeler, SemiConfig, SemiSupervisedSelector};
use spselect::features::FeatureVector;
use spselect::gpusim::Gpu;
use spselect::matrix::{
    gen, BsrMatrix, CooMatrix, CsrMatrix, DiaMatrix, EllMatrix, Format, HybMatrix, SellMatrix, SpMv,
};

fn main() {
    // 1. Build a small corpus and benchmark it on the Turing model.
    println!("building corpus...");
    let corpus = Corpus::build(CorpusConfig::small(150, 42));
    let bench = corpus.benchmark(Gpu::Turing);

    let usable: Vec<usize> = (0..corpus.len()).filter(|&i| bench[i].is_some()).collect();
    let features: Vec<FeatureVector> = usable
        .iter()
        .map(|&i| corpus.records[i].features.clone())
        .collect();
    let labels: Vec<Format> = usable.iter().map(|&i| bench[i].unwrap().best).collect();

    // 2. Fit the semi-supervised selector: K-Means clustering over the
    //    transformed feature space, majority-vote cluster labels.
    let cfg = SemiConfig::new(ClusterMethod::KMeans { nc: 40 }, Labeler::Vote, 7);
    let selector = SemiSupervisedSelector::fit(&features, &labels, cfg);
    println!(
        "fitted selector with {} clusters over {} matrices",
        selector.n_clusters(),
        features.len()
    );

    // 3. A new matrix arrives: a 2-D stencil (very uniform rows).
    let new_matrix: CooMatrix = gen::stencil2d(64, 123);
    let csr = CsrMatrix::from(&new_matrix);
    let fv = FeatureVector::from_csr(&csr);
    let prediction = selector.predict(&fv);
    let explanation = selector.explain(&fv);
    println!(
        "\nnew matrix: 64x64 5-point stencil ({} nonzeros)",
        csr.nnz()
    );
    println!("predicted format: {prediction}");
    println!(
        "explanation: cluster #{} ({} training matrices, centroid distance {:.3}), rule: {}",
        explanation.cluster,
        explanation.cluster_size,
        explanation.centroid_distance,
        explanation.rule
    );

    // 4. Use the predicted format for the actual SpMV.
    let x = vec![1.0; csr.ncols()];
    let mut y = vec![0.0; csr.nrows()];
    match prediction {
        Format::Csr => csr.spmv(&x, &mut y),
        Format::Coo => new_matrix.spmv(&x, &mut y),
        Format::Ell => EllMatrix::try_from_csr(&csr)
            .expect("stencil is ELL-friendly")
            .spmv(&x, &mut y),
        Format::Hyb => HybMatrix::from_csr(&csr).spmv(&x, &mut y),
        Format::Bsr => BsrMatrix::try_from_csr(&csr, 4)
            .expect("stencil blocks cleanly")
            .spmv(&x, &mut y),
        Format::Sell => SellMatrix::from_csr(&csr, 32, 128).spmv(&x, &mut y),
        Format::Dia => DiaMatrix::try_from_csr(&csr, 64)
            .expect("stencil has few diagonals")
            .spmv(&x, &mut y),
    }
    println!("\nSpMV in {prediction}: y[0..4] = {:?}", &y[..4]);
}
