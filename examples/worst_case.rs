//! The cost of defaulting to CSR: a mawi-like network-trace matrix (a few
//! enormous hub rows over millions of near-empty ones) is built for real,
//! its CPU kernels are timed, and the GPU model's verdict is shown — the
//! paper's 194.85x anecdote in miniature.
//!
//! ```sh
//! cargo run --release --example worst_case
//! ```

use spselect::core::experiments::worstcase;
use spselect::features::MatrixStats;
use spselect::gpusim::{predict_times, Gpu};
use spselect::matrix::{gen, CooMatrix, CsrMatrix, Format, HybMatrix, SpMv};
use std::time::Instant;

fn time_spmv<M: SpMv>(m: &M, x: &[f64], y: &mut [f64], reps: usize) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        m.spmv(x, y);
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    // A real (CPU-sized) hub matrix: 200k rows of ~3 nonzeros plus a few
    // hub rows touching 30% of all columns.
    println!("building a mawi-like hub matrix...");
    let coo: CooMatrix = gen::row_skewed(200_000, 200_000, 3, 60_000, 0.00002, 11);
    let csr = CsrMatrix::from(&coo);
    let hyb = HybMatrix::from_csr(&csr);
    let stats = MatrixStats::from_csr(&csr);
    println!(
        "matrix: {} rows, {} nonzeros, widest row {} (mean {:.1})",
        csr.nrows(),
        csr.nnz(),
        stats.nnz_max,
        stats.nnz_mean
    );

    // CPU kernel timings (sequential, like one GPU thread per row).
    let x = vec![1.0; csr.ncols()];
    let mut y = vec![0.0; csr.nrows()];
    let t_csr = time_spmv(&csr, &x, &mut y, 5);
    let t_coo = time_spmv(&coo, &x, &mut y, 5);
    let t_hyb = time_spmv(&hyb, &x, &mut y, 5);
    println!("\nCPU kernel times (sequential):");
    println!(
        "  CSR {:.3} ms | COO {:.3} ms | HYB {:.3} ms",
        t_csr * 1e3,
        t_coo * 1e3,
        t_hyb * 1e3
    );

    // GPU model verdict on every architecture.
    println!("\nGPU model verdict:");
    for gpu in Gpu::ALL {
        let times = predict_times(&gpu.spec(), &stats, 99);
        let best = times.best().expect("feasible");
        println!(
            "  {:<7} CSR {:>10.1} us | best {} {:>10.1} us | CSR slowdown {:>7.2}x",
            gpu.name(),
            times.get(Format::Csr),
            best.name(),
            times.get(best),
            times.get(Format::Csr) / times.get(best)
        );
    }

    // The systematic sweep (the experiments::worstcase runner).
    println!("\nworst cases over the hub-matrix sweep:");
    println!("{}", worstcase::render(&worstcase::run()));
    println!("(paper: 194.85x for mawi_201512012345 on the Quadro RTX 8000, HYB optimal)");
}
