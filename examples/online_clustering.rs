//! Online learning: the paper's future-work scenario, implemented with the
//! incremental K-Means extension. A deployed selector absorbs matrices
//! one at a time; when a structurally novel family appears, a new cluster
//! forms on the fly instead of requiring a full refit.
//!
//! ```sh
//! cargo run --release --example online_clustering
//! ```

use spselect::core::corpus::{Corpus, CorpusConfig};
use spselect::features::{FeatureVector, Preprocessor};
use spselect::matrix::{gen, CsrMatrix};
use spselect::ml::cluster::kmeans::KMeans;
use spselect::ml::cluster::online::OnlineKMeans;
use spselect::ml::ClusterAlgorithm;

fn main() {
    // Batch phase: cluster an initial corpus.
    println!("building initial corpus...");
    let corpus = Corpus::build(CorpusConfig::small(120, 21));
    let features: Vec<FeatureVector> = corpus.records.iter().map(|r| r.features.clone()).collect();
    let pre = Preprocessor::fit(&features);
    let embedded: Vec<Vec<f64>> = features.iter().map(|f| pre.embed(f)).collect();
    let batch = KMeans::new(20, 5).fit(&embedded);
    println!("batch clustering: {} clusters", batch.n_clusters());

    // Warm-start the online model from the batch clustering.
    let mut online = OnlineKMeans::from_clustering(&batch, 0.35, 64);

    // Stream familiar matrices: they should join existing clusters.
    let mut new_clusters = 0;
    for seed in 0..30u64 {
        let m = CsrMatrix::from(&gen::random_uniform(800, 800, 8, seed));
        let z = pre.embed(&FeatureVector::from_csr(&m));
        let (_, created) = online.observe(&z);
        new_clusters += created as usize;
    }
    println!(
        "streamed 30 familiar matrices: {} new clusters created",
        new_clusters
    );

    // Stream a structurally novel family (extreme aspect-ratio band
    // matrices the corpus never contained).
    let mut novel_new = 0;
    let mut first_novelty = None;
    for seed in 0..10u64 {
        let m = CsrMatrix::from(&gen::banded(3_000, 40, 0.98, seed));
        let z = pre.embed(&FeatureVector::from_csr(&m));
        if first_novelty.is_none() {
            first_novelty = Some(online.novelty(&z));
        }
        let (cluster, created) = online.observe(&z);
        novel_new += created as usize;
        if created {
            println!("novel matrix (seed {seed}) opened cluster #{cluster}");
        }
    }
    println!(
        "streamed 10 novel wide-band matrices: {} new clusters (novelty score of the first: {:.3})",
        novel_new,
        first_novelty.unwrap()
    );
    println!(
        "online model now tracks {} clusters ({} at warm start)",
        online.n_clusters(),
        batch.n_clusters()
    );
    println!("\nEach new cluster needs only a couple of benchmarks to get a format label —");
    println!("no supervised model retraining, which is the point of the semi-supervised design.");
}
