//! Portability: the paper's headline scenario. A selector trained with
//! Pascal benchmarks is carried to Turing; the clusters are reused and
//! only a handful of matrices per cluster are re-benchmarked to relabel
//! them.
//!
//! ```sh
//! cargo run --release --example portability
//! ```

use spselect::core::corpus::{Corpus, CorpusConfig};
use spselect::core::semi::{ClusterMethod, Labeler, SemiConfig, SemiSupervisedSelector};
use spselect::features::FeatureVector;
use spselect::gpusim::Gpu;
use spselect::matrix::Format;

fn accuracy(preds: &[Format], truth: &[Format]) -> f64 {
    preds.iter().zip(truth).filter(|(p, t)| p == t).count() as f64 / truth.len() as f64
}

fn main() {
    println!("building corpus...");
    let corpus = Corpus::build(CorpusConfig::small(200, 9));
    let pascal = corpus.benchmark(Gpu::Pascal);
    let turing = corpus.benchmark(Gpu::Turing);

    // Matrices feasible on both GPUs.
    let common: Vec<usize> = (0..corpus.len())
        .filter(|&i| pascal[i].is_some() && turing[i].is_some())
        .collect();
    let features: Vec<FeatureVector> = common
        .iter()
        .map(|&i| corpus.records[i].features.clone())
        .collect();
    let pascal_labels: Vec<Format> = common.iter().map(|&i| pascal[i].unwrap().best).collect();
    let turing_labels: Vec<Format> = common.iter().map(|&i| turing[i].unwrap().best).collect();

    let disagree = pascal_labels
        .iter()
        .zip(&turing_labels)
        .filter(|(a, b)| a != b)
        .count();
    println!(
        "{} of {} matrices have a different optimal format on Turing than on Pascal",
        disagree,
        common.len()
    );

    // Train on Pascal.
    let cfg = SemiConfig::new(ClusterMethod::KMeans { nc: 50 }, Labeler::Vote, 3);
    let mut selector = SemiSupervisedSelector::fit(&features, &pascal_labels, cfg);

    // Evaluate directly on Turing: 0% retraining.
    let preds = selector.predict_batch(&features);
    println!(
        "\naccuracy on Turing with Pascal-trained labels (0% retraining): {:.1}%",
        100.0 * accuracy(&preds, &turing_labels)
    );

    // Port: benchmark TWO matrices per cluster on Turing and relabel.
    let members = selector.clustering().members();
    let mut benchmarked = Vec::new();
    for cluster_members in &members {
        for &m in cluster_members.iter().take(2) {
            benchmarked.push(m);
        }
    }
    let budget_labels: Vec<Format> = benchmarked.iter().map(|&i| turing_labels[i]).collect();
    println!(
        "re-benchmarking {} of {} matrices on Turing (about 2 per cluster)...",
        benchmarked.len(),
        common.len()
    );
    selector.relabel(&benchmarked, &budget_labels);

    let preds = selector.predict_batch(&features);
    println!(
        "accuracy on Turing after cheap relabeling: {:.1}%",
        100.0 * accuracy(&preds, &turing_labels)
    );
    println!("\nThe clusters themselves never changed — only their labels did.");
}
