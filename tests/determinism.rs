//! Parallel execution must be a pure performance optimisation: corpus
//! generation and GPU benchmarking give bit-identical results whether the
//! record loop runs serially or across threads. The generators use one
//! seeded RNG per record (never a shared stream), so the schedule cannot
//! leak into the output.
//!
//! Everything lives in a single `#[test]` because the serial/parallel
//! switch is process-global: concurrent test functions toggling it would
//! race.

use spselect::core::corpus::{Corpus, CorpusConfig};
use spselect::core::experiments::ExperimentContext;
use spselect::gpusim::Gpu;

fn with_serial<R>(f: impl FnOnce() -> R) -> R {
    rayon::set_serial(true);
    let r = f();
    rayon::set_serial(false);
    r
}

#[test]
fn parallel_pipeline_is_bit_identical_to_serial() {
    let cfg = CorpusConfig::small(60, 2024);

    // Corpus generation: serial vs parallel.
    let serial = with_serial(|| Corpus::build(cfg.clone()));
    let parallel = Corpus::build(cfg.clone());
    assert_eq!(
        serial.records.len(),
        parallel.records.len(),
        "corpus sizes differ"
    );
    for (s, p) in serial.records.iter().zip(&parallel.records) {
        assert_eq!(s, p, "record {} differs between serial and parallel", s.id);
    }

    // Benchmarking: serial vs parallel, per GPU.
    for gpu in Gpu::ALL {
        let bs = with_serial(|| serial.benchmark(gpu));
        let bp = parallel.benchmark(gpu);
        assert_eq!(bs, bp, "benchmark results differ on {gpu:?}");
    }

    // And end-to-end through the context builder (which additionally
    // fans the three GPU targets out concurrently).
    let ctx_serial = with_serial(|| ExperimentContext::new(cfg.clone()));
    let ctx_parallel = ExperimentContext::new(cfg);
    assert_eq!(ctx_serial.corpus.records, ctx_parallel.corpus.records);
    assert_eq!(ctx_serial.benches, ctx_parallel.benches);
}
