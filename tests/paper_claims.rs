//! Integration tests asserting the paper's qualitative claims hold in this
//! reproduction (the "shape" checks of the evaluation):
//!
//! 1. CSR is the dominant optimal format on every GPU (Table 3);
//! 2. optimal formats differ across architectures (the portability
//!    problem, Section 3);
//! 3. Mean-Shift underperforms K-Means for format selection (Table 4);
//! 4. retraining budgets help the supervised models more than the
//!    semi-supervised one (Tables 5 and 7);
//! 5. higher cluster purity bounds the attainable vote accuracy
//!    (Section 4's example).

use spselect::core::corpus::CorpusConfig;
use spselect::core::experiments::{table4, table5, ExperimentContext};
use spselect::core::semi::{ClusterMethod, Labeler, SemiConfig, SemiSupervisedSelector};
use spselect::gpusim::Gpu;
use spselect::matrix::Format;
use spselect::ml::cluster::cluster_purity;

fn ctx() -> ExperimentContext {
    ExperimentContext::new(CorpusConfig::small(120, 33))
}

#[test]
fn csr_dominates_every_gpu() {
    let ctx = ctx();
    for gpu in Gpu::ALL {
        let mut counts = [0usize; 4];
        for r in ctx.bench(gpu).iter().flatten() {
            counts[r.best.index()] += 1;
        }
        let total: usize = counts.iter().sum();
        let csr = counts[Format::Csr.index()];
        assert!(
            csr * 2 > total,
            "{gpu}: CSR holds only {csr}/{total} labels"
        );
        // And the problem is not degenerate: at least one other class.
        assert!(csr < total, "{gpu}: all labels CSR, nothing to learn");
    }
}

#[test]
fn labels_differ_across_architectures() {
    let ctx = ctx();
    let common = ctx.common_subset();
    let mut disagreements = 0;
    for &i in &common {
        let labels: Vec<Format> = Gpu::ALL
            .iter()
            .map(|&g| ctx.bench(g)[i].unwrap().best)
            .collect();
        if labels.iter().any(|l| *l != labels[0]) {
            disagreements += 1;
        }
    }
    assert!(
        disagreements * 20 > common.len(),
        "only {disagreements}/{} matrices have architecture-dependent labels",
        common.len()
    );
}

#[test]
fn meanshift_underperforms_kmeans() {
    let ctx = ctx();
    let cfg = table4::Table4Config {
        nc_candidates: vec![30],
        folds: 3,
        seed: 7,
    };
    let t = table4::run(&ctx, &cfg);
    // Compare mean MCC of the three K-Means rows vs three Mean-Shift rows,
    // averaged over GPUs (the paper's Table 4 observation).
    let mut km = 0.0;
    let mut ms = 0.0;
    for gpu_rows in &t.rows {
        for row in gpu_rows {
            if row.algorithm.starts_with("K-Means") {
                km += row.mcc;
            } else if row.algorithm.starts_with("Mean-Shift") {
                ms += row.mcc;
            }
        }
    }
    assert!(km > ms, "K-Means MCC sum {km} <= Mean-Shift {ms}");
}

#[test]
fn semi_supervised_transfer_is_robust_at_zero_budget() {
    let ctx = ctx();
    let cfg = table5::Table5Config {
        nc_candidates: vec![30],
        folds: 3,
        seed: 3,
    };
    let t = table5::run(&ctx, &cfg);
    for (source, target, rows) in &t.pairs {
        let kmeans_vote = rows
            .iter()
            .find(|r| r.algorithm == "K-Means-VOTE")
            .expect("row exists");
        let acc0 = kmeans_vote.budgets[0][1];
        let acc50 = kmeans_vote.budgets[2][1];
        // 0% accuracy should already be decent, and retraining should not
        // be a dramatic jump (the paper: "additional retraining only
        // provides a moderate increase").
        assert!(acc0 > 0.5, "{source}->{target}: 0% accuracy {acc0}");
        assert!(
            acc50 + 0.02 >= acc0,
            "{source}->{target}: retraining hurt badly ({acc0} -> {acc50})"
        );
    }
}

#[test]
fn purity_bounds_vote_accuracy() {
    // Fit a selector, compute its clustering purity on training labels,
    // and verify training accuracy of the vote cannot exceed purity
    // (Section 4: purity is the upper bound of the vote).
    let ctx = ctx();
    let ds = ctx.dataset(Gpu::Volta);
    let features = ctx.features(&ds);
    let results = ctx.results(Gpu::Volta, &ds).unwrap();
    let labels: Vec<Format> = results.iter().map(|r| r.best).collect();
    let cfg = SemiConfig::new(ClusterMethod::KMeans { nc: 25 }, Labeler::Vote, 11);
    let sel = SemiSupervisedSelector::fit(&features, &labels, cfg);

    let y: Vec<usize> = labels.iter().map(|l| l.index()).collect();
    let (_, overall_purity) = cluster_purity(sel.clustering(), &y, Format::COUNT);

    let preds = sel.predict_batch(&features);
    let train_acc =
        preds.iter().zip(&labels).filter(|(p, l)| p == l).count() as f64 / labels.len() as f64;
    assert!(
        train_acc <= overall_purity + 1e-9,
        "vote training accuracy {train_acc} exceeds purity {overall_purity}"
    );
    // And the clustering must be useful at all.
    assert!(overall_purity > 0.6, "purity only {overall_purity}");
}
