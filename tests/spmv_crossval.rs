//! SpMV cross-validation: for every storage format, the sequential and
//! parallel kernels must agree with a reference product computed straight
//! from the COO triplets (no format kernel in the loop) — on random
//! matrices and on the degenerate shapes that historically break padded
//! formats: all-zero matrices, single-row and single-column matrices, and
//! hub rows long enough to exceed the CUSP ELL width cutoff.

use proptest::prelude::*;
use spselect::matrix::ell::cusp_width_limit;
use spselect::matrix::{CooMatrix, CsrMatrix, DiaMatrix, EllMatrix, HybMatrix, SellMatrix, SpMv};

/// Reference product computed by plain triplet accumulation.
fn reference_product(coo: &CooMatrix, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; coo.nrows()];
    for (r, c, v) in coo.iter() {
        y[r] += v * x[c];
    }
    y
}

fn input_vector(ncols: usize) -> Vec<f64> {
    (0..ncols)
        .map(|i| ((i * 7 + 3) % 11) as f64 - 5.0)
        .collect()
}

fn close(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(p, q)| (p - q).abs() < 1e-9)
}

/// Run every format's sequential and parallel kernels against the
/// reference; panic (with the format name) on any mismatch.
fn assert_kernels_agree(coo: &CooMatrix) {
    let x = input_vector(coo.ncols());
    let reference = reference_product(coo, &x);
    let csr = CsrMatrix::from(coo);

    let mut y = vec![0.0; coo.nrows()];
    let check = |name: &str, y: &[f64]| {
        assert!(
            close(y, &reference),
            "{name}: {:?} != reference {:?} ({}x{}, {} nnz)",
            y,
            reference,
            coo.nrows(),
            coo.ncols(),
            coo.nnz()
        );
    };

    coo.spmv(&x, &mut y);
    check("coo/seq", &y);
    coo.spmv_par(&x, &mut y);
    check("coo/par", &y);
    csr.spmv(&x, &mut y);
    check("csr/seq", &y);
    csr.spmv_par(&x, &mut y);
    check("csr/par", &y);

    // Unlimited width so even hub rows convert; the CUSP-limited path is
    // exercised separately below.
    let ell = EllMatrix::try_from_csr_with_limit(&csr, usize::MAX).expect("unlimited ELL");
    ell.spmv(&x, &mut y);
    check("ell/seq", &y);
    ell.spmv_par(&x, &mut y);
    check("ell/par", &y);

    let hyb = HybMatrix::from_csr(&csr);
    hyb.spmv(&x, &mut y);
    check("hyb/seq", &y);
    hyb.spmv_par(&x, &mut y);
    check("hyb/par", &y);

    let dia = DiaMatrix::try_from_csr(&csr, usize::MAX).expect("unlimited DIA");
    dia.spmv(&x, &mut y);
    check("dia/seq", &y);
    dia.spmv_par(&x, &mut y);
    check("dia/par", &y);

    for (c, sigma) in [(1, 1), (4, 8), (8, 64)] {
        let sell = SellMatrix::from_csr(&csr, c, sigma);
        sell.spmv(&x, &mut y);
        check("sell/seq", &y);
        sell.spmv_par(&x, &mut y);
        check("sell/par", &y);
    }
}

/// Strategy: matrix shape plus a subset of cells with small nonzero values.
/// Sizes start at 1; the 0-nnz case is covered because the cell subset may
/// be empty, and fully empty shapes get dedicated tests below.
fn arb_coo() -> impl Strategy<Value = CooMatrix> {
    (1usize..20, 1usize..20).prop_flat_map(|(nrows, ncols)| {
        let cells = nrows * ncols;
        proptest::collection::btree_set(0..cells, 0..cells.min(50)).prop_map(move |cells| {
            let triplets: Vec<(usize, usize, f64)> = cells
                .into_iter()
                .map(|p| {
                    let v = ((p * 17 % 9) as f64) - 4.0;
                    (p / ncols, p % ncols, if v == 0.0 { 0.5 } else { v })
                })
                .collect();
            CooMatrix::from_triplets(nrows, ncols, &triplets).expect("valid triplets")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn kernels_agree_on_random_matrices(coo in arb_coo()) {
        assert_kernels_agree(&coo);
    }

    #[test]
    fn kernels_agree_on_single_row(ncols in 1usize..40, step in 1usize..5) {
        // One row, nonzeros at every `step`-th column: width == nnz, so the
        // ELL slab is a single fully dense row.
        let triplets: Vec<(usize, usize, f64)> =
            (0..ncols).step_by(step).map(|c| (0, c, c as f64 + 1.0)).collect();
        let coo = CooMatrix::from_triplets(1, ncols, &triplets).expect("valid");
        assert_kernels_agree(&coo);
    }

    #[test]
    fn kernels_agree_on_single_column(nrows in 1usize..40, step in 1usize..5) {
        let triplets: Vec<(usize, usize, f64)> =
            (0..nrows).step_by(step).map(|r| (r, 0, r as f64 - 3.0)).collect();
        let coo = CooMatrix::from_triplets(nrows, 1, &triplets).expect("valid");
        assert_kernels_agree(&coo);
    }

    #[test]
    fn kernels_agree_on_hub_rows(nrows in 4usize..24, hub_len in 16usize..64) {
        // One dense hub row over a diagonal background: max row length far
        // above the mean, the shape that drives HYB's ELL/COO split and
        // overruns the CUSP ELL width limit.
        let ncols = hub_len.max(nrows);
        let mut triplets: Vec<(usize, usize, f64)> =
            (1..nrows).map(|r| (r, r % ncols, 1.0 + r as f64)).collect();
        for c in 0..hub_len {
            triplets.push((0, c, 0.25 * c as f64 + 1.0));
        }
        triplets.sort_by_key(|t| (t.0, t.1));
        let coo = CooMatrix::from_triplets(nrows, ncols, &triplets).expect("valid");
        assert_kernels_agree(&coo);

        // The CUSP-limited conversion must refuse exactly when the hub
        // width exceeds the limit — and a successful conversion must
        // still compute the right product.
        let csr = CsrMatrix::from(&coo);
        let limit = cusp_width_limit(coo.nrows(), coo.nnz());
        match EllMatrix::try_from_csr(&csr) {
            Ok(ell) => {
                prop_assert!(hub_len <= limit);
                let x = input_vector(coo.ncols());
                let mut y = vec![0.0; coo.nrows()];
                ell.spmv(&x, &mut y);
                prop_assert!(close(&y, &reference_product(&coo, &x)));
            }
            Err(_) => prop_assert!(hub_len > limit, "refused below limit {limit}"),
        }
    }
}

#[test]
fn kernels_agree_on_empty_matrices() {
    // No nonzeros at all, across a range of shapes including 1x1, a
    // single empty row, and a single empty column.
    for (nrows, ncols) in [(1, 1), (1, 7), (7, 1), (5, 5), (3, 17)] {
        let coo = CooMatrix::from_triplets(nrows, ncols, &[]).expect("valid empty");
        assert_eq!(coo.nnz(), 0);
        assert_kernels_agree(&coo);
    }
}

#[test]
fn parallel_kernels_match_serial_bit_for_bit() {
    // Beyond tolerance-based agreement: on a matrix large enough to span
    // many parallel blocks, spmv_par must equal spmv exactly (the
    // parallel runtime assigns rows to fixed output slots, so there is no
    // reduction-order ambiguity).
    let coo = spselect::matrix::gen::power_law(400, 400, 3, 2.1, 80, 7);
    let csr = CsrMatrix::from(&coo);
    let x = input_vector(coo.ncols());
    let mut seq = vec![0.0; coo.nrows()];
    let mut par = vec![0.0; coo.nrows()];
    csr.spmv(&x, &mut seq);
    csr.spmv_par(&x, &mut par);
    assert_eq!(seq, par, "CSR parallel product is not bit-identical");

    let hyb = HybMatrix::from_csr(&csr);
    hyb.spmv(&x, &mut seq);
    hyb.spmv_par(&x, &mut par);
    assert_eq!(seq, par, "HYB parallel product is not bit-identical");
}
