//! Chaos test for the deterministic fault-injection harness: with every
//! fault class firing at 5%, the measurement pipeline must recover almost
//! every cell, quarantine the rest with recorded reasons, reproduce
//! bit-identically under the same fault seed, and leave the headline
//! selection accuracy essentially unchanged.

use spselect::core::cache::Cache;
use spselect::core::corpus::CorpusConfig;
use spselect::core::experiments::ExperimentContext;
use spselect::core::semi::{ClusterMethod, Labeler, SemiConfig};
use spselect::core::telemetry::RunReport;
use spselect::core::transfer::local_semi;
use spselect::gpusim::{FaultConfig, FaultRates, Gpu, TrialPolicy};

const FAULT_RATE: f64 = 0.05;
const FAULT_SEED: u64 = 2021;

/// Only the classes the trial layer can *recover from* (retry, robust
/// aggregation). Spurious OOMs legitimately remove a format from a cell,
/// so they are exercised by the degradation tests, not the accuracy ones.
fn recoverable_faults() -> FaultConfig {
    FaultConfig {
        seed: FAULT_SEED,
        rates: FaultRates {
            transient: FAULT_RATE,
            spike: FAULT_RATE,
            drop: FAULT_RATE,
            oom: 0.0,
            cache_corruption: 0.0,
            gpu_outage: 0.0,
        },
    }
}

fn corpus_cfg() -> CorpusConfig {
    CorpusConfig::small(80, 42)
}

fn build(faults: &FaultConfig) -> ExperimentContext {
    ExperimentContext::build_with_faults(
        corpus_cfg(),
        &Cache::disabled(),
        &mut RunReport::new("chaos"),
        faults,
        &TrialPolicy::default(),
    )
}

#[test]
fn faults_off_is_bit_identical_to_plain_benchmarking() {
    let ctx = build(&FaultConfig::off());
    assert!(!ctx.degradation.any(), "{:?}", ctx.degradation);
    for (g, gpu) in Gpu::ALL.iter().enumerate() {
        let plain = ctx.corpus.benchmark(*gpu);
        assert_eq!(ctx.benches[g], plain, "{gpu}: faults-off path diverged");
    }
}

#[test]
fn same_fault_seed_reruns_bit_identically() {
    let faults = FaultConfig::uniform(FAULT_RATE, FAULT_SEED);
    let a = build(&faults);
    let b = build(&faults);
    assert_eq!(a.benches, b.benches);
    assert_eq!(a.degradation, b.degradation);

    // A different fault seed produces a different fault pattern (the
    // injector is keyed, not incidental).
    let c = build(&FaultConfig::uniform(FAULT_RATE, FAULT_SEED + 1));
    assert_ne!(
        a.degradation.injected, c.degradation.injected,
        "fault seed must steer the injection pattern"
    );
}

#[test]
fn five_percent_faults_recover_almost_every_cell() {
    let clean = build(&FaultConfig::off());
    let faulty = build(&FaultConfig::uniform(FAULT_RATE, FAULT_SEED));

    assert!(faulty.degradation.injected.any(), "no faults fired at 5%");
    assert!(
        faulty.degradation.injected.outliers_rejected > 0,
        "spikes at 5% must trip the MAD filter: {:?}",
        faulty.degradation.injected
    );

    let mut cells = 0usize;
    let mut recovered = 0usize;
    for g in 0..Gpu::ALL.len() {
        for i in 0..clean.corpus.len() {
            if clean.benches[g][i].is_none() {
                continue; // genuinely infeasible everywhere
            }
            cells += 1;
            if faulty.benches[g][i].is_some() {
                recovered += 1;
            }
        }
    }
    let recovery = recovered as f64 / cells as f64;
    assert!(
        recovery >= 0.95,
        "only {recovered}/{cells} cells recovered ({recovery:.3})"
    );
    // Quarantines are the complement of recovery and must each carry a
    // typed reason. (Injected OOMs can also erase whole cells when every
    // format is lost; they are counted, not quarantined.)
    let quarantined = &faulty.degradation.quarantined;
    assert!(quarantined.len() <= cells - recovered);
    for q in quarantined {
        assert!(!q.class.is_empty() && !q.reason.is_empty(), "{q:?}");
    }
}

#[test]
fn recoverable_faults_leave_labels_intact() {
    // Transients retry, spikes are rejected by the MAD filter, dropped
    // trials leave a majority, and the antithetic jitter keeps the median
    // of a fault-free cell exactly at its true time: the labels the
    // pipeline feeds the selectors must be essentially unchanged.
    let clean = build(&FaultConfig::off());
    let faulty = build(&recoverable_faults());
    assert!(faulty.degradation.injected.any(), "no faults fired");

    let mut recovered = 0usize;
    let mut label_matches = 0usize;
    for g in 0..Gpu::ALL.len() {
        for i in 0..clean.corpus.len() {
            let (Some(c), Some(f)) = (clean.benches[g][i], faulty.benches[g][i]) else {
                continue;
            };
            recovered += 1;
            if f.best == c.best {
                label_matches += 1;
            }
        }
    }
    let agreement = label_matches as f64 / recovered as f64;
    assert!(
        agreement >= 0.99,
        "labels flipped on {}/{recovered} recovered cells ({agreement:.3})",
        recovered - label_matches
    );
}

#[test]
fn headline_accuracy_moves_less_than_a_point() {
    // Headline-sized dataset: with realistically sized clusters, the one
    // or two near-tie labels a 5% fault rate can flip cannot swing a
    // cluster vote, so the reported accuracy barely moves.
    let big = CorpusConfig::small(240, 42);
    let build = |faults: &FaultConfig| {
        ExperimentContext::build_with_faults(
            big.clone(),
            &Cache::disabled(),
            &mut RunReport::new("chaos-headline"),
            faults,
            &TrialPolicy::default(),
        )
    };
    let clean = build(&FaultConfig::off());
    let faulty = build(&recoverable_faults());

    // Evaluate on the dataset both runs kept, so the comparison isolates
    // what fault injection did to the *measurements* (a few quarantined
    // cells shrinking the dataset is separate, and covered above).
    let g = Gpu::Volta as usize;
    let ds: Vec<usize> = (0..clean.corpus.len())
        .filter(|&i| clean.benches[g][i].is_some() && faulty.benches[g][i].is_some())
        .collect();
    let features = clean.features(&ds);
    let quality = |ctx: &ExperimentContext| {
        let results = ctx.results(Gpu::Volta, &ds).unwrap();
        let cfg = SemiConfig::new(ClusterMethod::KMeans { nc: 12 }, Labeler::Vote, 11);
        local_semi(&features, &results, cfg, 3, 11)
    };
    let q_clean = quality(&clean);
    let q_faulty = quality(&faulty);
    assert!(
        (q_clean.acc - q_faulty.acc).abs() < 0.01,
        "headline accuracy moved {:.4} -> {:.4}",
        q_clean.acc,
        q_faulty.acc
    );
}
