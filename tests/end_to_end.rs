//! End-to-end integration: corpus → benchmark labels → semi-supervised and
//! supervised selectors → evaluation, across crates.

use spselect::core::corpus::{Corpus, CorpusConfig};
use spselect::core::semi::{ClusterMethod, Labeler, SemiConfig, SemiSupervisedSelector};
use spselect::core::speedup::selection_quality;
use spselect::core::supervised::{SupervisedConfig, SupervisedModel, SupervisedSelector};
use spselect::features::FeatureVector;
use spselect::gpusim::{BenchResult, Gpu};
use spselect::matrix::Format;

fn setup() -> (Vec<FeatureVector>, Vec<BenchResult>) {
    let corpus = Corpus::build(CorpusConfig::small(80, 77));
    let bench = corpus.benchmark(Gpu::Pascal);
    let usable: Vec<usize> = (0..corpus.len()).filter(|&i| bench[i].is_some()).collect();
    let features = usable
        .iter()
        .map(|&i| corpus.records[i].features.clone())
        .collect();
    let results = usable.iter().map(|&i| bench[i].unwrap()).collect();
    (features, results)
}

#[test]
fn semi_supervised_end_to_end_beats_always_csr() {
    let (features, results) = setup();
    let labels: Vec<Format> = results.iter().map(|r| r.best).collect();
    let cfg = SemiConfig::new(ClusterMethod::KMeans { nc: 30 }, Labeler::Vote, 5);
    let selector = SemiSupervisedSelector::fit(&features, &labels, cfg);
    let preds = selector.predict_batch(&features);
    let q = selection_quality(&preds, &results);
    let always_csr = vec![Format::Csr; results.len()];
    let q_csr = selection_quality(&always_csr, &results);
    assert!(
        q.acc > q_csr.acc,
        "selector {} <= always-CSR {}",
        q.acc,
        q_csr.acc
    );
    assert!(q.csr >= q_csr.csr, "no speedup over CSR baseline");
    assert!(q.gt <= 1.0 + 1e-9);
}

#[test]
fn supervised_end_to_end_learns_the_labels() {
    let (features, results) = setup();
    let labels: Vec<Format> = results.iter().map(|r| r.best).collect();
    for model in [SupervisedModel::Rf, SupervisedModel::Xgb] {
        let sel =
            SupervisedSelector::fit(&features, None, &labels, SupervisedConfig::quick(model, 3))
                .unwrap();
        let preds = sel.predict_batch(&features, None);
        let q = selection_quality(&preds, &results);
        assert!(q.acc > 0.9, "{model}: training accuracy {}", q.acc);
    }
}

#[test]
fn explanations_match_predictions_end_to_end() {
    let (features, results) = setup();
    let labels: Vec<Format> = results.iter().map(|r| r.best).collect();
    let cfg = SemiConfig::new(ClusterMethod::Birch { nc: 20 }, Labeler::RandomForest, 2);
    let selector = SemiSupervisedSelector::fit(&features, &labels, cfg);
    for f in features.iter().take(20) {
        let e = selector.explain(f);
        assert_eq!(e.format, selector.predict(f));
        assert!(e.cluster < selector.n_clusters());
    }
}

#[test]
fn cluster_labels_cover_training_majorities() {
    let (features, results) = setup();
    let labels: Vec<Format> = results.iter().map(|r| r.best).collect();
    let cfg = SemiConfig::new(ClusterMethod::KMeans { nc: 15 }, Labeler::Vote, 1);
    let selector = SemiSupervisedSelector::fit(&features, &labels, cfg);
    // Every cluster label must be a format that actually occurs in the
    // training labels (vote cannot invent classes).
    let occurring: std::collections::HashSet<Format> = labels.iter().copied().collect();
    for &l in selector.cluster_labels() {
        assert!(occurring.contains(&l), "{l} never occurs in training data");
    }
}

#[test]
fn benchmark_results_are_deterministic_across_runs() {
    let (_, a) = setup();
    let (_, b) = setup();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.best, y.best);
        assert_eq!(x.times.us, y.times.us);
    }
}
