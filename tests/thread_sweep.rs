//! Thread-count sweep: the rayon shim's index-addressed slots promise
//! bit-identical output at any worker count. Prove it end-to-end through
//! corpus generation, benchmarking, and the fault-tolerant measurement
//! path (`SPSEL_THREADS` offers the same control from the environment).

use spselect::core::corpus::{Corpus, CorpusConfig};
use spselect::core::experiments::ExperimentContext;
use spselect::core::semi::{ClusterMethod, Labeler, SemiConfig};
use spselect::core::speedup::SelectionQuality;
use spselect::core::supervised::{SupervisedConfig, SupervisedModel};
use spselect::core::transfer::{local_semi, local_supervised};
use spselect::gpusim::{FaultConfig, Gpu, TrialPolicy};

#[test]
fn corpus_and_benches_are_bit_identical_at_any_worker_count() {
    let cfg = CorpusConfig::small(24, 99);
    let faults = FaultConfig::uniform(0.05, 7);
    let policy = TrialPolicy::default();

    let build = || {
        let corpus = Corpus::build(cfg.clone());
        let benches: Vec<_> = Gpu::ALL.iter().map(|&g| corpus.benchmark(g)).collect();
        let measured: Vec<_> = Gpu::ALL
            .iter()
            .map(|&g| corpus.measure(g, &faults, &policy).results())
            .collect();
        (corpus, benches, measured)
    };

    rayon::set_threads(Some(1));
    let (base_corpus, base_benches, base_measured) = build();
    let base_ids: Vec<u64> = base_corpus.records.iter().map(|r| r.id).collect();

    for workers in [2, 4, 8] {
        rayon::set_threads(Some(workers));
        let (corpus, benches, measured) = build();
        let ids: Vec<u64> = corpus.records.iter().map(|r| r.id).collect();
        assert_eq!(ids, base_ids, "{workers} workers: corpus diverged");
        for (g, gpu) in Gpu::ALL.iter().enumerate() {
            for i in 0..corpus.len() {
                let same_bench = match (benches[g][i], base_benches[g][i]) {
                    (Some(a), Some(b)) => {
                        a.times.us.map(f64::to_bits) == b.times.us.map(f64::to_bits)
                    }
                    (None, None) => true,
                    _ => false,
                };
                assert!(
                    same_bench,
                    "{workers} workers: {gpu} bench record {i} diverged"
                );
                let same_measured = match (measured[g][i], base_measured[g][i]) {
                    (Some(a), Some(b)) => {
                        a.times.us.map(f64::to_bits) == b.times.us.map(f64::to_bits)
                    }
                    (None, None) => true,
                    _ => false,
                };
                assert!(
                    same_measured,
                    "{workers} workers: {gpu} faulty measurement {i} diverged"
                );
            }
        }
    }
    rayon::set_threads(None);
}

/// Bitwise comparison of two quality summaries (PartialEq on f64 would
/// accept -0.0 == 0.0; the promise here is stronger).
fn same_quality(a: &SelectionQuality, b: &SelectionQuality) -> bool {
    a.acc.to_bits() == b.acc.to_bits()
        && a.f1.to_bits() == b.f1.to_bits()
        && a.mcc.to_bits() == b.mcc.to_bits()
        && a.gt.to_bits() == b.gt.to_bits()
        && a.csr.to_bits() == b.csr.to_bits()
        && a.threshold == b.threshold
        && a.n == b.n
}

#[test]
fn cross_validation_is_bit_identical_at_any_worker_count() {
    let ctx = ExperimentContext::new(CorpusConfig::small(24, 6));
    let ds = ctx.dataset(Gpu::Turing);
    let features = ctx.features(&ds);
    let results = ctx.results(Gpu::Turing, &ds).expect("feasible dataset");

    // One fold-parallel supervised CV and one semi-supervised CV: every
    // fold derives its work from the shared seed alone, so the per-fold
    // qualities and their average must not depend on the worker count.
    let run = || {
        let sup = local_supervised(
            &features,
            None,
            &results,
            SupervisedConfig::quick(SupervisedModel::Rf, 5),
            3,
            5,
        )
        .expect("supervised CV fits");
        let semi = local_semi(
            &features,
            &results,
            SemiConfig::new(ClusterMethod::KMeans { nc: 8 }, Labeler::Vote, 5),
            3,
            5,
        );
        (sup, semi)
    };

    rayon::set_threads(Some(1));
    let (base_sup, base_semi) = run();
    for workers in [2, 4, 8] {
        rayon::set_threads(Some(workers));
        let (sup, semi) = run();
        assert!(
            same_quality(&sup, &base_sup),
            "{workers} workers: supervised CV diverged ({sup:?} vs {base_sup:?})"
        );
        assert!(
            same_quality(&semi, &base_semi),
            "{workers} workers: semi-supervised CV diverged ({semi:?} vs {base_semi:?})"
        );
    }
    rayon::set_threads(None);
}
