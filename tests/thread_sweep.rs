//! Thread-count sweep: the rayon shim's index-addressed slots promise
//! bit-identical output at any worker count. Prove it end-to-end through
//! corpus generation, benchmarking, and the fault-tolerant measurement
//! path (`SPSEL_THREADS` offers the same control from the environment).

use spselect::core::corpus::{Corpus, CorpusConfig};
use spselect::gpusim::{FaultConfig, Gpu, TrialPolicy};

#[test]
fn corpus_and_benches_are_bit_identical_at_any_worker_count() {
    let cfg = CorpusConfig::small(24, 99);
    let faults = FaultConfig::uniform(0.05, 7);
    let policy = TrialPolicy::default();

    let build = || {
        let corpus = Corpus::build(cfg.clone());
        let benches: Vec<_> = Gpu::ALL.iter().map(|&g| corpus.benchmark(g)).collect();
        let measured: Vec<_> = Gpu::ALL
            .iter()
            .map(|&g| corpus.measure(g, &faults, &policy).results())
            .collect();
        (corpus, benches, measured)
    };

    rayon::set_threads(Some(1));
    let (base_corpus, base_benches, base_measured) = build();
    let base_ids: Vec<u64> = base_corpus.records.iter().map(|r| r.id).collect();

    for workers in [2, 4, 8] {
        rayon::set_threads(Some(workers));
        let (corpus, benches, measured) = build();
        let ids: Vec<u64> = corpus.records.iter().map(|r| r.id).collect();
        assert_eq!(ids, base_ids, "{workers} workers: corpus diverged");
        for (g, gpu) in Gpu::ALL.iter().enumerate() {
            for i in 0..corpus.len() {
                let same_bench = match (benches[g][i], base_benches[g][i]) {
                    (Some(a), Some(b)) => {
                        a.times.us.map(f64::to_bits) == b.times.us.map(f64::to_bits)
                    }
                    (None, None) => true,
                    _ => false,
                };
                assert!(
                    same_bench,
                    "{workers} workers: {gpu} bench record {i} diverged"
                );
                let same_measured = match (measured[g][i], base_measured[g][i]) {
                    (Some(a), Some(b)) => {
                        a.times.us.map(f64::to_bits) == b.times.us.map(f64::to_bits)
                    }
                    (None, None) => true,
                    _ => false,
                };
                assert!(
                    same_measured,
                    "{workers} workers: {gpu} faulty measurement {i} diverged"
                );
            }
        }
    }
    rayon::set_threads(None);
}
