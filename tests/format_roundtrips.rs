//! Cross-crate property tests: every storage format must represent exactly
//! the same matrix, every kernel must compute the same product, and Matrix
//! Market IO must round-trip — on arbitrary random matrices.

use proptest::prelude::*;
use spselect::matrix::{
    io, CooMatrix, CsrMatrix, DiaMatrix, EllMatrix, HybMatrix, SellMatrix, SpMv,
};

/// Strategy: a small random sparse matrix as (nrows, ncols, triplets).
fn arb_matrix() -> impl Strategy<Value = CooMatrix> {
    (1usize..24, 1usize..24).prop_flat_map(|(nrows, ncols)| {
        let cells = nrows * ncols;
        proptest::collection::btree_set(0..cells, 0..cells.min(60)).prop_map(move |positions| {
            let triplets: Vec<(usize, usize, f64)> = positions
                .into_iter()
                .map(|p| {
                    let v = ((p * 31 % 13) as f64) - 6.0;
                    (p / ncols, p % ncols, if v == 0.0 { 1.0 } else { v })
                })
                .collect();
            CooMatrix::from_triplets(nrows, ncols, &triplets).expect("valid triplets")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_formats_represent_the_same_matrix(coo in arb_matrix()) {
        let csr = CsrMatrix::from(&coo);
        prop_assert_eq!(CooMatrix::from(&csr), coo.clone());

        let hyb = HybMatrix::from_csr(&csr);
        prop_assert_eq!(hyb.to_coo(), coo.clone());

        // ELL with an explicit permissive limit (tiny matrices can be
        // arbitrarily imbalanced).
        let ell = EllMatrix::try_from_csr_with_limit(&csr, 1024).unwrap();
        prop_assert_eq!(ell.to_coo(), coo.clone());

        let dia = DiaMatrix::try_from_csr(&csr, 64).unwrap();
        prop_assert_eq!(dia.to_coo(), coo.clone());

        let sell = SellMatrix::from_csr(&csr, 4, 8);
        prop_assert_eq!(sell.to_coo(), coo);
    }

    #[test]
    fn all_kernels_agree(coo in arb_matrix()) {
        let csr = CsrMatrix::from(&coo);
        let hyb = HybMatrix::from_csr(&csr);
        let ell = EllMatrix::try_from_csr_with_limit(&csr, 1024).unwrap();
        let dia = DiaMatrix::try_from_csr(&csr, 64).unwrap();

        let x: Vec<f64> = (0..coo.ncols()).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut reference = vec![0.0; coo.nrows()];
        coo.spmv(&x, &mut reference);

        let mut y = vec![0.0; coo.nrows()];
        let check = |y: &[f64], reference: &[f64]| -> bool {
            y.iter().zip(reference).all(|(a, b)| (a - b).abs() < 1e-9)
        };

        csr.spmv(&x, &mut y);
        prop_assert!(check(&y, &reference), "csr seq");
        csr.spmv_par(&x, &mut y);
        prop_assert!(check(&y, &reference), "csr par");
        ell.spmv(&x, &mut y);
        prop_assert!(check(&y, &reference), "ell seq");
        ell.spmv_par(&x, &mut y);
        prop_assert!(check(&y, &reference), "ell par");
        hyb.spmv(&x, &mut y);
        prop_assert!(check(&y, &reference), "hyb seq");
        hyb.spmv_par(&x, &mut y);
        prop_assert!(check(&y, &reference), "hyb par");
        dia.spmv(&x, &mut y);
        prop_assert!(check(&y, &reference), "dia seq");
        dia.spmv_par(&x, &mut y);
        prop_assert!(check(&y, &reference), "dia par");
        coo.spmv_par(&x, &mut y);
        prop_assert!(check(&y, &reference), "coo par");

        let sell = SellMatrix::from_csr(&csr, 4, 16);
        sell.spmv(&x, &mut y);
        prop_assert!(check(&y, &reference), "sell seq");
        sell.spmv_par(&x, &mut y);
        prop_assert!(check(&y, &reference), "sell par");
    }

    #[test]
    fn matrix_market_roundtrip(coo in arb_matrix()) {
        let mut buf = Vec::new();
        io::write_matrix_market(&coo, &mut buf).expect("write");
        let back = io::read_matrix_market(buf.as_slice()).expect("read");
        prop_assert_eq!(back, coo);
    }

    #[test]
    fn memory_accounting_is_consistent(coo in arb_matrix()) {
        use spselect::features::MatrixStats;
        let csr = CsrMatrix::from(&coo);
        let stats = MatrixStats::from_csr(&csr);
        let [coo_b, csr_b, _ell_b, hyb_b] = stats.format_bytes();
        prop_assert_eq!(coo_b, coo.memory_bytes());
        prop_assert_eq!(csr_b, csr.memory_bytes());
        let hyb = HybMatrix::from_csr(&csr);
        prop_assert_eq!(hyb_b, hyb.memory_bytes());
    }
}
