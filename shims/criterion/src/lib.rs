//! Offline stand-in for `criterion`.
//!
//! A simple wall-clock harness exposing the API subset the workspace's
//! benches use: `Criterion::bench_function`, benchmark groups with
//! throughput/sample-size knobs, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros. Reports median iteration time (and derived
//! throughput) to stdout; no statistical analysis or HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Join a function name and a parameter into an id.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, collecting `sample_size` samples after warmup.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup and per-sample iteration calibration: aim for samples of
        // at least ~1ms so timer resolution doesn't dominate.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed();
        let iters_per_sample = if once < Duration::from_micros(50) {
            (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u32
        } else {
            1
        };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters_per_sample);
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

fn report(name: &str, median: Duration, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) if !median.is_zero() => {
            format!("  {:.1} Melem/s", n as f64 / median.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if !median.is_zero() => {
            format!(
                "  {:.1} MiB/s",
                n as f64 / median.as_secs_f64() / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("bench {name:<55} median {median:>12.3?}{rate}");
}

/// Top-level benchmark harness.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&name.to_string(), b.median(), None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }
}

/// Group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the throughput annotation for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the number of timing samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let full = format!("{}/{}", self.name, id.into());
        report(&full, b.median(), self.throughput);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        let full = format!("{}/{}", self.name, id.into());
        report(&full, b.median(), self.throughput);
        self
    }

    /// Finish the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes flags like `--bench`; this harness ignores them.
            $($group();)+
        }
    };
}
