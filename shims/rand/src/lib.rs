//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand` API it actually uses: a seedable
//! deterministic generator (`StdRng`), the `Rng` convenience methods
//! (`gen`, `gen_range`, `gen_bool`) and `seq::SliceRandom::shuffle`.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — not the same
//! stream as upstream `rand`'s ChaCha-based `StdRng`, but every consumer in
//! this workspace only relies on determinism and statistical quality, never
//! on exact upstream values.

use std::ops::{Range, RangeInclusive};

/// Deterministic 64-bit generator (xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (the only constructor this workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// Raw 64-bit output.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased-enough bounded sample via 128-bit multiply-shift.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Values samplable from the "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by `Rng::gen_range`.
///
/// Generic over the element type (rather than using an associated type) so
/// that integer-literal ranges like `1..=12` unify with the inferred result
/// type, exactly as upstream rand's `SampleRange<T>` does.
pub trait SampleRange<T> {
    /// Draw a value inside the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: any value works.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let v = self.start + (unit_f64(rng) as $t) * (self.end - self.start);
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}
float_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named-generator module mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// Sequence helpers mirroring `rand::seq`.
pub mod seq {
    use crate::RngCore;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = crate::bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-2i64..=2);
            assert!((-2..=2).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
