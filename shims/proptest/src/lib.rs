//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and the `proptest!` macro surface the
//! workspace uses, on top of the seeded `rand` shim. Each test function gets
//! a deterministic RNG derived from its name, so failures are reproducible
//! run-over-run. There is no shrinking: on failure the harness reports the
//! case index and seed, then re-raises the original panic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Per-run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG for a named test (FNV-1a of the name over a fixed
/// master seed).
pub fn rng_for(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ 0x5EED_CAFE_F00D_D00D)
}

/// A generator of test values.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generate a dependent strategy from each value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident : $idx:tt),+),)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
}

/// Collection-size specification: an exact size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        if self.hi <= self.lo + 1 {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Collection strategies mirroring `proptest::collection`.
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;

    /// `Vec` of `elem`-generated values with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `BTreeSet` with a target size drawn from `size`; like upstream
    /// proptest, gives up after bounded attempts if the element domain is
    /// too small, yielding a smaller set.
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut set = std::collections::BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 10 + 20 {
                set.insert(self.elem.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Property-test harness macro. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::rng_for(stringify!($name));
            for __case in 0..__config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let ::std::result::Result::Err(__panic) = __result {
                    eprintln!(
                        "proptest {}: failed at case {}/{} (deterministic seed from test name)",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
    )*};
}

/// Common imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, Vec<usize>)> {
        (1usize..10)
            .prop_flat_map(|n| crate::collection::vec(0usize..100, n).prop_map(move |v| (n, v)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn flat_map_links_sizes((n, v) in pair()) {
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn btree_sets_bounded(s in crate::collection::btree_set(0usize..50, 0..20)) {
            prop_assert!(s.len() < 20);
            prop_assert!(s.iter().all(|&x| x < 50));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::rng_for("some_test");
        let mut b = crate::rng_for("some_test");
        let sa = crate::collection::vec(0usize..1000, 5..10).generate(&mut a);
        let sb = crate::collection::vec(0usize..1000, 5..10).generate(&mut b);
        assert_eq!(sa, sb);
    }
}
