//! Derive macros for the offline `serde` stand-in.
//!
//! Hand-rolled token parsing (no `syn`/`quote` available offline). Supports
//! the shapes this workspace serializes: non-generic named-field structs and
//! enums whose variants are unit or struct-like. Tuple structs, tuple
//! variants, generics and `#[serde(...)]` attributes are rejected loudly.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

enum Shape {
    /// Named fields.
    Struct(Vec<String>),
    /// Variants: name plus `None` (unit) or named fields (struct-like).
    Enum(Vec<(String, Option<Vec<String>>)>),
}

/// Split a brace group's stream at top-level commas, tracking `<`/`>` depth
/// so commas inside generic arguments don't split (commas inside `()`/`[]`
/// groups are naturally nested tokens and never seen here).
fn split_commas(group: &Group) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle = 0i32;
    for tok in group.stream() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    parts.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        parts.last_mut().unwrap().push(tok);
    }
    if parts.last().is_some_and(|p| p.is_empty()) {
        parts.pop();
    }
    parts
}

/// Skip leading `#[...]` attributes and visibility, returning the index of
/// the first substantive token.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // the `[...]` group
                if matches!(toks.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1; // optional `(crate)` etc.
                if matches!(
                    toks.get(i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
}

/// Field name from one comma-separated part of a struct body.
fn field_name(part: &[TokenTree]) -> String {
    let i = skip_attrs_and_vis(part, 0);
    match part.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected field name, found {other:?}"),
    }
}

fn parse(input: TokenStream) -> (String, Shape) {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => {
            let k = id.to_string();
            assert!(
                k == "struct" || k == "enum",
                "serde derive: expected struct or enum, found `{k}`"
            );
            k
        }
        other => panic!("serde derive: expected item keyword, found {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        assert!(
            p.as_char() != '<',
            "serde derive: generic type `{name}` not supported by the offline shim"
        );
    }
    let body = match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            panic!("serde derive: tuple struct `{name}` not supported by the offline shim")
        }
        other => panic!("serde derive: expected item body for `{name}`, found {other:?}"),
    };
    let shape = if kind == "struct" {
        Shape::Struct(split_commas(body).iter().map(|p| field_name(p)).collect())
    } else {
        let variants = split_commas(body)
            .iter()
            .map(|part| {
                let vi = skip_attrs_and_vis(part, 0);
                let vname = match part.get(vi) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    other => panic!("serde derive: expected variant name, found {other:?}"),
                };
                let fields = match part.get(vi + 1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Some(split_commas(g).iter().map(|p| field_name(p)).collect())
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        panic!(
                            "serde derive: tuple variant `{name}::{vname}` not supported by the offline shim"
                        )
                    }
                    _ => None,
                };
                (vname, fields)
            })
            .collect();
        Shape::Enum(variants)
    };
    (name, shape)
}

/// Derive `serde::Serialize` (value-tree form).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse(input);
    let body = match &shape {
        Shape::Struct(fields) => {
            let pairs: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{pairs}])")
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|(v, fields)| match fields {
                    None => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    Some(fs) => {
                        let binds = fs.join(", ");
                        let pairs: String = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f})),"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![\
                             (::std::string::String::from(\"{v}\"), ::serde::Value::Object(vec![{pairs}]))]),"
                        )
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde derive: generated Serialize impl must parse")
}

/// Derive `serde::Deserialize` (value-tree form).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse(input);
    let body = match &shape {
        Shape::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::get_field(__obj, \"{f}\", \"{name}\")?,"))
                .collect();
            format!(
                "let __obj = ::serde::expect_object(__v, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, f)| f.is_none())
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|(v, f)| f.as_ref().map(|fs| (v, fs)))
                .map(|(v, fs)| {
                    let inits: String = fs
                        .iter()
                        .map(|f| {
                            format!("{f}: ::serde::get_field(__inner, \"{f}\", \"{name}::{v}\")?,")
                        })
                        .collect();
                    format!(
                        "\"{v}\" => {{\n\
                            let __inner = ::serde::expect_object(__val, \"{name}::{v}\")?;\n\
                            ::std::result::Result::Ok({name}::{v} {{ {inits} }})\n\
                         }},"
                    )
                })
                .collect();
            format!(
                "match __v {{\n\
                    ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                        {unit_arms}\n\
                        __other => ::std::result::Result::Err(::serde::Error::unknown_variant(__other, \"{name}\")),\n\
                    }},\n\
                    ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                        let (__key, __val) = &__pairs[0];\n\
                        match __key.as_str() {{\n\
                            {data_arms}\n\
                            __other => ::std::result::Result::Err(::serde::Error::unknown_variant(__other, \"{name}\")),\n\
                        }}\n\
                    }},\n\
                    __other => ::std::result::Result::Err(::serde::Error::expected(\"variant of {name}\", __other.kind())),\n\
                }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde derive: generated Deserialize impl must parse")
}
