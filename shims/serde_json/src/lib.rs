//! Offline stand-in for `serde_json`.
//!
//! Encodes/decodes the `serde` shim's [`Value`] tree as JSON. The encoder is
//! deterministic (object keys keep insertion order, floats use Rust's
//! shortest round-trip formatting), which the experiment cache relies on for
//! byte-stable artifacts. Non-finite floats encode as `null`, matching
//! upstream `serde_json`'s lossy behavior.

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Serialize to a compact JSON byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(to_string(value)?.into_bytes())
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to a pretty-printed (2-space indented) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::msg(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is the shortest representation that round-trips.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected , or ] at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::msg(format!("expected , or }} at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::msg(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::msg("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape".to_string()))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape".to_string()))?;
                            self.pos += 4;
                            // Surrogate pairs: only BMP escapes are produced
                            // by this encoder; accept lone values leniently.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "invalid escape \\{} at byte {}",
                                other as char, self.pos
                            )))
                        }
                    }
                }
                _ => return Err(Error::msg("unterminated string".to_string())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("bad number".to_string()))?;
        if !text.contains(['.', 'e', 'E']) {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(i) = stripped.parse::<i64>() {
                    return Ok(Value::Int(-i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value_tree() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("a \"b\"\n".into())),
            ("n".into(), Value::UInt(42)),
            ("neg".into(), Value::Int(-7)),
            ("f".into(), Value::Float(0.1)),
            (
                "arr".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 1.0, -3.5e-9, 1e300, f64::MIN_POSITIVE] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{s}");
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let v = Value::Object(vec![
            ("b".into(), Value::UInt(1)),
            ("a".into(), Value::UInt(2)),
        ]);
        assert_eq!(to_string(&v).unwrap(), to_string(&v).unwrap());
        assert_eq!(to_string(&v).unwrap(), r#"{"b":1,"a":2}"#);
    }
}
