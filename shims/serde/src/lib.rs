//! Offline stand-in for `serde`.
//!
//! Serialization here goes through an owned JSON-like [`Value`] tree rather
//! than upstream serde's visitor machinery — much smaller, and exactly what
//! the workspace needs: `#[derive(Serialize, Deserialize)]` on plain data
//! types plus JSON encoding via the sibling `serde_json` shim.
//!
//! Object keys keep insertion order (a `Vec` of pairs, not a map), so
//! encodings are deterministic and cached artifacts are byte-stable.

pub use serde_derive::{Deserialize, Serialize};

/// Owned JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (only produced for negative numbers).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as an object's key/value pairs.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Short human name of the value's kind (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Free-form error.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// "expected X, found Y" error.
    pub fn expected(what: &str, found: &str) -> Self {
        Error {
            msg: format!("expected {what}, found {found}"),
        }
    }

    /// Unknown enum variant error.
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        Error {
            msg: format!("unknown variant `{variant}` for {ty}"),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types convertible to a [`Value`].
pub trait Serialize {
    /// Convert to a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Helper used by derived code: borrow `v` as an object.
pub fn expect_object<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], Error> {
    v.as_object()
        .ok_or_else(|| Error::expected(&format!("object for {ty}"), v.kind()))
}

/// Helper used by derived code: extract and deserialize field `key`.
pub fn get_field<T: Deserialize>(obj: &[(String, Value)], key: &str, ty: &str) -> Result<T, Error> {
    let v = obj
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::msg(format!("missing field `{key}` in {ty}")))?;
    T::from_value(v)
}

/// Helper for hand-written impls of backwards-compatible formats: extract
/// field `key` if present, yielding `None` when the key is absent or
/// `null`. Unlike [`get_field`] with an `Option<T>` target (which still
/// demands the key exist), this is what "optional field added in a later
/// schema version" actually needs.
pub fn get_field_opt<T: Deserialize>(
    obj: &[(String, Value)],
    key: &str,
) -> Result<Option<T>, Error> {
    match obj.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => T::from_value(v).map(Some),
    }
}

// ---------------------------------------------------------------- primitives

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other.kind())),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => return Err(Error::expected("unsigned integer", other.kind())),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::msg(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: i64 = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::msg(format!("{u} out of range for i64")))?,
                    other => return Err(Error::expected("integer", other.kind())),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::msg(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    // Non-finite floats are encoded as null (JSON has no NaN).
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::expected("number", other.kind())),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other.kind())),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// -------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let expected = [$(stringify!($idx)),+].len();
                        if items.len() != expected {
                            return Err(Error::msg(format!(
                                "expected tuple of length {expected}, got {}", items.len())));
                        }
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::expected("array (tuple)", other.kind())),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
