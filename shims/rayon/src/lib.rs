//! Offline stand-in for `rayon` with *real* data parallelism.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the parallel-iterator subset it uses. Unlike a serial polyfill, this
//! implementation fans work out over `std::thread::scope` workers that pull
//! index blocks from a shared atomic counter and write results into
//! **index-addressed output slots** — so the result of every parallel
//! pipeline is bit-identical to its serial evaluation, regardless of thread
//! count or scheduling order. That property is what lets the experiment
//! pipeline cache and replay results deterministically.
//!
//! Supported surface: `par_iter` / `par_iter_mut` on slices,
//! `into_par_iter` on `Range<usize>`, and the `map` / `filter_map` / `zip` /
//! `enumerate` / `for_each` / `collect` / `sum` / `min` / `max` combinators.
//! `set_serial(true)` (or the `SPSEL_SERIAL=1` environment variable) forces
//! single-threaded execution, which the determinism tests use to prove
//! parallel == serial.

use std::mem::{ManuallyDrop, MaybeUninit};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

static FORCE_SERIAL: AtomicBool = AtomicBool::new(false);

/// Worker-count override: 0 = unset (fall back to `SPSEL_THREADS`, then
/// hardware parallelism).
static FORCE_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Force all parallel drivers onto the calling thread (used by the
/// determinism tests; also controllable via `SPSEL_SERIAL=1`).
pub fn set_serial(on: bool) {
    FORCE_SERIAL.store(on, Ordering::SeqCst);
}

/// Whether serial execution is currently forced.
pub fn serial_forced() -> bool {
    FORCE_SERIAL.load(Ordering::SeqCst)
        || std::env::var_os("SPSEL_SERIAL").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Pin the worker count (`None` restores the default). The thread-sweep
/// tests use this to prove output is bit-identical at any width; the
/// `SPSEL_THREADS` environment variable offers the same control externally.
pub fn set_threads(n: Option<usize>) {
    FORCE_THREADS.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// Worker count the drivers will use: `set_serial` wins, then
/// `set_threads`, then `SPSEL_THREADS`, then hardware parallelism.
pub fn current_num_threads() -> usize {
    if serial_forced() {
        return 1;
    }
    let forced = FORCE_THREADS.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Some(n) = std::env::var_os("SPSEL_THREADS")
        .and_then(|v| v.into_string().ok())
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Pointer wrapper so workers can write disjoint output slots.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

fn block_size(n: usize, threads: usize) -> usize {
    (n / (threads * 8)).clamp(1, 1024)
}

/// Evaluate `it` into a `Vec` with `out[i] == it.at(i)` for every `i` —
/// identical to serial evaluation by construction.
fn drive_collect<I: ParallelIterator>(it: &I) -> Vec<I::Item> {
    let n = it.par_len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n < 2 {
        return (0..n).map(|i| it.at(i)).collect();
    }
    let block = block_size(n, threads);
    let mut out: Vec<MaybeUninit<I::Item>> = Vec::with_capacity(n);
    // SAFETY: every slot is written exactly once below before being read.
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(n);
    }
    let next = AtomicUsize::new(0);
    let ptr = SendPtr(out.as_mut_ptr());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let next = &next;
            let it = &it;
            scope.spawn(move || {
                // Capture the whole wrapper, not the raw-pointer field
                // (edition-2021 closures capture disjoint fields).
                let ptr = ptr;
                loop {
                    let start = next.fetch_add(block, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + block).min(n);
                    for i in start..end {
                        let v = it.at(i);
                        // SAFETY: slot i is owned by exactly this worker.
                        unsafe { ptr.0.add(i).write(MaybeUninit::new(v)) };
                    }
                }
            });
        }
    });
    // SAFETY: the scope joined, so all n slots are initialized.
    unsafe {
        let mut out = ManuallyDrop::new(out);
        Vec::from_raw_parts(out.as_mut_ptr() as *mut I::Item, n, out.capacity())
    }
}

fn drive_for_each<I, F>(it: &I, f: &F)
where
    I: ParallelIterator,
    F: Fn(I::Item) + Send + Sync,
{
    let n = it.par_len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n < 2 {
        for i in 0..n {
            f(it.at(i));
        }
        return;
    }
    let block = block_size(n, threads);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let next = &next;
            let it = &it;
            scope.spawn(move || loop {
                let start = next.fetch_add(block, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + block).min(n);
                for i in start..end {
                    f(it.at(i));
                }
            });
        }
    });
}

/// A random-access parallel pipeline: `at(i)` computes element `i`
/// independently of every other index.
pub trait ParallelIterator: Send + Sync + Sized {
    /// Item type produced at each index.
    type Item: Send;

    /// Number of elements.
    fn par_len(&self) -> usize;

    /// Compute element `i`.
    fn at(&self, i: usize) -> Self::Item;

    /// Map each element through `f`.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Send + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Map-and-filter; the relative order of kept elements matches serial.
    fn filter_map<F, R>(self, f: F) -> FilterMap<Self, F>
    where
        F: Fn(Self::Item) -> Option<R> + Send + Sync,
        R: Send,
    {
        FilterMap { base: self, f }
    }

    /// Pair with another pipeline (lengths are truncated to the shorter).
    fn zip<J: ParallelIterator>(self, other: J) -> Zip<Self, J> {
        Zip { a: self, b: other }
    }

    /// Attach indices.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Run `f` on every element.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        drive_for_each(&self, &f);
    }

    /// Collect into a container (order matches serial evaluation).
    fn collect<C: From<Vec<Self::Item>>>(self) -> C {
        C::from(drive_collect(&self))
    }

    /// Sum elements. Accumulation happens in index order, so floating-point
    /// results are bit-identical to serial.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        drive_collect(&self).into_iter().sum()
    }

    /// Minimum element.
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        drive_collect(&self).into_iter().min()
    }

    /// Maximum element.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        drive_collect(&self).into_iter().max()
    }

    /// Count elements.
    fn count(self) -> usize {
        self.par_len()
    }
}

/// See [`ParallelIterator::map`].
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Send + Sync,
    R: Send,
{
    type Item = R;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn at(&self, i: usize) -> R {
        (self.f)(self.base.at(i))
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    fn par_len(&self) -> usize {
        self.a.par_len().min(self.b.par_len())
    }
    fn at(&self, i: usize) -> Self::Item {
        (self.a.at(i), self.b.at(i))
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<I> {
    base: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn at(&self, i: usize) -> Self::Item {
        (i, self.base.at(i))
    }
}

/// See [`ParallelIterator::filter_map`]. Not random-access (the output
/// length is data-dependent), so it exposes only draining operations.
pub struct FilterMap<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> FilterMap<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> Option<R> + Send + Sync,
    R: Send,
{
    /// Collect kept elements in serial order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let FilterMap { base, f } = self;
        let opts = drive_collect(&Map { base, f });
        C::from(opts.into_iter().flatten().collect::<Vec<R>>())
    }

    /// Count kept elements.
    pub fn count(self) -> usize {
        let FilterMap { base, f } = self;
        drive_collect(&Map { base, f })
            .into_iter()
            .flatten()
            .count()
    }
}

/// Parallel shared-slice iterator.
pub struct ParSlice<'a, T: Sync> {
    s: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParSlice<'a, T> {
    type Item = &'a T;
    fn par_len(&self) -> usize {
        self.s.len()
    }
    fn at(&self, i: usize) -> &'a T {
        &self.s[i]
    }
}

/// `.par_iter()` on slices (and, via deref, `Vec`).
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed parallel iterator type.
    type Iter: ParallelIterator;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParSlice<'a, T>;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { s: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParSlice<'a, T>;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { s: self }
    }
}

/// Parallel mutable-slice pipeline. Supports the `enumerate().for_each()`
/// and `for_each()` patterns used by the SpMV kernels.
pub struct ParSliceMut<'a, T: Send> {
    s: &'a mut [T],
}

impl<'a, T: Send> ParSliceMut<'a, T> {
    /// Attach indices.
    pub fn enumerate(self) -> EnumerateMut<'a, T> {
        EnumerateMut { s: self.s }
    }

    /// Run `f` on every element.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Send + Sync,
    {
        drive_mut(self.s, |_, r| f(r));
    }
}

/// Indexed parallel mutable-slice pipeline.
pub struct EnumerateMut<'a, T: Send> {
    s: &'a mut [T],
}

impl<'a, T: Send> EnumerateMut<'a, T> {
    /// Run `f` on every `(index, &mut element)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Send + Sync,
    {
        drive_mut(self.s, |i, r| f((i, r)));
    }
}

fn drive_mut<T, F>(s: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Send + Sync,
{
    let n = s.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n < 2 {
        for (i, r) in s.iter_mut().enumerate() {
            f(i, r);
        }
        return;
    }
    let block = block_size(n, threads);
    let next = AtomicUsize::new(0);
    let ptr = SendPtr(s.as_mut_ptr());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let next = &next;
            let f = &f;
            scope.spawn(move || {
                let ptr = ptr;
                loop {
                    let start = next.fetch_add(block, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + block).min(n);
                    for i in start..end {
                        // SAFETY: block ranges are disjoint, so each element
                        // is mutably borrowed by exactly one worker.
                        f(i, unsafe { &mut *ptr.0.add(i) });
                    }
                }
            });
        }
    });
}

/// `.par_iter_mut()` on slices (and, via deref, `Vec`).
pub trait IntoParallelRefMutIterator<'a> {
    /// The mutable parallel iterator type.
    type Iter;
    /// Mutably borrowing parallel iterator.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Iter = ParSliceMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> ParSliceMut<'a, T> {
        ParSliceMut { s: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Iter = ParSliceMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> ParSliceMut<'a, T> {
        ParSliceMut { s: self }
    }
}

/// Parallel index-range iterator.
pub struct ParRange {
    start: usize,
    end: usize,
}

impl ParallelIterator for ParRange {
    type Item = usize;
    fn par_len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }
    fn at(&self, i: usize) -> usize {
        self.start + i
    }
}

/// `.into_par_iter()` on owned sources.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange {
            start: self.start,
            end: self.end,
        }
    }
}

/// Owned-`Vec` parallel iterator (items are cloned out of the backing
/// storage; fine for the cheap index vectors this workspace fans out over).
pub struct ParVec<T: Send + Sync + Clone> {
    v: Vec<T>,
}

impl<T: Send + Sync + Clone> ParallelIterator for ParVec<T> {
    type Item = T;
    fn par_len(&self) -> usize {
        self.v.len()
    }
    fn at(&self, i: usize) -> T {
        self.v[i].clone()
    }
}

impl<T: Send + Sync + Clone> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec { v: self }
    }
}

/// Everything a consumer needs in scope.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_matches_serial() {
        let v: Vec<u64> = (0..10_000u64).collect();
        let par: Vec<u64> = v.par_iter().map(|&x| x * x + 1).collect();
        let ser: Vec<u64> = v.iter().map(|&x| x * x + 1).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn zip_enumerate_for_each_mut() {
        let a: Vec<usize> = (0..5_000).collect();
        let b: Vec<usize> = (0..5_000).map(|x| x * 2).collect();
        let pairs: Vec<usize> = a.par_iter().zip(b.par_iter()).map(|(x, y)| x + y).collect();
        assert_eq!(pairs, (0..5_000).map(|x| 3 * x).collect::<Vec<_>>());

        let mut y = vec![0usize; 4_000];
        y.par_iter_mut().enumerate().for_each(|(i, v)| *v = i * 7);
        assert!(y.iter().enumerate().all(|(i, &v)| v == i * 7));
    }

    #[test]
    fn range_filter_map_and_sum() {
        let kept: Vec<usize> = (0..1000usize)
            .into_par_iter()
            .filter_map(|i| (i % 3 == 0).then_some(i))
            .collect();
        assert_eq!(kept, (0..1000).filter(|i| i % 3 == 0).collect::<Vec<_>>());

        let s: f64 = (0..1000usize).into_par_iter().map(|i| i as f64 * 0.5).sum();
        let t: f64 = (0..1000usize).map(|i| i as f64 * 0.5).sum();
        assert_eq!(
            s.to_bits(),
            t.to_bits(),
            "parallel sum must be bit-identical"
        );
    }

    #[test]
    fn thread_override_gives_identical_results() {
        let v: Vec<u64> = (0..8_192).collect();
        let base: Vec<u64> = v.par_iter().map(|&x| x.rotate_left(7) ^ x).collect();
        for workers in [1, 2, 4, 8] {
            super::set_threads(Some(workers));
            assert_eq!(super::current_num_threads(), workers);
            let got: Vec<u64> = v.par_iter().map(|&x| x.rotate_left(7) ^ x).collect();
            assert_eq!(got, base, "{workers} workers diverged");
        }
        super::set_threads(None);
    }

    #[test]
    fn serial_mode_gives_identical_results() {
        let v: Vec<u64> = (0..8_192).collect();
        let par: Vec<u64> = v.par_iter().map(|&x| x.wrapping_mul(x)).collect();
        super::set_serial(true);
        let ser: Vec<u64> = v.par_iter().map(|&x| x.wrapping_mul(x)).collect();
        super::set_serial(false);
        assert_eq!(par, ser);
    }
}
